// Well-known bootstrap graph generators (§5.1: "use a well-known graph
// generation algorithm for the initial graph (such as Barabási-Albert or
// Erdős-Rényi)"). Both emit CREATE events through a GraphBuilder.
#ifndef GRAPHTIDES_GENERATOR_BOOTSTRAP_H_
#define GRAPHTIDES_GENERATOR_BOOTSTRAP_H_

#include <cstddef>

#include "common/status.h"
#include "generator/graph_builder.h"

namespace graphtides {

/// \brief Barabási–Albert preferential attachment.
///
/// Matches the Table 3 parameterization: `n` total vertices, `m0` fully
/// interconnected seed vertices (seeded as a directed cycle plus random
/// chords up to min(m0-1, m) per vertex to keep seeding O(m0 * m)), then
/// each new vertex attaches to `m` existing vertices chosen by preferential
/// attachment. Edges are directed from the new vertex to its targets.
struct BarabasiAlbertParams {
  size_t n = 1000;
  size_t m0 = 10;  // seed size
  size_t m = 3;    // edges per new vertex
};

Status BootstrapBarabasiAlbert(GraphBuilder& builder, GeneratorContext& ctx,
                               const BarabasiAlbertParams& params);

/// \brief Erdős–Rényi G(n, p): every ordered pair (u, v), u != v, is an edge
/// with probability p. Uses geometric skipping, O(n + m) expected.
struct ErdosRenyiParams {
  size_t n = 1000;
  double p = 0.01;
};

Status BootstrapErdosRenyi(GraphBuilder& builder, GeneratorContext& ctx,
                           const ErdosRenyiParams& params);

}  // namespace graphtides

#endif  // GRAPHTIDES_GENERATOR_BOOTSTRAP_H_
