#include "generator/stream_pipeline.h"

#include <utility>

namespace graphtides {

PipelinedWriterConsumer::PipelinedWriterConsumer(FILE* out,
                                                PipelinedWriterOptions options)
    : out_(out),
      options_(options),
      full_queue_(options.queue_batches),
      recycle_queue_(options.queue_batches) {
  if (options_.batch_events == 0) options_.batch_events = 1;
  current_.Reserve(options_.batch_events);
  writer_ = std::thread([this] { WriterLoop(); });
}

PipelinedWriterConsumer::~PipelinedWriterConsumer() {
  // Abandoned without Finish(): shut the writer down; the status is lost.
  Status st = Finish();
  (void)st;
}

void PipelinedWriterConsumer::WriterLoop() {
  // One reused serialization buffer; one fwrite per batch.
  std::string block;
  block.reserve(options_.batch_events *
                EventBatch::kArenaReserveBytesPerEvent * 2);
  for (;;) {
    std::optional<EventBatch> batch = full_queue_.TryPop();
    if (!batch.has_value()) {
      if (producer_done_.load(std::memory_order_acquire)) {
        // The producer stops pushing before setting the flag, so one last
        // empty pop after seeing it means the queue is fully drained.
        batch = full_queue_.TryPop();
        if (!batch.has_value()) break;
      } else {
        std::this_thread::yield();
        continue;
      }
    }
    if (!writer_failed_.load(std::memory_order_acquire)) {
      block.clear();
      for (const EventRecord& r : batch->records) {
        event_internal::AppendEventFields(r.type, r.vertex, r.edge,
                                          batch->PayloadOf(r), r.rate_factor,
                                          r.pause, &block);
        block.push_back('\n');
      }
      if (!block.empty() &&
          std::fwrite(block.data(), 1, block.size(), out_) != block.size()) {
        writer_status_ = Status::IoError("stream write failed");
        writer_failed_.store(true, std::memory_order_release);
      } else {
        bytes_written_.fetch_add(block.size(), std::memory_order_relaxed);
        events_written_.fetch_add(batch->records.size(),
                                  std::memory_order_relaxed);
      }
    }
    batch->Clear();
    // Recycle; if the return queue is full the batch is simply freed.
    bool recycled = recycle_queue_.TryPush(std::move(*batch));
    (void)recycled;
  }
}

Status PipelinedWriterConsumer::FlushCurrentBatch() {
  if (current_.records.empty()) return Status::OK();
  EventBatch batch = std::move(current_);
  while (!full_queue_.TryPush(std::move(batch))) {
    if (writer_failed_.load(std::memory_order_acquire)) return writer_status_;
    std::this_thread::yield();
  }
  std::optional<EventBatch> recycled = recycle_queue_.TryPop();
  if (recycled.has_value()) {
    current_ = std::move(*recycled);
  } else {
    current_ = EventBatch();
    current_.Reserve(options_.batch_events);
  }
  return Status::OK();
}

Status PipelinedWriterConsumer::Consume(Event&& event) {
  if (writer_failed_.load(std::memory_order_acquire)) return writer_status_;
  current_.Append(event.type, event.vertex, event.edge, event.payload,
                  event.rate_factor, event.pause);
  if (current_.Full(options_.batch_events)) return FlushCurrentBatch();
  return Status::OK();
}

Status PipelinedWriterConsumer::Finish() {
  if (finished_) return finish_status_;
  finished_ = true;
  Status flush = FlushCurrentBatch();
  producer_done_.store(true, std::memory_order_release);
  if (writer_.joinable()) writer_.join();
  if (writer_failed_.load(std::memory_order_acquire)) {
    finish_status_ = writer_status_;
  } else if (!flush.ok()) {
    finish_status_ = flush;
  } else if (std::fflush(out_) != 0) {
    finish_status_ = Status::IoError("stream flush failed");
  }
  return finish_status_;
}

}  // namespace graphtides
