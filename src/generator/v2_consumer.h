// V2WriterConsumer: the gt-stream-v2 mirror of PipelinedWriterConsumer —
// plugs the binary block writer (stream/v2_writer.h) into the generator's
// EventConsumer pipeline, so `gt_generate --format v2` streams sealed
// blocks with the same bounded-memory contract as the CSV path. The
// writer already batches records per block and issues one fwrite per
// sealed block, so no extra pipelining thread is needed to keep the
// generator unblocked.
#ifndef GRAPHTIDES_GENERATOR_V2_CONSUMER_H_
#define GRAPHTIDES_GENERATOR_V2_CONSUMER_H_

#include <cstdio>

#include "common/status.h"
#include "generator/event_consumer.h"
#include "stream/v2_writer.h"

namespace graphtides {

/// \brief EventConsumer that streams gt-stream-v2 blocks to a borrowed
/// FILE* (e.g. stdout). Finish() seals the partial block and writes the
/// mandatory end-of-stream sentinel; without it the output is rejected as
/// truncated by every v2 reader.
class V2WriterConsumer final : public EventConsumer {
 public:
  explicit V2WriterConsumer(std::FILE* out) {
    attach_status_ = writer_.Attach(out);
  }

  Status Consume(Event&& event) override {
    GT_RETURN_NOT_OK(attach_status_);
    return writer_.AppendFields(event.type, event.vertex, event.edge,
                                event.payload, event.rate_factor, event.pause);
  }

  Status Finish() override {
    GT_RETURN_NOT_OK(attach_status_);
    return writer_.Finish();
  }

  uint64_t bytes_written() const { return writer_.bytes_written(); }
  uint64_t events_written() const { return writer_.events_written(); }

 private:
  Status attach_status_;
  V2FileWriter writer_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_GENERATOR_V2_CONSUMER_H_
