#include "generator/graph_builder.h"

namespace graphtides {

Result<VertexId> GraphBuilder::AddVertex(std::string state) {
  const VertexId id = ctx_->NextVertexId();
  GT_RETURN_NOT_OK(AddVertexWithId(id, std::move(state)));
  return id;
}

Status GraphBuilder::AddVertexWithId(VertexId id, std::string state) {
  GT_RETURN_NOT_OK(topology_->AddVertex(id));
  ctx_->BumpNextVertexId(id);
  GT_RETURN_NOT_OK(out_->Consume(Event::AddVertex(id, std::move(state))));
  ++emitted_;
  return Status::OK();
}

Status GraphBuilder::AddEdge(VertexId src, VertexId dst, std::string state) {
  GT_RETURN_NOT_OK(topology_->AddEdge(src, dst));
  GT_RETURN_NOT_OK(out_->Consume(Event::AddEdge(src, dst, std::move(state))));
  ++emitted_;
  return Status::OK();
}

}  // namespace graphtides
