// EventConsumer: the incremental emission interface of the stream
// generator. StreamGenerator::GenerateTo pushes each event to a consumer
// the moment it is produced, so generation is constant-memory with respect
// to the stream length — the out-of-core counterpart of the legacy
// Generate() that materializes a GeneratedStream vector (kept via
// CollectingConsumer for existing callers).
#ifndef GRAPHTIDES_GENERATOR_EVENT_CONSUMER_H_
#define GRAPHTIDES_GENERATOR_EVENT_CONSUMER_H_

#include <functional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "stream/event.h"

namespace graphtides {

/// \brief Destination for generated events, called in stream order from the
/// generator thread. A non-OK Status aborts generation with that status.
class EventConsumer {
 public:
  virtual ~EventConsumer() = default;

  /// Accepts the next stream entry (graph op, marker, or control).
  virtual Status Consume(Event&& event) = 0;

  /// Called once after the last event of a successful generation. Flushes
  /// buffered output; errors surface as the generation result.
  virtual Status Finish() { return Status::OK(); }
};

/// \brief Collects events into a caller-owned vector (the legacy in-memory
/// path).
class CollectingConsumer final : public EventConsumer {
 public:
  explicit CollectingConsumer(std::vector<Event>* out) : out_(out) {}

  Status Consume(Event&& event) override {
    out_->push_back(std::move(event));
    return Status::OK();
  }

 private:
  std::vector<Event>* out_;
};

/// \brief Invokes a user function per event (tests, in-process pipelines).
class CallbackConsumer final : public EventConsumer {
 public:
  explicit CallbackConsumer(std::function<Status(Event&&)> fn)
      : fn_(std::move(fn)) {}

  Status Consume(Event&& event) override { return fn_(std::move(event)); }

 private:
  std::function<Status(Event&&)> fn_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_GENERATOR_EVENT_CONSUMER_H_
