// GraphBuilder: the object handed to GeneratorModel::BootstrapGraph.
// Emitting through the builder keeps the generated event stream and the
// topology shadow consistent.
#ifndef GRAPHTIDES_GENERATOR_GRAPH_BUILDER_H_
#define GRAPHTIDES_GENERATOR_GRAPH_BUILDER_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "generator/event_consumer.h"
#include "generator/model.h"
#include "generator/topology_index.h"
#include "stream/event.h"

namespace graphtides {

/// \brief Emits bootstrap events and mirrors them into the topology index.
///
/// Events flow to an EventConsumer, so bootstrap output streams just like
/// evolution output; the vector constructor wraps a CollectingConsumer for
/// callers that want the events materialized.
class GraphBuilder {
 public:
  GraphBuilder(TopologyIndex* topology, GeneratorContext* ctx,
               EventConsumer* out)
      : topology_(topology), ctx_(ctx), out_(out) {}

  GraphBuilder(TopologyIndex* topology, GeneratorContext* ctx,
               std::vector<Event>* out)
      : topology_(topology), ctx_(ctx), owned_(std::in_place, out) {
    out_ = &*owned_;
  }

  /// Creates a fresh vertex (id from the context counter) and returns it.
  Result<VertexId> AddVertex(std::string state = "");

  /// Creates a vertex with an explicit id.
  Status AddVertexWithId(VertexId id, std::string state = "");

  Status AddEdge(VertexId src, VertexId dst, std::string state = "");

  size_t events_emitted() const { return emitted_; }

 private:
  TopologyIndex* topology_;
  GeneratorContext* ctx_;
  EventConsumer* out_;
  std::optional<CollectingConsumer> owned_;
  size_t emitted_ = 0;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_GENERATOR_GRAPH_BUILDER_H_
