// GraphBuilder: the object handed to GeneratorModel::BootstrapGraph.
// Emitting through the builder keeps the generated event list and the
// topology shadow consistent.
#ifndef GRAPHTIDES_GENERATOR_GRAPH_BUILDER_H_
#define GRAPHTIDES_GENERATOR_GRAPH_BUILDER_H_

#include <vector>

#include "common/status.h"
#include "generator/model.h"
#include "generator/topology_index.h"
#include "stream/event.h"

namespace graphtides {

/// \brief Emits bootstrap events and mirrors them into the topology index.
class GraphBuilder {
 public:
  GraphBuilder(TopologyIndex* topology, GeneratorContext* ctx,
               std::vector<Event>* out)
      : topology_(topology), ctx_(ctx), out_(out) {}

  /// Creates a fresh vertex (id from the context counter) and returns it.
  Result<VertexId> AddVertex(std::string state = "");

  /// Creates a vertex with an explicit id.
  Status AddVertexWithId(VertexId id, std::string state = "");

  Status AddEdge(VertexId src, VertexId dst, std::string state = "");

  size_t events_emitted() const { return emitted_; }

 private:
  TopologyIndex* topology_;
  GeneratorContext* ctx_;
  std::vector<Event>* out_;
  size_t emitted_ = 0;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_GENERATOR_GRAPH_BUILDER_H_
