// The generator model interface — the C++ rendering of the user API in
// Listing 1 of the paper (Appendix A.1). Generation is split into two
// phases: (i) bootstrapping an initial graph and (ii) continuous round-based
// evolution, where each round the model picks an event type, a target
// vertex/edge, and the new state.
//
// Listing 1 name mapping:
//   bootstrapGlobalContext -> the model's own constructor / member state
//   bootstrapGraph         -> BootstrapGraph(builder, ctx)
//   nextEventType          -> NextEventType(ctx)
//   vertexSelect           -> SelectVertex(type, ctx)
//   edgeSelect             -> SelectEdge(type, ctx)
//   insertVertex           -> InsertVertexState(id, ctx)
//   insertEdge             -> InsertEdgeState(edge, ctx)
//   updateVertex           -> UpdateVertexState(id, ctx)
//   updateEdge             -> UpdateEdgeState(edge, ctx)
//   removeVertex           -> AllowRemoveVertex(id, ctx)
//   removeEdge             -> AllowRemoveEdge(edge, ctx)
//   constraint             -> Constraint(event, ctx)
#ifndef GRAPHTIDES_GENERATOR_MODEL_H_
#define GRAPHTIDES_GENERATOR_MODEL_H_

#include <optional>
#include <string>

#include "common/random.h"
#include "generator/topology_index.h"
#include "stream/event.h"

namespace graphtides {

/// \brief Per-run state handed to every model callback.
class GeneratorContext {
 public:
  GeneratorContext(TopologyIndex* topology, Rng* rng)
      : topology_(topology), rng_(rng) {}

  /// Read-only view of the evolving topology.
  const TopologyIndex& topology() const { return *topology_; }
  Rng& rng() { return *rng_; }

  /// Current evolution round (0 during bootstrap).
  uint64_t round() const { return round_; }

  /// Hands out fresh, never-used vertex IDs.
  VertexId NextVertexId() { return next_vertex_id_++; }

  // Engine-side hooks (not for models).
  void set_round(uint64_t round) { round_ = round; }
  void BumpNextVertexId(VertexId floor) {
    if (floor >= next_vertex_id_) next_vertex_id_ = floor + 1;
  }

 private:
  TopologyIndex* topology_;
  Rng* rng_;
  uint64_t round_ = 0;
  VertexId next_vertex_id_ = 0;
};

class GraphBuilder;  // defined in graph_builder.h

/// \brief User-extensible generation rules (Listing 1).
///
/// The default Select/State/Allow implementations give a usable
/// uniform-random model, so subclasses override only what their workload
/// needs.
class GeneratorModel {
 public:
  virtual ~GeneratorModel() = default;

  /// Short identifier used in stream-file headers and reports.
  virtual std::string Name() const = 0;

  /// Phase (i): builds the initial graph through `builder` (which emits
  /// CREATE events into the stream and updates the topology).
  virtual Status BootstrapGraph(GraphBuilder& builder,
                                GeneratorContext& ctx) = 0;

  /// Phase (ii): picks the type of the next event.
  virtual EventType NextEventType(GeneratorContext& ctx) = 0;

  /// Target vertex for REMOVE_VERTEX / UPDATE_VERTEX; for CREATE_VERTEX a
  /// fresh id (default: ctx.NextVertexId()). nullopt = no candidate, the
  /// engine retries with a different event type.
  virtual std::optional<VertexId> SelectVertex(EventType type,
                                               GeneratorContext& ctx);

  /// Target edge for CREATE_EDGE / REMOVE_EDGE / UPDATE_EDGE. For
  /// CREATE_EDGE the pair must not currently be connected. nullopt = no
  /// candidate.
  virtual std::optional<EdgeId> SelectEdge(EventType type,
                                           GeneratorContext& ctx);

  /// Initial / updated state payloads.
  virtual std::string InsertVertexState(VertexId id, GeneratorContext& ctx);
  virtual std::string InsertEdgeState(EdgeId edge, GeneratorContext& ctx);
  virtual std::string UpdateVertexState(VertexId id, GeneratorContext& ctx);
  virtual std::string UpdateEdgeState(EdgeId edge, GeneratorContext& ctx);

  /// Veto hooks for removals (Listing 1's boolean returns).
  virtual bool AllowRemoveVertex(VertexId id, GeneratorContext& ctx);
  virtual bool AllowRemoveEdge(EdgeId edge, GeneratorContext& ctx);

  /// Global constraint over the fully-formed event; returning false drops
  /// the event and the engine retries.
  virtual bool Constraint(const Event& event, GeneratorContext& ctx);
};

}  // namespace graphtides

#endif  // GRAPHTIDES_GENERATOR_MODEL_H_
