#include "generator/model.h"

namespace graphtides {

std::optional<VertexId> GeneratorModel::SelectVertex(EventType type,
                                                     GeneratorContext& ctx) {
  if (type == EventType::kAddVertex) return ctx.NextVertexId();
  return ctx.topology().UniformVertex(ctx.rng());
}

std::optional<EdgeId> GeneratorModel::SelectEdge(EventType type,
                                                 GeneratorContext& ctx) {
  const TopologyIndex& topo = ctx.topology();
  if (type == EventType::kAddEdge) {
    // Uniform unconnected ordered pair, bounded retries.
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto src = topo.UniformVertex(ctx.rng());
      if (!src.has_value()) return std::nullopt;
      const auto dst = topo.UniformVertexOtherThan(ctx.rng(), *src);
      if (!dst.has_value()) return std::nullopt;
      if (!topo.HasEdge(*src, *dst)) return EdgeId{*src, *dst};
    }
    return std::nullopt;
  }
  return topo.UniformEdge(ctx.rng());
}

std::string GeneratorModel::InsertVertexState(VertexId, GeneratorContext&) {
  return "";
}

std::string GeneratorModel::InsertEdgeState(EdgeId, GeneratorContext&) {
  return "";
}

std::string GeneratorModel::UpdateVertexState(VertexId, GeneratorContext&) {
  return "";
}

std::string GeneratorModel::UpdateEdgeState(EdgeId, GeneratorContext&) {
  return "";
}

bool GeneratorModel::AllowRemoveVertex(VertexId, GeneratorContext&) {
  return true;
}

bool GeneratorModel::AllowRemoveEdge(EdgeId, GeneratorContext&) {
  return true;
}

bool GeneratorModel::Constraint(const Event&, GeneratorContext&) {
  return true;
}

}  // namespace graphtides
