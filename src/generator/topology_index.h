// Topology shadow maintained by the stream generator. Supports O(1)
// mutation plus the selection primitives generator models need:
// uniform-random vertices/edges, preferential (degree-proportional)
// selection, and degree-biased selection with positive or negative bias —
// the "Zipf (based on degree)" selection functions of Table 3.
#ifndef GRAPHTIDES_GENERATOR_TOPOLOGY_INDEX_H_
#define GRAPHTIDES_GENERATOR_TOPOLOGY_INDEX_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "stream/event.h"

namespace graphtides {

/// \brief Mutable topology with sampling support (no states, generator-side).
///
/// Storage is fully swap-remove based: dense vertex/edge vectors for O(1)
/// uniform sampling, and flat per-vertex adjacency vectors instead of hash
/// sets. Small adjacency lists (the overwhelming majority under power-law
/// degree distributions) are scanned linearly; a list that grows past
/// kAdjIndexThreshold lazily builds a neighbor→slot map so removal stays
/// O(1) on hubs too.
class TopologyIndex {
 public:
  // --- Mutation (preconditions identical to Graph) ----------------------

  Status AddVertex(VertexId id);
  /// Removes the vertex and incident edges (no neighbor-set copies: the
  /// cascade drains the adjacency vectors in place, back to front).
  Status RemoveVertex(VertexId id);
  Status AddEdge(VertexId src, VertexId dst);
  Status RemoveEdge(VertexId src, VertexId dst);

  // --- Inspection --------------------------------------------------------

  size_t num_vertices() const { return vertices_.size(); }
  size_t num_edges() const { return edges_.size(); }
  bool HasVertex(VertexId id) const { return vertex_pos_.contains(id); }
  bool HasEdge(VertexId src, VertexId dst) const;
  /// Undirected degree (out + in); 0 for unknown vertices.
  size_t DegreeOf(VertexId id) const;
  size_t OutDegreeOf(VertexId id) const;

  // --- Sampling ----------------------------------------------------------

  /// Uniform-random existing vertex; nullopt when empty.
  std::optional<VertexId> UniformVertex(Rng& rng) const;

  /// Uniform-random existing edge; nullopt when empty.
  std::optional<EdgeId> UniformEdge(Rng& rng) const;

  /// Degree-proportional ("preferential attachment") vertex: a uniform edge
  /// endpoint, falling back to a uniform vertex when there are no edges.
  std::optional<VertexId> PreferentialVertex(Rng& rng) const;

  /// \brief Degree-biased vertex via weighted choice over a uniform
  /// candidate set of size `candidates` (capped at 64).
  ///
  /// Weight of a candidate with degree d is (d + 1)^bias: bias > 0 favors
  /// strongly connected vertices, bias < 0 favors weakly connected ones
  /// (Table 3: removals biased toward less connected, edge targets toward
  /// strongly connected), bias = 0 is uniform.
  std::optional<VertexId> DegreeBiasedVertex(Rng& rng, double bias,
                                             size_t candidates = 16) const;

  /// A uniform vertex distinct from `other` (nullopt if none exists).
  std::optional<VertexId> UniformVertexOtherThan(Rng& rng,
                                                 VertexId other) const;

  /// All vertex ids (dense storage order; mutates across removals).
  const std::vector<VertexId>& vertex_ids() const { return vertices_; }

  /// Adjacency lists above this length maintain a neighbor→slot index.
  static constexpr size_t kAdjIndexThreshold = 32;

 private:
  struct EdgeIdHash {
    size_t operator()(const EdgeId& e) const {
      uint64_t h = e.src * 0x9e3779b97f4a7c15ULL;
      h ^= e.dst + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  /// Flat neighbor list with swap-remove and a lazily built slot index for
  /// long (hub) lists.
  struct AdjList {
    std::vector<VertexId> neighbors;
    std::unordered_map<VertexId, uint32_t> slot;  // valid iff indexed
    bool indexed = false;

    void Add(VertexId v);
    void Remove(VertexId v);
    size_t size() const { return neighbors.size(); }
  };

  struct VertexAdj {
    AdjList out;
    AdjList in;
  };

  // Swap-remove vectors give O(1) uniform sampling under churn. adj_ is
  // parallel to vertices_ (same slot per vertex).
  std::vector<VertexId> vertices_;
  std::unordered_map<VertexId, size_t> vertex_pos_;
  std::vector<VertexAdj> adj_;
  std::vector<EdgeId> edges_;
  std::unordered_map<EdgeId, size_t, EdgeIdHash> edge_pos_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_GENERATOR_TOPOLOGY_INDEX_H_
