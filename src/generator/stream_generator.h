// The graph stream generator engine (§4.1, §5.1): runs a GeneratorModel in
// two phases (bootstrap + round-based evolution) and produces the event
// sequence of a graph stream, including phase markers and periodic markers.
//
// Two emission modes share one engine:
//   * GenerateTo(consumer) — streaming: each event is pushed to an
//     EventConsumer as it is produced, so memory use is bounded by the
//     topology shadow, never by the stream length (out-of-core generation);
//   * Generate() — legacy: collects the whole stream into a
//     GeneratedStream vector via CollectingConsumer.
// Both produce byte-identical streams for the same model/seed/options.
#ifndef GRAPHTIDES_GENERATOR_STREAM_GENERATOR_H_
#define GRAPHTIDES_GENERATOR_STREAM_GENERATOR_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "generator/event_consumer.h"
#include "generator/graph_builder.h"
#include "generator/model.h"
#include "stream/event.h"

namespace graphtides {

struct StreamGeneratorOptions {
  uint64_t seed = 42;
  /// Number of evolution-phase graph events to generate.
  size_t rounds = 10000;
  /// Emit "MARK_<n>" markers every this many evolution events (0 = off).
  size_t marker_interval = 0;
  /// Emit BOOTSTRAP_DONE / STREAM_END phase markers.
  bool emit_phase_markers = true;
  /// Insert a PAUSE of this length right after the bootstrap marker —
  /// the paper's standard two-phase stream layout (§4.1).
  Duration bootstrap_pause = Duration::Zero();
  /// Give up on a round after this many rejected candidates (selection
  /// failures, vetoes, constraint violations). The round is skipped; the
  /// generator continues. A fully stuck model aborts after
  /// `max_consecutive_skips` skipped rounds.
  size_t max_retries_per_round = 64;
  size_t max_consecutive_skips = 1000;
};

/// \brief Accounting of one generation run (no events — the streaming
/// result; events went to the consumer).
struct GenerateSummary {
  /// Stream entries emitted to the consumer (graph ops + markers +
  /// controls).
  size_t total_events = 0;
  size_t bootstrap_events = 0;
  size_t evolution_events = 0;
  size_t skipped_rounds = 0;
  /// Final topology sizes.
  size_t final_vertices = 0;
  size_t final_edges = 0;
};

struct GeneratedStream {
  std::vector<Event> events;
  size_t bootstrap_events = 0;
  size_t evolution_events = 0;
  size_t skipped_rounds = 0;
  /// Final topology sizes.
  size_t final_vertices = 0;
  size_t final_edges = 0;
};

/// \brief Runs a model to completion, streaming events to a consumer.
class StreamGenerator {
 public:
  StreamGenerator(GeneratorModel* model, StreamGeneratorOptions options)
      : model_(model), options_(options) {}

  /// Streaming emission: pushes every event to `consumer` in stream order
  /// and calls consumer.Finish() after the last one. Constant-memory in the
  /// stream length.
  Result<GenerateSummary> GenerateTo(EventConsumer& consumer);

  /// Legacy in-memory emission: materializes the whole stream.
  Result<GeneratedStream> Generate();

 private:
  /// Builds one evolution event into *out. Returns false with *error OK
  /// when the model produced no applicable candidate this attempt (the
  /// caller retries — the common case, kept free of Status message
  /// allocation), false with *error set on an engine error.
  bool BuildEvent(EventType type, GeneratorContext& ctx,
                  TopologyIndex& topology, Event* out, Status* error);

  GeneratorModel* model_;
  StreamGeneratorOptions options_;
};

/// \brief A control/marker entry to splice into a generated stream at an
/// absolute position counted in *graph events* (markers/controls do not
/// advance the position). Used to express workloads like Table 4's
/// "pause after 100,000 events, doubled rate for the next 50,000".
struct ScheduleEntry {
  size_t after_graph_events = 0;
  Event event;
};

/// \brief Splices schedule entries into `events`. Entries must be sorted by
/// position; several entries at one position keep their relative order.
std::vector<Event> ApplyControlSchedule(std::vector<Event> events,
                                        std::vector<ScheduleEntry> schedule);

}  // namespace graphtides

#endif  // GRAPHTIDES_GENERATOR_STREAM_GENERATOR_H_
