#include "generator/topology_index.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

namespace graphtides {

namespace {

/// Memoized (d + 1)^bias for small degrees. Degree-biased selection calls
/// pow() per candidate otherwise, which dominates generation time under
/// power-law models; nearly all candidates have small degrees, so caching
/// the weight per (bias, degree) removes almost every pow call. Weights are
/// bit-identical to the direct computation, so selection is unchanged.
/// Holds a few bias values at once because models alternate between biases
/// (e.g. negative for removals, positive for edge targets).
struct BiasWeightCache {
  static constexpr size_t kMaxDegree = 1024;
  static constexpr size_t kMaxBiases = 4;

  struct Entry {
    double bias = 0.0;
    bool valid = false;
    std::array<double, kMaxDegree> weight;  // NaN = not yet computed

    double Weight(size_t degree) {
      if (degree >= kMaxDegree) {
        return std::pow(static_cast<double>(degree) + 1.0, bias);
      }
      double& w = weight[degree];
      if (std::isnan(w)) w = std::pow(static_cast<double>(degree) + 1.0, bias);
      return w;
    }
  };
  std::array<Entry, kMaxBiases> entries;
  size_t next_victim = 0;

  /// Entry for `bias`, evicting round-robin on a miss. Callers hoist this
  /// lookup out of their per-candidate loop.
  Entry& EntryFor(double bias) {
    for (Entry& e : entries) {
      if (e.valid && e.bias == bias) return e;
    }
    Entry& e = entries[next_victim];
    next_victim = (next_victim + 1) % kMaxBiases;
    e.bias = bias;
    e.valid = true;
    e.weight.fill(std::numeric_limits<double>::quiet_NaN());
    return e;
  }
};

thread_local BiasWeightCache g_bias_cache;

}  // namespace

void TopologyIndex::AdjList::Add(VertexId v) {
  neighbors.push_back(v);
  if (indexed) {
    slot.emplace(v, static_cast<uint32_t>(neighbors.size() - 1));
  } else if (neighbors.size() > kAdjIndexThreshold) {
    slot.reserve(neighbors.size() * 2);
    for (size_t i = 0; i < neighbors.size(); ++i) {
      slot.emplace(neighbors[i], static_cast<uint32_t>(i));
    }
    indexed = true;
  }
}

void TopologyIndex::AdjList::Remove(VertexId v) {
  if (indexed) {
    auto it = slot.find(v);
    if (it == slot.end()) return;
    const size_t pos = it->second;
    const VertexId last = neighbors.back();
    neighbors[pos] = last;
    slot[last] = static_cast<uint32_t>(pos);
    neighbors.pop_back();
    slot.erase(v);
    return;
  }
  // Backward scan: RemoveVertex cascades drain from the back, so the hit is
  // usually the first probe.
  for (size_t i = neighbors.size(); i-- > 0;) {
    if (neighbors[i] == v) {
      neighbors[i] = neighbors.back();
      neighbors.pop_back();
      return;
    }
  }
}

Status TopologyIndex::AddVertex(VertexId id) {
  auto [it, inserted] = vertex_pos_.try_emplace(id, vertices_.size());
  if (!inserted) {
    return Status::PreconditionFailed("vertex already exists: " +
                                      std::to_string(id));
  }
  vertices_.push_back(id);
  adj_.emplace_back();
  return Status::OK();
}

Status TopologyIndex::RemoveVertex(VertexId id) {
  auto pos_it = vertex_pos_.find(id);
  if (pos_it == vertex_pos_.end()) {
    return Status::PreconditionFailed("vertex does not exist: " +
                                      std::to_string(id));
  }
  // Cascade edge removal straight off the adjacency vectors — RemoveEdge
  // swap-removes the drained entry, so each iteration shrinks the list
  // without copying it first. Edge removal never moves vertex slots, so
  // `pos` stays valid throughout.
  const size_t pos = pos_it->second;
  while (!adj_[pos].out.neighbors.empty()) {
    Status st = RemoveEdge(id, adj_[pos].out.neighbors.back());
    (void)st;
  }
  while (!adj_[pos].in.neighbors.empty()) {
    Status st = RemoveEdge(adj_[pos].in.neighbors.back(), id);
    (void)st;
  }
  // Swap-remove from the dense vertex vector (adj_ moves in lockstep).
  const size_t last_pos = vertices_.size() - 1;
  if (pos != last_pos) {
    const VertexId last = vertices_[last_pos];
    vertices_[pos] = last;
    adj_[pos] = std::move(adj_[last_pos]);
    vertex_pos_[last] = pos;
  }
  vertices_.pop_back();
  adj_.pop_back();
  vertex_pos_.erase(pos_it);
  return Status::OK();
}

Status TopologyIndex::AddEdge(VertexId src, VertexId dst) {
  if (src == dst) {
    return Status::PreconditionFailed("self-loops are not allowed");
  }
  auto src_it = vertex_pos_.find(src);
  auto dst_it = vertex_pos_.find(dst);
  if (src_it == vertex_pos_.end() || dst_it == vertex_pos_.end()) {
    return Status::PreconditionFailed("edge endpoint does not exist");
  }
  const EdgeId edge{src, dst};
  auto [it, inserted] = edge_pos_.try_emplace(edge, edges_.size());
  if (!inserted) {
    return Status::PreconditionFailed("edge already exists");
  }
  edges_.push_back(edge);
  adj_[src_it->second].out.Add(dst);
  adj_[dst_it->second].in.Add(src);
  return Status::OK();
}

Status TopologyIndex::RemoveEdge(VertexId src, VertexId dst) {
  const EdgeId edge{src, dst};
  auto pos_it = edge_pos_.find(edge);
  if (pos_it == edge_pos_.end()) {
    return Status::PreconditionFailed("edge does not exist");
  }
  const size_t pos = pos_it->second;
  const EdgeId last = edges_.back();
  edges_[pos] = last;
  edge_pos_[last] = pos;
  edges_.pop_back();
  edge_pos_.erase(edge);
  adj_[vertex_pos_.find(src)->second].out.Remove(dst);
  adj_[vertex_pos_.find(dst)->second].in.Remove(src);
  return Status::OK();
}

bool TopologyIndex::HasEdge(VertexId src, VertexId dst) const {
  return edge_pos_.contains(EdgeId{src, dst});
}

size_t TopologyIndex::DegreeOf(VertexId id) const {
  auto it = vertex_pos_.find(id);
  if (it == vertex_pos_.end()) return 0;
  return adj_[it->second].out.size() + adj_[it->second].in.size();
}

size_t TopologyIndex::OutDegreeOf(VertexId id) const {
  auto it = vertex_pos_.find(id);
  return it == vertex_pos_.end() ? 0 : adj_[it->second].out.size();
}

std::optional<VertexId> TopologyIndex::UniformVertex(Rng& rng) const {
  if (vertices_.empty()) return std::nullopt;
  return vertices_[rng.NextBounded(vertices_.size())];
}

std::optional<EdgeId> TopologyIndex::UniformEdge(Rng& rng) const {
  if (edges_.empty()) return std::nullopt;
  return edges_[rng.NextBounded(edges_.size())];
}

std::optional<VertexId> TopologyIndex::PreferentialVertex(Rng& rng) const {
  if (edges_.empty()) return UniformVertex(rng);
  const EdgeId e = edges_[rng.NextBounded(edges_.size())];
  return rng.NextBool(0.5) ? e.src : e.dst;
}

std::optional<VertexId> TopologyIndex::DegreeBiasedVertex(
    Rng& rng, double bias, size_t candidates) const {
  if (vertices_.empty()) return std::nullopt;
  if (bias == 0.0 || vertices_.size() == 1) return UniformVertex(rng);
  constexpr size_t kMaxCandidates = 64;
  candidates = std::min({candidates, vertices_.size(), kMaxCandidates});
  // Stack buffers: this runs once per degree-biased selection attempt, so
  // it must not allocate.
  VertexId picks[kMaxCandidates] = {};
  double weights[kMaxCandidates] = {};
  BiasWeightCache::Entry& cache = g_bias_cache.EntryFor(bias);
  for (size_t i = 0; i < candidates; ++i) {
    const size_t slot = rng.NextBounded(vertices_.size());
    picks[i] = vertices_[slot];
    const size_t degree = adj_[slot].out.size() + adj_[slot].in.size();
    weights[i] = cache.Weight(degree);
  }
  const size_t chosen = rng.NextWeighted(weights, candidates);
  if (chosen >= candidates) return picks[0];
  return picks[chosen];
}

std::optional<VertexId> TopologyIndex::UniformVertexOtherThan(
    Rng& rng, VertexId other) const {
  if (vertices_.empty()) return std::nullopt;
  if (vertices_.size() == 1) {
    return vertices_[0] == other ? std::nullopt
                                 : std::optional<VertexId>(vertices_[0]);
  }
  for (int attempt = 0; attempt < 16; ++attempt) {
    const VertexId v = vertices_[rng.NextBounded(vertices_.size())];
    if (v != other) return v;
  }
  // Degenerate duplicate-heavy case: linear scan.
  for (VertexId v : vertices_) {
    if (v != other) return v;
  }
  return std::nullopt;
}

}  // namespace graphtides
