#include "generator/topology_index.h"

#include <cmath>

namespace graphtides {

Status TopologyIndex::AddVertex(VertexId id) {
  auto [it, inserted] = vertex_pos_.try_emplace(id, vertices_.size());
  if (!inserted) {
    return Status::PreconditionFailed("vertex already exists: " +
                                      std::to_string(id));
  }
  vertices_.push_back(id);
  out_[id];
  in_[id];
  return Status::OK();
}

Status TopologyIndex::RemoveVertex(VertexId id) {
  auto pos_it = vertex_pos_.find(id);
  if (pos_it == vertex_pos_.end()) {
    return Status::PreconditionFailed("vertex does not exist: " +
                                      std::to_string(id));
  }
  // Cascade edge removal; copy neighbor sets because RemoveEdge mutates.
  const std::unordered_set<VertexId> outs = out_[id];
  for (VertexId dst : outs) {
    Status st = RemoveEdge(id, dst);
    (void)st;
  }
  const std::unordered_set<VertexId> ins = in_[id];
  for (VertexId src : ins) {
    Status st = RemoveEdge(src, id);
    (void)st;
  }
  // Swap-remove from the dense vertex vector.
  const size_t pos = pos_it->second;
  const VertexId last = vertices_.back();
  vertices_[pos] = last;
  vertex_pos_[last] = pos;
  vertices_.pop_back();
  vertex_pos_.erase(id);
  out_.erase(id);
  in_.erase(id);
  return Status::OK();
}

Status TopologyIndex::AddEdge(VertexId src, VertexId dst) {
  if (src == dst) {
    return Status::PreconditionFailed("self-loops are not allowed");
  }
  if (!HasVertex(src) || !HasVertex(dst)) {
    return Status::PreconditionFailed("edge endpoint does not exist");
  }
  const EdgeId edge{src, dst};
  auto [it, inserted] = edge_pos_.try_emplace(edge, edges_.size());
  if (!inserted) {
    return Status::PreconditionFailed("edge already exists");
  }
  edges_.push_back(edge);
  out_[src].insert(dst);
  in_[dst].insert(src);
  return Status::OK();
}

Status TopologyIndex::RemoveEdge(VertexId src, VertexId dst) {
  const EdgeId edge{src, dst};
  auto pos_it = edge_pos_.find(edge);
  if (pos_it == edge_pos_.end()) {
    return Status::PreconditionFailed("edge does not exist");
  }
  const size_t pos = pos_it->second;
  const EdgeId last = edges_.back();
  edges_[pos] = last;
  edge_pos_[last] = pos;
  edges_.pop_back();
  edge_pos_.erase(edge);
  out_[src].erase(dst);
  in_[dst].erase(src);
  return Status::OK();
}

bool TopologyIndex::HasEdge(VertexId src, VertexId dst) const {
  return edge_pos_.contains(EdgeId{src, dst});
}

size_t TopologyIndex::DegreeOf(VertexId id) const {
  size_t degree = 0;
  if (auto it = out_.find(id); it != out_.end()) degree += it->second.size();
  if (auto it = in_.find(id); it != in_.end()) degree += it->second.size();
  return degree;
}

size_t TopologyIndex::OutDegreeOf(VertexId id) const {
  auto it = out_.find(id);
  return it == out_.end() ? 0 : it->second.size();
}

std::optional<VertexId> TopologyIndex::UniformVertex(Rng& rng) const {
  if (vertices_.empty()) return std::nullopt;
  return vertices_[rng.NextBounded(vertices_.size())];
}

std::optional<EdgeId> TopologyIndex::UniformEdge(Rng& rng) const {
  if (edges_.empty()) return std::nullopt;
  return edges_[rng.NextBounded(edges_.size())];
}

std::optional<VertexId> TopologyIndex::PreferentialVertex(Rng& rng) const {
  if (edges_.empty()) return UniformVertex(rng);
  const EdgeId e = edges_[rng.NextBounded(edges_.size())];
  return rng.NextBool(0.5) ? e.src : e.dst;
}

std::optional<VertexId> TopologyIndex::DegreeBiasedVertex(
    Rng& rng, double bias, size_t candidates) const {
  if (vertices_.empty()) return std::nullopt;
  if (bias == 0.0 || vertices_.size() == 1) return UniformVertex(rng);
  candidates = std::min(candidates, vertices_.size());
  std::vector<VertexId> picks;
  std::vector<double> weights;
  picks.reserve(candidates);
  weights.reserve(candidates);
  for (size_t i = 0; i < candidates; ++i) {
    const VertexId v = vertices_[rng.NextBounded(vertices_.size())];
    picks.push_back(v);
    weights.push_back(
        std::pow(static_cast<double>(DegreeOf(v) + 1), bias));
  }
  const size_t chosen = rng.NextWeighted(weights);
  if (chosen >= picks.size()) return picks.front();
  return picks[chosen];
}

std::optional<VertexId> TopologyIndex::UniformVertexOtherThan(
    Rng& rng, VertexId other) const {
  if (vertices_.empty()) return std::nullopt;
  if (vertices_.size() == 1) {
    return vertices_[0] == other ? std::nullopt
                                 : std::optional<VertexId>(vertices_[0]);
  }
  for (int attempt = 0; attempt < 16; ++attempt) {
    const VertexId v = vertices_[rng.NextBounded(vertices_.size())];
    if (v != other) return v;
  }
  // Degenerate duplicate-heavy case: linear scan.
  for (VertexId v : vertices_) {
    if (v != other) return v;
  }
  return std::nullopt;
}

}  // namespace graphtides
