// Pipelined stream writer: the generator half of the tentpole perf path.
//
// The generator thread produces Events; this consumer packs them into
// EventBatch arenas and hands full batches over an SPSC queue to a
// dedicated writer thread, which serializes each batch with the shared
// std::to_chars-based formatter into one reused buffer and issues a single
// write per batch. Drained batches travel back through a recycle queue, so
// the steady state runs without heap allocation and generation overlaps
// serialization + I/O (§5.1's decoupled multi-threaded design, applied to
// generation instead of replay).
#ifndef GRAPHTIDES_GENERATOR_STREAM_PIPELINE_H_
#define GRAPHTIDES_GENERATOR_STREAM_PIPELINE_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>

#include "common/status.h"
#include "generator/event_consumer.h"
#include "replayer/event_batch.h"
#include "replayer/spsc_queue.h"

namespace graphtides {

struct PipelinedWriterOptions {
  /// Events per batch handed to the writer thread (also the unit of one
  /// write call).
  size_t batch_events = 4096;
  /// Bounded depth of the engine -> writer queue; bounds memory to roughly
  /// queue_batches * batch arena size regardless of stream length.
  size_t queue_batches = 8;
};

/// \brief EventConsumer that streams serialized CSV lines to a FILE*.
///
/// Single-producer: Consume/Finish must be called from one thread. The
/// FILE* is borrowed, not owned; Finish() flushes it. If the writer thread
/// hits an I/O error, the error surfaces from the next Consume (or from
/// Finish), which aborts generation early.
class PipelinedWriterConsumer final : public EventConsumer {
 public:
  explicit PipelinedWriterConsumer(FILE* out,
                                   PipelinedWriterOptions options = {});
  ~PipelinedWriterConsumer() override;

  PipelinedWriterConsumer(const PipelinedWriterConsumer&) = delete;
  PipelinedWriterConsumer& operator=(const PipelinedWriterConsumer&) = delete;

  Status Consume(Event&& event) override;

  /// Flushes the partial batch, joins the writer thread, flushes the FILE*,
  /// and returns the writer's status. Idempotent.
  Status Finish() override;

  /// Bytes handed to fwrite so far (exact after Finish()).
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  uint64_t events_written() const {
    return events_written_.load(std::memory_order_relaxed);
  }

 private:
  void WriterLoop();
  /// Hands the current batch to the writer (spins while the queue is full)
  /// and acquires an empty one. Fails fast if the writer already failed.
  Status FlushCurrentBatch();

  FILE* out_;
  PipelinedWriterOptions options_;

  EventBatch current_;
  SpscQueue<EventBatch> full_queue_;
  SpscQueue<EventBatch> recycle_queue_;

  std::thread writer_;
  std::atomic<bool> producer_done_{false};
  std::atomic<bool> writer_failed_{false};
  Status writer_status_;  // written by writer before writer_failed_ release
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> events_written_{0};
  bool finished_ = false;
  Status finish_status_;
};

}  // namespace graphtides

#endif  // GRAPHTIDES_GENERATOR_STREAM_PIPELINE_H_
