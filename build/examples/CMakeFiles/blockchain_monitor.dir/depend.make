# Empty dependencies file for blockchain_monitor.
# This may be replaced when dependencies are built.
