file(REMOVE_RECURSE
  "CMakeFiles/blockchain_monitor.dir/blockchain_monitor.cpp.o"
  "CMakeFiles/blockchain_monitor.dir/blockchain_monitor.cpp.o.d"
  "blockchain_monitor"
  "blockchain_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blockchain_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
