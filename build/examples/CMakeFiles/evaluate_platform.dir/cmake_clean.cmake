file(REMOVE_RECURSE
  "CMakeFiles/evaluate_platform.dir/evaluate_platform.cpp.o"
  "CMakeFiles/evaluate_platform.dir/evaluate_platform.cpp.o.d"
  "evaluate_platform"
  "evaluate_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluate_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
