# Empty compiler generated dependencies file for evaluate_platform.
# This may be replaced when dependencies are built.
