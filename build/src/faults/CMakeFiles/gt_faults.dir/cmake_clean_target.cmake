file(REMOVE_RECURSE
  "libgt_faults.a"
)
