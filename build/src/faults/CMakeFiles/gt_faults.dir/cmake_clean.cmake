file(REMOVE_RECURSE
  "CMakeFiles/gt_faults.dir/fault_injector.cc.o"
  "CMakeFiles/gt_faults.dir/fault_injector.cc.o.d"
  "libgt_faults.a"
  "libgt_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
