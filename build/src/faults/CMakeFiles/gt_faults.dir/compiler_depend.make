# Empty compiler generated dependencies file for gt_faults.
# This may be replaced when dependencies are built.
