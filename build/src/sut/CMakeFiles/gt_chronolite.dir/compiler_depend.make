# Empty compiler generated dependencies file for gt_chronolite.
# This may be replaced when dependencies are built.
