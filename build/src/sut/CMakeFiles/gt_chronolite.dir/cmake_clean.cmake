file(REMOVE_RECURSE
  "CMakeFiles/gt_chronolite.dir/chronolite/chronolite.cc.o"
  "CMakeFiles/gt_chronolite.dir/chronolite/chronolite.cc.o.d"
  "CMakeFiles/gt_chronolite.dir/chronolite/experiment.cc.o"
  "CMakeFiles/gt_chronolite.dir/chronolite/experiment.cc.o.d"
  "libgt_chronolite.a"
  "libgt_chronolite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_chronolite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
