file(REMOVE_RECURSE
  "libgt_chronolite.a"
)
