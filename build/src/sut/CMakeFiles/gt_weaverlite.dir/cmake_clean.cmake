file(REMOVE_RECURSE
  "CMakeFiles/gt_weaverlite.dir/weaverlite/experiment.cc.o"
  "CMakeFiles/gt_weaverlite.dir/weaverlite/experiment.cc.o.d"
  "CMakeFiles/gt_weaverlite.dir/weaverlite/weaverlite.cc.o"
  "CMakeFiles/gt_weaverlite.dir/weaverlite/weaverlite.cc.o.d"
  "libgt_weaverlite.a"
  "libgt_weaverlite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_weaverlite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
