file(REMOVE_RECURSE
  "libgt_weaverlite.a"
)
