
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sut/weaverlite/experiment.cc" "src/sut/CMakeFiles/gt_weaverlite.dir/weaverlite/experiment.cc.o" "gcc" "src/sut/CMakeFiles/gt_weaverlite.dir/weaverlite/experiment.cc.o.d"
  "/root/repo/src/sut/weaverlite/weaverlite.cc" "src/sut/CMakeFiles/gt_weaverlite.dir/weaverlite/weaverlite.cc.o" "gcc" "src/sut/CMakeFiles/gt_weaverlite.dir/weaverlite/weaverlite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/gt_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/gt_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gt_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
