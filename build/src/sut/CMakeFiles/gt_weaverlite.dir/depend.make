# Empty dependencies file for gt_weaverlite.
# This may be replaced when dependencies are built.
