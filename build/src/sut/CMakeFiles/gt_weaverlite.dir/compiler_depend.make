# Empty compiler generated dependencies file for gt_weaverlite.
# This may be replaced when dependencies are built.
