# Empty dependencies file for gt_stream.
# This may be replaced when dependencies are built.
