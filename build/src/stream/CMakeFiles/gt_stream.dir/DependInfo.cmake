
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/event.cc" "src/stream/CMakeFiles/gt_stream.dir/event.cc.o" "gcc" "src/stream/CMakeFiles/gt_stream.dir/event.cc.o.d"
  "/root/repo/src/stream/statistics.cc" "src/stream/CMakeFiles/gt_stream.dir/statistics.cc.o" "gcc" "src/stream/CMakeFiles/gt_stream.dir/statistics.cc.o.d"
  "/root/repo/src/stream/stream_file.cc" "src/stream/CMakeFiles/gt_stream.dir/stream_file.cc.o" "gcc" "src/stream/CMakeFiles/gt_stream.dir/stream_file.cc.o.d"
  "/root/repo/src/stream/validator.cc" "src/stream/CMakeFiles/gt_stream.dir/validator.cc.o" "gcc" "src/stream/CMakeFiles/gt_stream.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
