file(REMOVE_RECURSE
  "libgt_stream.a"
)
