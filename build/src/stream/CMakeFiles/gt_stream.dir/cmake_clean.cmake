file(REMOVE_RECURSE
  "CMakeFiles/gt_stream.dir/event.cc.o"
  "CMakeFiles/gt_stream.dir/event.cc.o.d"
  "CMakeFiles/gt_stream.dir/statistics.cc.o"
  "CMakeFiles/gt_stream.dir/statistics.cc.o.d"
  "CMakeFiles/gt_stream.dir/stream_file.cc.o"
  "CMakeFiles/gt_stream.dir/stream_file.cc.o.d"
  "CMakeFiles/gt_stream.dir/validator.cc.o"
  "CMakeFiles/gt_stream.dir/validator.cc.o.d"
  "libgt_stream.a"
  "libgt_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
