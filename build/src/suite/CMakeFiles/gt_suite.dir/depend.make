# Empty dependencies file for gt_suite.
# This may be replaced when dependencies are built.
