file(REMOVE_RECURSE
  "libgt_suite.a"
)
