file(REMOVE_RECURSE
  "CMakeFiles/gt_suite.dir/benchmark_suite.cc.o"
  "CMakeFiles/gt_suite.dir/benchmark_suite.cc.o.d"
  "CMakeFiles/gt_suite.dir/connectors/hybrid_connector.cc.o"
  "CMakeFiles/gt_suite.dir/connectors/hybrid_connector.cc.o.d"
  "CMakeFiles/gt_suite.dir/connectors/offline_connector.cc.o"
  "CMakeFiles/gt_suite.dir/connectors/offline_connector.cc.o.d"
  "CMakeFiles/gt_suite.dir/connectors/online_connector.cc.o"
  "CMakeFiles/gt_suite.dir/connectors/online_connector.cc.o.d"
  "libgt_suite.a"
  "libgt_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
