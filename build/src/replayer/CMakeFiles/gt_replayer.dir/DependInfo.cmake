
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replayer/event_sink.cc" "src/replayer/CMakeFiles/gt_replayer.dir/event_sink.cc.o" "gcc" "src/replayer/CMakeFiles/gt_replayer.dir/event_sink.cc.o.d"
  "/root/repo/src/replayer/rate_controller.cc" "src/replayer/CMakeFiles/gt_replayer.dir/rate_controller.cc.o" "gcc" "src/replayer/CMakeFiles/gt_replayer.dir/rate_controller.cc.o.d"
  "/root/repo/src/replayer/replayer.cc" "src/replayer/CMakeFiles/gt_replayer.dir/replayer.cc.o" "gcc" "src/replayer/CMakeFiles/gt_replayer.dir/replayer.cc.o.d"
  "/root/repo/src/replayer/tcp.cc" "src/replayer/CMakeFiles/gt_replayer.dir/tcp.cc.o" "gcc" "src/replayer/CMakeFiles/gt_replayer.dir/tcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/gt_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
