# Empty compiler generated dependencies file for gt_replayer.
# This may be replaced when dependencies are built.
