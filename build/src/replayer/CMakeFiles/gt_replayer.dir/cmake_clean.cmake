file(REMOVE_RECURSE
  "CMakeFiles/gt_replayer.dir/event_sink.cc.o"
  "CMakeFiles/gt_replayer.dir/event_sink.cc.o.d"
  "CMakeFiles/gt_replayer.dir/rate_controller.cc.o"
  "CMakeFiles/gt_replayer.dir/rate_controller.cc.o.d"
  "CMakeFiles/gt_replayer.dir/replayer.cc.o"
  "CMakeFiles/gt_replayer.dir/replayer.cc.o.d"
  "CMakeFiles/gt_replayer.dir/tcp.cc.o"
  "CMakeFiles/gt_replayer.dir/tcp.cc.o.d"
  "libgt_replayer.a"
  "libgt_replayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_replayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
