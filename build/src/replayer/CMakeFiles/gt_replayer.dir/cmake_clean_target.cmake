file(REMOVE_RECURSE
  "libgt_replayer.a"
)
