file(REMOVE_RECURSE
  "libgt_harness.a"
)
