
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/experiment.cc" "src/harness/CMakeFiles/gt_harness.dir/experiment.cc.o" "gcc" "src/harness/CMakeFiles/gt_harness.dir/experiment.cc.o.d"
  "/root/repo/src/harness/log_collector.cc" "src/harness/CMakeFiles/gt_harness.dir/log_collector.cc.o" "gcc" "src/harness/CMakeFiles/gt_harness.dir/log_collector.cc.o.d"
  "/root/repo/src/harness/log_record.cc" "src/harness/CMakeFiles/gt_harness.dir/log_record.cc.o" "gcc" "src/harness/CMakeFiles/gt_harness.dir/log_record.cc.o.d"
  "/root/repo/src/harness/marker_correlator.cc" "src/harness/CMakeFiles/gt_harness.dir/marker_correlator.cc.o" "gcc" "src/harness/CMakeFiles/gt_harness.dir/marker_correlator.cc.o.d"
  "/root/repo/src/harness/metrics_logger.cc" "src/harness/CMakeFiles/gt_harness.dir/metrics_logger.cc.o" "gcc" "src/harness/CMakeFiles/gt_harness.dir/metrics_logger.cc.o.d"
  "/root/repo/src/harness/process_monitor.cc" "src/harness/CMakeFiles/gt_harness.dir/process_monitor.cc.o" "gcc" "src/harness/CMakeFiles/gt_harness.dir/process_monitor.cc.o.d"
  "/root/repo/src/harness/report.cc" "src/harness/CMakeFiles/gt_harness.dir/report.cc.o" "gcc" "src/harness/CMakeFiles/gt_harness.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gt_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
