file(REMOVE_RECURSE
  "CMakeFiles/gt_harness.dir/experiment.cc.o"
  "CMakeFiles/gt_harness.dir/experiment.cc.o.d"
  "CMakeFiles/gt_harness.dir/log_collector.cc.o"
  "CMakeFiles/gt_harness.dir/log_collector.cc.o.d"
  "CMakeFiles/gt_harness.dir/log_record.cc.o"
  "CMakeFiles/gt_harness.dir/log_record.cc.o.d"
  "CMakeFiles/gt_harness.dir/marker_correlator.cc.o"
  "CMakeFiles/gt_harness.dir/marker_correlator.cc.o.d"
  "CMakeFiles/gt_harness.dir/metrics_logger.cc.o"
  "CMakeFiles/gt_harness.dir/metrics_logger.cc.o.d"
  "CMakeFiles/gt_harness.dir/process_monitor.cc.o"
  "CMakeFiles/gt_harness.dir/process_monitor.cc.o.d"
  "CMakeFiles/gt_harness.dir/report.cc.o"
  "CMakeFiles/gt_harness.dir/report.cc.o.d"
  "libgt_harness.a"
  "libgt_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
