# Empty compiler generated dependencies file for gt_harness.
# This may be replaced when dependencies are built.
