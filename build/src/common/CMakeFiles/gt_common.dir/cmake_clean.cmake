file(REMOVE_RECURSE
  "CMakeFiles/gt_common.dir/csv.cc.o"
  "CMakeFiles/gt_common.dir/csv.cc.o.d"
  "CMakeFiles/gt_common.dir/flags.cc.o"
  "CMakeFiles/gt_common.dir/flags.cc.o.d"
  "CMakeFiles/gt_common.dir/logging.cc.o"
  "CMakeFiles/gt_common.dir/logging.cc.o.d"
  "CMakeFiles/gt_common.dir/random.cc.o"
  "CMakeFiles/gt_common.dir/random.cc.o.d"
  "CMakeFiles/gt_common.dir/stats.cc.o"
  "CMakeFiles/gt_common.dir/stats.cc.o.d"
  "CMakeFiles/gt_common.dir/status.cc.o"
  "CMakeFiles/gt_common.dir/status.cc.o.d"
  "CMakeFiles/gt_common.dir/string_util.cc.o"
  "CMakeFiles/gt_common.dir/string_util.cc.o.d"
  "libgt_common.a"
  "libgt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
