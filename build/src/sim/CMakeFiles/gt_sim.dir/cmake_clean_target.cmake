file(REMOVE_RECURSE
  "libgt_sim.a"
)
