file(REMOVE_RECURSE
  "CMakeFiles/gt_sim.dir/process.cc.o"
  "CMakeFiles/gt_sim.dir/process.cc.o.d"
  "CMakeFiles/gt_sim.dir/simulator.cc.o"
  "CMakeFiles/gt_sim.dir/simulator.cc.o.d"
  "CMakeFiles/gt_sim.dir/virtual_replayer.cc.o"
  "CMakeFiles/gt_sim.dir/virtual_replayer.cc.o.d"
  "libgt_sim.a"
  "libgt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
