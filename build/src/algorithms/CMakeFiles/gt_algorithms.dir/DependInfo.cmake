
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/coloring.cc" "src/algorithms/CMakeFiles/gt_algorithms.dir/coloring.cc.o" "gcc" "src/algorithms/CMakeFiles/gt_algorithms.dir/coloring.cc.o.d"
  "/root/repo/src/algorithms/communities.cc" "src/algorithms/CMakeFiles/gt_algorithms.dir/communities.cc.o" "gcc" "src/algorithms/CMakeFiles/gt_algorithms.dir/communities.cc.o.d"
  "/root/repo/src/algorithms/components.cc" "src/algorithms/CMakeFiles/gt_algorithms.dir/components.cc.o" "gcc" "src/algorithms/CMakeFiles/gt_algorithms.dir/components.cc.o.d"
  "/root/repo/src/algorithms/cycles.cc" "src/algorithms/CMakeFiles/gt_algorithms.dir/cycles.cc.o" "gcc" "src/algorithms/CMakeFiles/gt_algorithms.dir/cycles.cc.o.d"
  "/root/repo/src/algorithms/incremental.cc" "src/algorithms/CMakeFiles/gt_algorithms.dir/incremental.cc.o" "gcc" "src/algorithms/CMakeFiles/gt_algorithms.dir/incremental.cc.o.d"
  "/root/repo/src/algorithms/kmeans.cc" "src/algorithms/CMakeFiles/gt_algorithms.dir/kmeans.cc.o" "gcc" "src/algorithms/CMakeFiles/gt_algorithms.dir/kmeans.cc.o.d"
  "/root/repo/src/algorithms/online_pagerank.cc" "src/algorithms/CMakeFiles/gt_algorithms.dir/online_pagerank.cc.o" "gcc" "src/algorithms/CMakeFiles/gt_algorithms.dir/online_pagerank.cc.o.d"
  "/root/repo/src/algorithms/pagerank.cc" "src/algorithms/CMakeFiles/gt_algorithms.dir/pagerank.cc.o" "gcc" "src/algorithms/CMakeFiles/gt_algorithms.dir/pagerank.cc.o.d"
  "/root/repo/src/algorithms/shortest_paths.cc" "src/algorithms/CMakeFiles/gt_algorithms.dir/shortest_paths.cc.o" "gcc" "src/algorithms/CMakeFiles/gt_algorithms.dir/shortest_paths.cc.o.d"
  "/root/repo/src/algorithms/statistics.cc" "src/algorithms/CMakeFiles/gt_algorithms.dir/statistics.cc.o" "gcc" "src/algorithms/CMakeFiles/gt_algorithms.dir/statistics.cc.o.d"
  "/root/repo/src/algorithms/traversal.cc" "src/algorithms/CMakeFiles/gt_algorithms.dir/traversal.cc.o" "gcc" "src/algorithms/CMakeFiles/gt_algorithms.dir/traversal.cc.o.d"
  "/root/repo/src/algorithms/triangles.cc" "src/algorithms/CMakeFiles/gt_algorithms.dir/triangles.cc.o" "gcc" "src/algorithms/CMakeFiles/gt_algorithms.dir/triangles.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/gt_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
