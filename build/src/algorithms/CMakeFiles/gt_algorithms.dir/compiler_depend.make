# Empty compiler generated dependencies file for gt_algorithms.
# This may be replaced when dependencies are built.
