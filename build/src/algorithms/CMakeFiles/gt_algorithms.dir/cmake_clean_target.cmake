file(REMOVE_RECURSE
  "libgt_algorithms.a"
)
