file(REMOVE_RECURSE
  "CMakeFiles/gt_algorithms.dir/coloring.cc.o"
  "CMakeFiles/gt_algorithms.dir/coloring.cc.o.d"
  "CMakeFiles/gt_algorithms.dir/communities.cc.o"
  "CMakeFiles/gt_algorithms.dir/communities.cc.o.d"
  "CMakeFiles/gt_algorithms.dir/components.cc.o"
  "CMakeFiles/gt_algorithms.dir/components.cc.o.d"
  "CMakeFiles/gt_algorithms.dir/cycles.cc.o"
  "CMakeFiles/gt_algorithms.dir/cycles.cc.o.d"
  "CMakeFiles/gt_algorithms.dir/incremental.cc.o"
  "CMakeFiles/gt_algorithms.dir/incremental.cc.o.d"
  "CMakeFiles/gt_algorithms.dir/kmeans.cc.o"
  "CMakeFiles/gt_algorithms.dir/kmeans.cc.o.d"
  "CMakeFiles/gt_algorithms.dir/online_pagerank.cc.o"
  "CMakeFiles/gt_algorithms.dir/online_pagerank.cc.o.d"
  "CMakeFiles/gt_algorithms.dir/pagerank.cc.o"
  "CMakeFiles/gt_algorithms.dir/pagerank.cc.o.d"
  "CMakeFiles/gt_algorithms.dir/shortest_paths.cc.o"
  "CMakeFiles/gt_algorithms.dir/shortest_paths.cc.o.d"
  "CMakeFiles/gt_algorithms.dir/statistics.cc.o"
  "CMakeFiles/gt_algorithms.dir/statistics.cc.o.d"
  "CMakeFiles/gt_algorithms.dir/traversal.cc.o"
  "CMakeFiles/gt_algorithms.dir/traversal.cc.o.d"
  "CMakeFiles/gt_algorithms.dir/triangles.cc.o"
  "CMakeFiles/gt_algorithms.dir/triangles.cc.o.d"
  "libgt_algorithms.a"
  "libgt_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
