
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/generator/bootstrap.cc" "src/generator/CMakeFiles/gt_generator.dir/bootstrap.cc.o" "gcc" "src/generator/CMakeFiles/gt_generator.dir/bootstrap.cc.o.d"
  "/root/repo/src/generator/graph_builder.cc" "src/generator/CMakeFiles/gt_generator.dir/graph_builder.cc.o" "gcc" "src/generator/CMakeFiles/gt_generator.dir/graph_builder.cc.o.d"
  "/root/repo/src/generator/model.cc" "src/generator/CMakeFiles/gt_generator.dir/model.cc.o" "gcc" "src/generator/CMakeFiles/gt_generator.dir/model.cc.o.d"
  "/root/repo/src/generator/models/blockchain_model.cc" "src/generator/CMakeFiles/gt_generator.dir/models/blockchain_model.cc.o" "gcc" "src/generator/CMakeFiles/gt_generator.dir/models/blockchain_model.cc.o.d"
  "/root/repo/src/generator/models/ddos_model.cc" "src/generator/CMakeFiles/gt_generator.dir/models/ddos_model.cc.o" "gcc" "src/generator/CMakeFiles/gt_generator.dir/models/ddos_model.cc.o.d"
  "/root/repo/src/generator/models/event_mix_model.cc" "src/generator/CMakeFiles/gt_generator.dir/models/event_mix_model.cc.o" "gcc" "src/generator/CMakeFiles/gt_generator.dir/models/event_mix_model.cc.o.d"
  "/root/repo/src/generator/models/social_network_model.cc" "src/generator/CMakeFiles/gt_generator.dir/models/social_network_model.cc.o" "gcc" "src/generator/CMakeFiles/gt_generator.dir/models/social_network_model.cc.o.d"
  "/root/repo/src/generator/stream_generator.cc" "src/generator/CMakeFiles/gt_generator.dir/stream_generator.cc.o" "gcc" "src/generator/CMakeFiles/gt_generator.dir/stream_generator.cc.o.d"
  "/root/repo/src/generator/topology_index.cc" "src/generator/CMakeFiles/gt_generator.dir/topology_index.cc.o" "gcc" "src/generator/CMakeFiles/gt_generator.dir/topology_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/gt_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
