# Empty dependencies file for gt_generator.
# This may be replaced when dependencies are built.
