file(REMOVE_RECURSE
  "libgt_generator.a"
)
