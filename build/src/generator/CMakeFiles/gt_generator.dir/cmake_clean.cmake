file(REMOVE_RECURSE
  "CMakeFiles/gt_generator.dir/bootstrap.cc.o"
  "CMakeFiles/gt_generator.dir/bootstrap.cc.o.d"
  "CMakeFiles/gt_generator.dir/graph_builder.cc.o"
  "CMakeFiles/gt_generator.dir/graph_builder.cc.o.d"
  "CMakeFiles/gt_generator.dir/model.cc.o"
  "CMakeFiles/gt_generator.dir/model.cc.o.d"
  "CMakeFiles/gt_generator.dir/models/blockchain_model.cc.o"
  "CMakeFiles/gt_generator.dir/models/blockchain_model.cc.o.d"
  "CMakeFiles/gt_generator.dir/models/ddos_model.cc.o"
  "CMakeFiles/gt_generator.dir/models/ddos_model.cc.o.d"
  "CMakeFiles/gt_generator.dir/models/event_mix_model.cc.o"
  "CMakeFiles/gt_generator.dir/models/event_mix_model.cc.o.d"
  "CMakeFiles/gt_generator.dir/models/social_network_model.cc.o"
  "CMakeFiles/gt_generator.dir/models/social_network_model.cc.o.d"
  "CMakeFiles/gt_generator.dir/stream_generator.cc.o"
  "CMakeFiles/gt_generator.dir/stream_generator.cc.o.d"
  "CMakeFiles/gt_generator.dir/topology_index.cc.o"
  "CMakeFiles/gt_generator.dir/topology_index.cc.o.d"
  "libgt_generator.a"
  "libgt_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
