file(REMOVE_RECURSE
  "libgt_graph.a"
)
