file(REMOVE_RECURSE
  "CMakeFiles/gt_graph.dir/csr.cc.o"
  "CMakeFiles/gt_graph.dir/csr.cc.o.d"
  "CMakeFiles/gt_graph.dir/graph.cc.o"
  "CMakeFiles/gt_graph.dir/graph.cc.o.d"
  "libgt_graph.a"
  "libgt_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
