file(REMOVE_RECURSE
  "CMakeFiles/gt_analysis.dir/ascii_chart.cc.o"
  "CMakeFiles/gt_analysis.dir/ascii_chart.cc.o.d"
  "CMakeFiles/gt_analysis.dir/time_series.cc.o"
  "CMakeFiles/gt_analysis.dir/time_series.cc.o.d"
  "CMakeFiles/gt_analysis.dir/trend.cc.o"
  "CMakeFiles/gt_analysis.dir/trend.cc.o.d"
  "libgt_analysis.a"
  "libgt_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gt_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
