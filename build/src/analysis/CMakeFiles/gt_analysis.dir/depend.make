# Empty dependencies file for gt_analysis.
# This may be replaced when dependencies are built.
