file(REMOVE_RECURSE
  "libgt_analysis.a"
)
