
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ascii_chart.cc" "src/analysis/CMakeFiles/gt_analysis.dir/ascii_chart.cc.o" "gcc" "src/analysis/CMakeFiles/gt_analysis.dir/ascii_chart.cc.o.d"
  "/root/repo/src/analysis/time_series.cc" "src/analysis/CMakeFiles/gt_analysis.dir/time_series.cc.o" "gcc" "src/analysis/CMakeFiles/gt_analysis.dir/time_series.cc.o.d"
  "/root/repo/src/analysis/trend.cc" "src/analysis/CMakeFiles/gt_analysis.dir/trend.cc.o" "gcc" "src/analysis/CMakeFiles/gt_analysis.dir/trend.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
