# Empty dependencies file for tool_gt_replay.
# This may be replaced when dependencies are built.
