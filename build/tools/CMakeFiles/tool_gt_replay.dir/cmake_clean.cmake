file(REMOVE_RECURSE
  "CMakeFiles/tool_gt_replay.dir/gt_replay.cpp.o"
  "CMakeFiles/tool_gt_replay.dir/gt_replay.cpp.o.d"
  "gt_replay"
  "gt_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_gt_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
