# Empty dependencies file for tool_gt_generate.
# This may be replaced when dependencies are built.
