file(REMOVE_RECURSE
  "CMakeFiles/tool_gt_generate.dir/gt_generate.cpp.o"
  "CMakeFiles/tool_gt_generate.dir/gt_generate.cpp.o.d"
  "gt_generate"
  "gt_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_gt_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
