# Empty compiler generated dependencies file for tool_gt_faults.
# This may be replaced when dependencies are built.
