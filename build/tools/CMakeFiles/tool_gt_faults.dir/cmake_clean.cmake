file(REMOVE_RECURSE
  "CMakeFiles/tool_gt_faults.dir/gt_faults.cpp.o"
  "CMakeFiles/tool_gt_faults.dir/gt_faults.cpp.o.d"
  "gt_faults"
  "gt_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_gt_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
