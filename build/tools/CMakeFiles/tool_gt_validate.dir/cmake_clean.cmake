file(REMOVE_RECURSE
  "CMakeFiles/tool_gt_validate.dir/gt_validate.cpp.o"
  "CMakeFiles/tool_gt_validate.dir/gt_validate.cpp.o.d"
  "gt_validate"
  "gt_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_gt_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
