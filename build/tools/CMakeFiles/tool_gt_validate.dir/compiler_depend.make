# Empty compiler generated dependencies file for tool_gt_validate.
# This may be replaced when dependencies are built.
