file(REMOVE_RECURSE
  "CMakeFiles/tool_gt_analyze.dir/gt_analyze.cpp.o"
  "CMakeFiles/tool_gt_analyze.dir/gt_analyze.cpp.o.d"
  "gt_analyze"
  "gt_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_gt_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
