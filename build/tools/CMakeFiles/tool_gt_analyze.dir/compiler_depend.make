# Empty compiler generated dependencies file for tool_gt_analyze.
# This may be replaced when dependencies are built.
