file(REMOVE_RECURSE
  "CMakeFiles/replayer_tests.dir/replayer/rate_controller_test.cc.o"
  "CMakeFiles/replayer_tests.dir/replayer/rate_controller_test.cc.o.d"
  "CMakeFiles/replayer_tests.dir/replayer/replayer_test.cc.o"
  "CMakeFiles/replayer_tests.dir/replayer/replayer_test.cc.o.d"
  "CMakeFiles/replayer_tests.dir/replayer/spsc_queue_test.cc.o"
  "CMakeFiles/replayer_tests.dir/replayer/spsc_queue_test.cc.o.d"
  "CMakeFiles/replayer_tests.dir/replayer/tcp_test.cc.o"
  "CMakeFiles/replayer_tests.dir/replayer/tcp_test.cc.o.d"
  "replayer_tests"
  "replayer_tests.pdb"
  "replayer_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replayer_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
