# Empty compiler generated dependencies file for replayer_tests.
# This may be replaced when dependencies are built.
