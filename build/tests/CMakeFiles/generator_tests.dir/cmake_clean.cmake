file(REMOVE_RECURSE
  "CMakeFiles/generator_tests.dir/generator/bootstrap_test.cc.o"
  "CMakeFiles/generator_tests.dir/generator/bootstrap_test.cc.o.d"
  "CMakeFiles/generator_tests.dir/generator/engine_test.cc.o"
  "CMakeFiles/generator_tests.dir/generator/engine_test.cc.o.d"
  "CMakeFiles/generator_tests.dir/generator/models_test.cc.o"
  "CMakeFiles/generator_tests.dir/generator/models_test.cc.o.d"
  "CMakeFiles/generator_tests.dir/generator/topology_index_test.cc.o"
  "CMakeFiles/generator_tests.dir/generator/topology_index_test.cc.o.d"
  "generator_tests"
  "generator_tests.pdb"
  "generator_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generator_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
