# Empty dependencies file for generator_tests.
# This may be replaced when dependencies are built.
