file(REMOVE_RECURSE
  "CMakeFiles/stream_tests.dir/stream/event_test.cc.o"
  "CMakeFiles/stream_tests.dir/stream/event_test.cc.o.d"
  "CMakeFiles/stream_tests.dir/stream/statistics_test.cc.o"
  "CMakeFiles/stream_tests.dir/stream/statistics_test.cc.o.d"
  "CMakeFiles/stream_tests.dir/stream/stream_file_test.cc.o"
  "CMakeFiles/stream_tests.dir/stream/stream_file_test.cc.o.d"
  "CMakeFiles/stream_tests.dir/stream/validator_test.cc.o"
  "CMakeFiles/stream_tests.dir/stream/validator_test.cc.o.d"
  "stream_tests"
  "stream_tests.pdb"
  "stream_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
