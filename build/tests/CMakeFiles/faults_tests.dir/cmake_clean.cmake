file(REMOVE_RECURSE
  "CMakeFiles/faults_tests.dir/faults/fault_injector_test.cc.o"
  "CMakeFiles/faults_tests.dir/faults/fault_injector_test.cc.o.d"
  "faults_tests"
  "faults_tests.pdb"
  "faults_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faults_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
