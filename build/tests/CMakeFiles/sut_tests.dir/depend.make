# Empty dependencies file for sut_tests.
# This may be replaced when dependencies are built.
