file(REMOVE_RECURSE
  "CMakeFiles/sut_tests.dir/sut/chronolite_test.cc.o"
  "CMakeFiles/sut_tests.dir/sut/chronolite_test.cc.o.d"
  "CMakeFiles/sut_tests.dir/sut/experiments_test.cc.o"
  "CMakeFiles/sut_tests.dir/sut/experiments_test.cc.o.d"
  "CMakeFiles/sut_tests.dir/sut/weaverlite_test.cc.o"
  "CMakeFiles/sut_tests.dir/sut/weaverlite_test.cc.o.d"
  "sut_tests"
  "sut_tests.pdb"
  "sut_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sut_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
