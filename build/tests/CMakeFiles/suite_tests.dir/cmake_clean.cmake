file(REMOVE_RECURSE
  "CMakeFiles/suite_tests.dir/suite/benchmark_suite_test.cc.o"
  "CMakeFiles/suite_tests.dir/suite/benchmark_suite_test.cc.o.d"
  "CMakeFiles/suite_tests.dir/suite/connectors_test.cc.o"
  "CMakeFiles/suite_tests.dir/suite/connectors_test.cc.o.d"
  "suite_tests"
  "suite_tests.pdb"
  "suite_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
