# Empty dependencies file for suite_tests.
# This may be replaced when dependencies are built.
