file(REMOVE_RECURSE
  "CMakeFiles/algorithms_tests.dir/algorithms/coloring_test.cc.o"
  "CMakeFiles/algorithms_tests.dir/algorithms/coloring_test.cc.o.d"
  "CMakeFiles/algorithms_tests.dir/algorithms/communities_test.cc.o"
  "CMakeFiles/algorithms_tests.dir/algorithms/communities_test.cc.o.d"
  "CMakeFiles/algorithms_tests.dir/algorithms/components_test.cc.o"
  "CMakeFiles/algorithms_tests.dir/algorithms/components_test.cc.o.d"
  "CMakeFiles/algorithms_tests.dir/algorithms/cycles_test.cc.o"
  "CMakeFiles/algorithms_tests.dir/algorithms/cycles_test.cc.o.d"
  "CMakeFiles/algorithms_tests.dir/algorithms/incremental_test.cc.o"
  "CMakeFiles/algorithms_tests.dir/algorithms/incremental_test.cc.o.d"
  "CMakeFiles/algorithms_tests.dir/algorithms/kmeans_test.cc.o"
  "CMakeFiles/algorithms_tests.dir/algorithms/kmeans_test.cc.o.d"
  "CMakeFiles/algorithms_tests.dir/algorithms/online_pagerank_test.cc.o"
  "CMakeFiles/algorithms_tests.dir/algorithms/online_pagerank_test.cc.o.d"
  "CMakeFiles/algorithms_tests.dir/algorithms/pagerank_test.cc.o"
  "CMakeFiles/algorithms_tests.dir/algorithms/pagerank_test.cc.o.d"
  "CMakeFiles/algorithms_tests.dir/algorithms/shortest_paths_test.cc.o"
  "CMakeFiles/algorithms_tests.dir/algorithms/shortest_paths_test.cc.o.d"
  "CMakeFiles/algorithms_tests.dir/algorithms/statistics_test.cc.o"
  "CMakeFiles/algorithms_tests.dir/algorithms/statistics_test.cc.o.d"
  "CMakeFiles/algorithms_tests.dir/algorithms/traversal_test.cc.o"
  "CMakeFiles/algorithms_tests.dir/algorithms/traversal_test.cc.o.d"
  "CMakeFiles/algorithms_tests.dir/algorithms/triangles_test.cc.o"
  "CMakeFiles/algorithms_tests.dir/algorithms/triangles_test.cc.o.d"
  "algorithms_tests"
  "algorithms_tests.pdb"
  "algorithms_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algorithms_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
