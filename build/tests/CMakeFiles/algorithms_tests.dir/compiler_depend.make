# Empty compiler generated dependencies file for algorithms_tests.
# This may be replaced when dependencies are built.
