# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/stream_tests[1]_include.cmake")
include("/root/repo/build/tests/graph_tests[1]_include.cmake")
include("/root/repo/build/tests/algorithms_tests[1]_include.cmake")
include("/root/repo/build/tests/generator_tests[1]_include.cmake")
include("/root/repo/build/tests/faults_tests[1]_include.cmake")
include("/root/repo/build/tests/replayer_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/sut_tests[1]_include.cmake")
include("/root/repo/build/tests/harness_tests[1]_include.cmake")
include("/root/repo/build/tests/analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/suite_tests[1]_include.cmake")
