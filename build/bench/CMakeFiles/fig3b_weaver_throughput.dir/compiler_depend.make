# Empty compiler generated dependencies file for fig3b_weaver_throughput.
# This may be replaced when dependencies are built.
