file(REMOVE_RECURSE
  "CMakeFiles/fig3b_weaver_throughput.dir/fig3b_weaver_throughput.cpp.o"
  "CMakeFiles/fig3b_weaver_throughput.dir/fig3b_weaver_throughput.cpp.o.d"
  "fig3b_weaver_throughput"
  "fig3b_weaver_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_weaver_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
