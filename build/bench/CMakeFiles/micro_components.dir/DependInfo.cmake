
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_components.cpp" "bench/CMakeFiles/micro_components.dir/micro_components.cpp.o" "gcc" "bench/CMakeFiles/micro_components.dir/micro_components.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/faults/CMakeFiles/gt_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/replayer/CMakeFiles/gt_replayer.dir/DependInfo.cmake"
  "/root/repo/build/src/sut/CMakeFiles/gt_weaverlite.dir/DependInfo.cmake"
  "/root/repo/build/src/suite/CMakeFiles/gt_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/generator/CMakeFiles/gt_generator.dir/DependInfo.cmake"
  "/root/repo/build/src/sut/CMakeFiles/gt_chronolite.dir/DependInfo.cmake"
  "/root/repo/build/src/algorithms/CMakeFiles/gt_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/gt_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/gt_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gt_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
