# Empty compiler generated dependencies file for fig3a_replayer_throughput.
# This may be replaced when dependencies are built.
