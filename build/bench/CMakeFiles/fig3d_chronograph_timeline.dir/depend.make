# Empty dependencies file for fig3d_chronograph_timeline.
# This may be replaced when dependencies are built.
