file(REMOVE_RECURSE
  "CMakeFiles/fig3d_chronograph_timeline.dir/fig3d_chronograph_timeline.cpp.o"
  "CMakeFiles/fig3d_chronograph_timeline.dir/fig3d_chronograph_timeline.cpp.o.d"
  "fig3d_chronograph_timeline"
  "fig3d_chronograph_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3d_chronograph_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
