file(REMOVE_RECURSE
  "CMakeFiles/suite_comparison.dir/suite_comparison.cpp.o"
  "CMakeFiles/suite_comparison.dir/suite_comparison.cpp.o.d"
  "suite_comparison"
  "suite_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
