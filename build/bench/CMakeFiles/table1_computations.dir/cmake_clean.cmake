file(REMOVE_RECURSE
  "CMakeFiles/table1_computations.dir/table1_computations.cpp.o"
  "CMakeFiles/table1_computations.dir/table1_computations.cpp.o.d"
  "table1_computations"
  "table1_computations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_computations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
