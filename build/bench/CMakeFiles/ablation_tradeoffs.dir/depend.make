# Empty dependencies file for ablation_tradeoffs.
# This may be replaced when dependencies are built.
