file(REMOVE_RECURSE
  "CMakeFiles/ablation_tradeoffs.dir/ablation_tradeoffs.cpp.o"
  "CMakeFiles/ablation_tradeoffs.dir/ablation_tradeoffs.cpp.o.d"
  "ablation_tradeoffs"
  "ablation_tradeoffs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tradeoffs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
