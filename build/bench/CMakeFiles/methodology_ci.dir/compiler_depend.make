# Empty compiler generated dependencies file for methodology_ci.
# This may be replaced when dependencies are built.
