file(REMOVE_RECURSE
  "CMakeFiles/methodology_ci.dir/methodology_ci.cpp.o"
  "CMakeFiles/methodology_ci.dir/methodology_ci.cpp.o.d"
  "methodology_ci"
  "methodology_ci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/methodology_ci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
