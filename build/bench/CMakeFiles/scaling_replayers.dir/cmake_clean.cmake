file(REMOVE_RECURSE
  "CMakeFiles/scaling_replayers.dir/scaling_replayers.cpp.o"
  "CMakeFiles/scaling_replayers.dir/scaling_replayers.cpp.o.d"
  "scaling_replayers"
  "scaling_replayers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_replayers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
