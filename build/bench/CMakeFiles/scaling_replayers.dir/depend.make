# Empty dependencies file for scaling_replayers.
# This may be replaced when dependencies are built.
