file(REMOVE_RECURSE
  "CMakeFiles/faults_ablation.dir/faults_ablation.cpp.o"
  "CMakeFiles/faults_ablation.dir/faults_ablation.cpp.o.d"
  "faults_ablation"
  "faults_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faults_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
