# Empty dependencies file for faults_ablation.
# This may be replaced when dependencies are built.
