file(REMOVE_RECURSE
  "CMakeFiles/fig3c_weaver_cpu.dir/fig3c_weaver_cpu.cpp.o"
  "CMakeFiles/fig3c_weaver_cpu.dir/fig3c_weaver_cpu.cpp.o.d"
  "fig3c_weaver_cpu"
  "fig3c_weaver_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_weaver_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
