# Empty compiler generated dependencies file for fig3c_weaver_cpu.
# This may be replaced when dependencies are built.
