// gt_chaos — kill–resume equivalence harness for the crash-consistency
// layer.
//
// Proves, with real processes and real SIGKILLs, that a replay interrupted
// at arbitrary points and auto-resumed from its last good checkpoint
// delivers the exact same byte stream as an uninterrupted run:
//
//   1. Runs one uninterrupted golden `gt_replay --out` run.
//   2. For every named crash point (and, with --random-kills K, K
//      randomized crash positions derived from --seed), runs a child
//      gt_replay armed via GT_CRASH_AT so it SIGKILLs itself mid-run.
//   3. Supervises the child: while it dies by signal and the resume budget
//      lasts, relaunches it with --resume-from (or from scratch when no
//      checkpoint was published before the kill).
//   4. Byte-compares every per-shard output file against the golden run;
//      the first mismatching offset is reported with hex context and
//      written to --diff-out.
//
// Exit code 0 iff every trial converged to a byte-identical stream.
//
// With --workers W the same drill runs against a distributed fleet:
// gt_coordinator plus W `gt_replay --worker` processes on localhost. Crash
// specs starting with "coord-" SIGKILL the coordinator (workers quiesce,
// checkpoint, and re-dial its respawn); every other spec arms worker 0
// (the coordinator reassigns its orphaned ranges to survivors). The merged
// per-shard fleet outputs must still be byte-identical to the
// single-process golden run.
//
// Usage:
//   gt_chaos --in stream.gts --shards 4 --random-kills 20
//   gt_chaos --generate 300 --model social --seed 7 --workdir /tmp/chaos
//   gt_chaos --shards 4 --workers 2 --workdir /tmp/fleet_chaos
//
// Flags:
//   --in FILE           stream file to replay (omit to generate one)
//   --generate N        rounds for the generated stream (default 200)
//   --model M           generator model (default social)
//   --seed S            seed for generation and random kill positions
//   --shards N          shard lanes (default 1)
//   --rate R            replay rate in events/s (default 1e6 — drills are
//                       about crash placement, not pacing)
//   --replayer PATH     gt_replay binary (default: sibling of gt_chaos)
//   --generator PATH    gt_generate binary (default: sibling of gt_chaos)
//   --crash-at LIST     comma list of POINT[:N] scripted trials; default is
//                       every compiled crash point (epoch-barrier only when
//                       --shards > 1)
//   --random-kills K    additional trials at K seeded random positions
//   --checkpoint-every N  checkpoint cadence in events (default 100)
//   --retry-budget N    resume attempts per trial (default 3)
//   --workdir DIR       scratch directory (default gt_chaos_work)
//   --diff-out FILE     mismatch report (default WORKDIR/diff.txt)
//   --workers W         distributed mode: coordinator + W workers
//                       (requires --shards >= 2; 0 = single-process)
//   --coordinator PATH  gt_coordinator binary (default: sibling)
//   --marker-interval N generated-stream marker cadence (default 100 in
//                       distributed mode so epoch trials have barriers
//                       to crash at, else 0)
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_plan.h"
#include "common/flags.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

using namespace graphtides;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "gt_chaos: %s\n", status.ToString().c_str());
  return 1;
}

/// Outcome of one supervised child process.
struct ChildExit {
  bool exited = false;  ///< normal exit (code in `code`)
  int code = -1;
  bool signaled = false;  ///< killed by signal (number in `sig`)
  int sig = 0;
};

ChildExit DecodeWait(int wstatus) {
  ChildExit out;
  if (WIFEXITED(wstatus)) {
    out.exited = true;
    out.code = WEXITSTATUS(wstatus);
  } else if (WIFSIGNALED(wstatus)) {
    out.signaled = true;
    out.sig = WTERMSIG(wstatus);
  }
  return out;
}

/// fork+exec `args` (args[0] is the binary path) without waiting.
/// `crash_env` non-empty arms GT_CRASH_AT in the child; otherwise the
/// variable is scrubbed so a resumed attempt runs clean. Child stderr goes
/// to `log_path`.
Result<pid_t> SpawnChild(const std::vector<std::string>& args,
                         const std::string& crash_env,
                         const std::string& log_path) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status::IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    if (!log_path.empty()) {
      std::freopen(log_path.c_str(), "w", stderr);
    }
    if (crash_env.empty()) {
      ::unsetenv("GT_CRASH_AT");
    } else {
      ::setenv("GT_CRASH_AT", crash_env.c_str(), 1);
    }
    ::execv(argv[0], argv.data());
    std::fprintf(stderr, "gt_chaos: execv %s: %s\n", argv[0],
                 std::strerror(errno));
    ::_exit(127);
  }
  return pid;
}

/// Non-blocking reap: nullopt while the child is still running.
std::optional<ChildExit> PollChild(pid_t pid) {
  int wstatus = 0;
  const pid_t r = ::waitpid(pid, &wstatus, WNOHANG);
  if (r <= 0) return std::nullopt;
  return DecodeWait(wstatus);
}

/// Spawn + blocking wait (the classic single-process trial path).
Result<ChildExit> RunChild(const std::vector<std::string>& args,
                           const std::string& crash_env,
                           const std::string& log_path) {
  GT_ASSIGN_OR_RETURN(const pid_t pid, SpawnChild(args, crash_env, log_path));
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) < 0) {
    return Status::IoError(std::string("waitpid: ") + std::strerror(errno));
  }
  return DecodeWait(wstatus);
}

std::string SiblingBinary(const char* argv0, const std::string& name) {
  const std::string self(argv0);
  const size_t slash = self.rfind('/');
  return slash == std::string::npos ? name : self.substr(0, slash + 1) + name;
}

Result<size_t> CountLines(const std::string& path) {
  std::ifstream file(path);
  if (!file.good()) return Status::IoError("cannot read " + path);
  size_t lines = 0;
  std::string line;
  while (std::getline(file, line)) {
    if (!line.empty()) ++lines;
  }
  return lines;
}

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file.good()) return Status::IoError("cannot read " + path);
  std::string data((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  return data;
}

/// First differing byte offset, or npos when identical (lengths included).
size_t FirstDiff(const std::string& a, const std::string& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return i;
  }
  return a.size() == b.size() ? std::string::npos : n;
}

std::string HexContext(const std::string& data, size_t offset) {
  const size_t lo = offset >= 16 ? offset - 16 : 0;
  const size_t hi = std::min(data.size(), offset + 16);
  std::string out;
  char buf[8];
  for (size_t i = lo; i < hi; ++i) {
    std::snprintf(buf, sizeof(buf), i == offset ? "[%02x]" : "%02x ",
                  static_cast<unsigned char>(data[i]));
    out += buf;
  }
  return out;
}

struct Trial {
  std::string name;       ///< display label ("scripted post-delivery:250")
  std::string crash_env;  ///< GT_CRASH_AT value for attempt 0
};

/// Everything a distributed trial needs to spawn a fleet.
struct FleetParams {
  std::string coordinator_bin;
  std::string replayer_bin;
  std::string stream;
  size_t shards = 2;   ///< global hash-partition width
  size_t workers = 2;  ///< fleet size
  std::string rate;    ///< aggregate fleet rate, forwarded verbatim
  long long checkpoint_every = 100;
  int retry_budget = 3;
};

/// Outcome of one supervised fleet trial.
struct FleetOutcome {
  bool converged = false;
  size_t crashes = 0;   ///< processes that died by signal
  std::string failure;  ///< non-empty when the trial failed outright
};

/// Runs gt_coordinator + W workers on localhost, arming one side with
/// `crash_env` (specs starting with "coord-" target the coordinator,
/// everything else worker 0), and respawns SIGKILLed processes until the
/// fleet drains or the respawn budget is spent. A killed worker's ranges
/// are reassigned by the coordinator; a killed coordinator is respawned on
/// the same port and rebuilds fleet state from the workers' re-HELLOs.
Result<FleetOutcome> RunFleetTrial(const FleetParams& p,
                                   const std::string& prefix,
                                   const std::string& crash_env) {
  FleetOutcome out;
  const bool coord_target = crash_env.rfind("coord-", 0) == 0;
  const std::string cp_prefix = prefix + ".cp";
  const std::string port_file = prefix + ".port";
  ::unlink(port_file.c_str());

  // Scrub stale outputs and per-range checkpoint generations; the range
  // split mirrors the coordinator's contiguous deal exactly.
  for (size_t s = 0; s < p.shards; ++s) {
    ::unlink((prefix + ".shard" + std::to_string(s)).c_str());
  }
  const size_t nranges = std::min(p.workers, p.shards);
  const size_t rbase = p.shards / nranges;
  const size_t rextra = p.shards % nranges;
  for (size_t r = 0, at = 0; r < nranges; ++r) {
    const size_t width = rbase + (r < rextra ? 1 : 0);
    const std::string cp = cp_prefix + ".range" + std::to_string(at) + "-" +
                           std::to_string(at + width);
    at += width;
    for (size_t g = 0; g < 5; ++g) {
      const std::string path = g == 0 ? cp : cp + "." + std::to_string(g);
      ::unlink(path.c_str());
    }
  }

  struct Proc {
    pid_t pid = -1;
    size_t attempt = 0;
  };
  Proc coord;
  std::vector<Proc> workers(p.workers);
  auto coord_args = [&](const std::string& listen) {
    return std::vector<std::string>{p.coordinator_bin,
                                    "--stream",
                                    p.stream,
                                    "--total-shards",
                                    std::to_string(p.shards),
                                    "--workers",
                                    std::to_string(p.workers),
                                    "--rate",
                                    p.rate,
                                    "--checkpoint-prefix",
                                    cp_prefix,
                                    "--checkpoint-every",
                                    std::to_string(p.checkpoint_every),
                                    "--out",
                                    prefix,
                                    "--listen",
                                    listen,
                                    "--port-file",
                                    port_file,
                                    "--heartbeat-timeout-ms",
                                    "1000",
                                    "--max-runtime-ms",
                                    "60000"};
  };
  auto kill_all = [&] {
    int wstatus = 0;
    if (coord.pid > 0) {
      ::kill(coord.pid, SIGKILL);
      ::waitpid(coord.pid, &wstatus, 0);
    }
    for (Proc& w : workers) {
      if (w.pid > 0) {
        ::kill(w.pid, SIGKILL);
        ::waitpid(w.pid, &wstatus, 0);
      }
    }
  };

  GT_ASSIGN_OR_RETURN(
      coord.pid,
      SpawnChild(coord_args("127.0.0.1:0"), coord_target ? crash_env : "",
                 prefix + ".coord.attempt0.log"));

  // The coordinator publishes the port right after binding, before any
  // scripted crash point can fire, so this poll cannot race a kill.
  std::string port;
  for (int i = 0; i < 500 && port.empty(); ++i) {
    std::ifstream pf(port_file);
    std::getline(pf, port);
    if (port.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  if (port.empty()) {
    kill_all();
    out.failure = "coordinator never published its port; see " + prefix +
                  ".coord.attempt0.log";
    return out;
  }
  const std::string address = "127.0.0.1:" + port;

  auto worker_args = [&](size_t i) {
    return std::vector<std::string>{p.replayer_bin,
                                    "--worker",
                                    "--coordinator",
                                    address,
                                    "--worker-id",
                                    "w" + std::to_string(i),
                                    "--heartbeat-ms",
                                    "100",
                                    "--dial-attempts",
                                    "40",
                                    "--backoff-seed",
                                    std::to_string(11 + i)};
  };
  for (size_t i = 0; i < p.workers; ++i) {
    GT_ASSIGN_OR_RETURN(
        workers[i].pid,
        SpawnChild(worker_args(i), !coord_target && i == 0 ? crash_env : "",
                   prefix + ".w" + std::to_string(i) + ".attempt0.log"));
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(90);
  while (out.failure.empty() && !out.converged) {
    if (auto e = PollChild(coord.pid)) {
      if (e->exited && e->code == 0) {
        coord.pid = -1;
        out.converged = true;
        break;
      }
      if (e->signaled) {
        ++out.crashes;
        if (out.crashes > static_cast<size_t>(p.retry_budget)) {
          coord.pid = -1;
          out.failure = "respawn budget exhausted";
          break;
        }
        ++coord.attempt;
        // Respawn on the published port so workers re-dial the same
        // address; fleet state rebuilds from their re-HELLOs.
        GT_ASSIGN_OR_RETURN(
            coord.pid, SpawnChild(coord_args(address), "",
                                  prefix + ".coord.attempt" +
                                      std::to_string(coord.attempt) + ".log"));
      } else {
        const std::string log = prefix + ".coord.attempt" +
                                std::to_string(coord.attempt) + ".log";
        coord.pid = -1;
        out.failure = "coordinator failed (exit " + std::to_string(e->code) +
                      "); see " + log;
        break;
      }
    }
    for (size_t i = 0; i < p.workers && out.failure.empty(); ++i) {
      Proc& w = workers[i];
      if (w.pid <= 0) continue;
      if (auto e = PollChild(w.pid)) {
        if (e->signaled) {
          ++out.crashes;
          if (out.crashes > static_cast<size_t>(p.retry_budget)) {
            w.pid = -1;
            out.failure = "respawn budget exhausted";
            break;
          }
          ++w.attempt;
          GT_ASSIGN_OR_RETURN(
              w.pid, SpawnChild(worker_args(i), "",
                                prefix + ".w" + std::to_string(i) +
                                    ".attempt" + std::to_string(w.attempt) +
                                    ".log"));
        } else if (e->exited && e->code == 0) {
          w.pid = -1;  // dismissed with the fleet's completion DRAIN
        } else {
          const std::string log = prefix + ".w" + std::to_string(i) +
                                  ".attempt" + std::to_string(w.attempt) +
                                  ".log";
          w.pid = -1;
          out.failure = "worker w" + std::to_string(i) + " failed (exit " +
                        std::to_string(e->code) + "); see " + log;
          break;
        }
      }
    }
    if (std::chrono::steady_clock::now() > deadline) {
      out.failure = "fleet trial timed out";
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // A scripted kill close to the drain can race the coordinator's own
  // exit: the victim's corpse may still be waiting when the loop breaks
  // on convergence. Reap those now so the crash count stays truthful —
  // live stragglers killed below are dismissals, not crashes.
  for (Proc& w : workers) {
    if (w.pid <= 0) continue;
    if (auto e = PollChild(w.pid)) {
      if (e->signaled) ++out.crashes;
      w.pid = -1;
    }
  }

  // The coordinator only exits 0 after every range drained and accounting
  // balanced, and workers flush lane files before sending DRAIN — so once
  // converged, the outputs are final and straggling workers (still waiting
  // out a dismissed session) can simply be killed.
  kill_all();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const Flags& flags = *flags_or;
  const auto unknown = flags.UnknownFlags(
      {"in", "generate", "model", "seed", "shards", "rate", "replayer",
       "generator", "crash-at", "random-kills", "checkpoint-every",
       "retry-budget", "workdir", "diff-out", "workers", "coordinator",
       "marker-interval", "help"});
  if (!unknown.empty()) {
    return Fail(Status::InvalidArgument("unknown flag --" + unknown[0]));
  }
  if (flags.GetBool("help")) {
    std::printf(
        "usage: gt_chaos [--in FILE | --generate N --model M] [--seed S]\n"
        "       [--shards N] [--rate R] [--replayer PATH] "
        "[--generator PATH]\n"
        "       [--crash-at POINT[:N],...] [--random-kills K]\n"
        "       [--checkpoint-every N] [--retry-budget N]\n"
        "       [--workdir DIR] [--diff-out FILE]\n"
        "       [--workers W --coordinator PATH] [--marker-interval N]\n");
    return 0;
  }

  auto generate_rounds = flags.GetInt("generate", 200);
  auto seed = flags.GetInt("seed", 1);
  auto shards_flag = flags.GetInt("shards", 1);
  auto rate = flags.GetDouble("rate", 1e6);
  auto random_kills = flags.GetInt("random-kills", 0);
  auto checkpoint_every = flags.GetInt("checkpoint-every", 100);
  auto retry_budget = flags.GetInt("retry-budget", 3);
  auto workers_flag = flags.GetInt("workers", 0);
  for (const Status& st :
       {generate_rounds.status(), seed.status(), shards_flag.status(),
        rate.status(), random_kills.status(), checkpoint_every.status(),
        retry_budget.status(), workers_flag.status()}) {
    if (!st.ok()) return Fail(st);
  }
  if (*shards_flag < 1) {
    return Fail(Status::InvalidArgument("--shards must be >= 1"));
  }
  const bool distributed = *workers_flag > 0;
  if (distributed && *shards_flag < 2) {
    return Fail(Status::InvalidArgument(
        "--workers needs --shards >= 2 (a fleet partitions the shard "
        "space; give the golden run the same width)"));
  }
  auto marker_interval =
      flags.GetInt("marker-interval", distributed ? 100 : 0);
  if (!marker_interval.ok()) return Fail(marker_interval.status());
  if (*checkpoint_every < 1) {
    return Fail(Status::InvalidArgument("--checkpoint-every must be >= 1"));
  }
  if (*retry_budget < 1) {
    return Fail(Status::InvalidArgument("--retry-budget must be >= 1"));
  }
  const size_t shards = static_cast<size_t>(*shards_flag);
  const std::string rate_str = std::to_string(*rate);

  const std::string workdir = flags.GetString("workdir", "gt_chaos_work");
  if (::mkdir(workdir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Fail(Status::IoError("cannot create " + workdir));
  }
  const std::string diff_out =
      flags.GetString("diff-out", workdir + "/diff.txt");
  const std::string replayer =
      flags.GetString("replayer", SiblingBinary(argv[0], "gt_replay"));
  const std::string generator =
      flags.GetString("generator", SiblingBinary(argv[0], "gt_generate"));
  const std::string coordinator =
      flags.GetString("coordinator", SiblingBinary(argv[0], "gt_coordinator"));

  // Workload: caller-provided stream, or a generated one.
  std::string stream = flags.GetString("in", "");
  if (stream.empty()) {
    stream = workdir + "/stream.gts";
    std::vector<std::string> gen_args = {
        generator, "--model", flags.GetString("model", "social"), "--rounds",
        std::to_string(*generate_rounds), "--seed", std::to_string(*seed),
        "--out", stream};
    if (*marker_interval > 0) {
      gen_args.insert(gen_args.end(), {"--marker-interval",
                                       std::to_string(*marker_interval)});
    }
    auto gen = RunChild(gen_args, "", workdir + "/generate.log");
    if (!gen.ok()) return Fail(gen.status());
    if (!gen->exited || gen->code != 0) {
      return Fail(Status::IoError("stream generation failed; see " + workdir +
                                  "/generate.log"));
    }
  }
  auto entries = CountLines(stream);
  if (!entries.ok()) return Fail(entries.status());
  if (*entries == 0) return Fail(Status::InvalidArgument("empty stream"));

  auto shard_path = [&](const std::string& prefix, size_t s) {
    return shards == 1 ? prefix : prefix + ".shard" + std::to_string(s);
  };
  auto replay_args = [&](const std::string& out_prefix,
                         const std::string& checkpoint,
                         bool resume) {
    std::vector<std::string> args = {
        replayer,           "--in",
        stream,             "--rate",
        rate_str,           "--shards",
        std::to_string(shards), "--out",
        out_prefix};
    if (!checkpoint.empty()) {
      args.insert(args.end(),
                  {"--checkpoint-file", checkpoint, "--checkpoint-every",
                   std::to_string(*checkpoint_every),
                   "--checkpoint-generations", "3"});
      if (resume) args.insert(args.end(), {"--resume-from", checkpoint});
    }
    return args;
  };

  // Golden: one uninterrupted run, no checkpointing in the way.
  const std::string golden_prefix = workdir + "/golden";
  auto golden_run = RunChild(replay_args(golden_prefix, "", false), "",
                             workdir + "/golden.log");
  if (!golden_run.ok()) return Fail(golden_run.status());
  if (!golden_run->exited || golden_run->code != 0) {
    return Fail(Status::IoError("golden run failed; see " + workdir +
                                "/golden.log"));
  }
  std::vector<std::string> golden_bytes(shards);
  for (size_t s = 0; s < shards; ++s) {
    auto data = ReadWholeFile(shard_path(golden_prefix, s));
    if (!data.ok()) return Fail(data.status());
    golden_bytes[s] = std::move(*data);
  }
  std::fprintf(stderr, "gt_chaos: golden run: %zu entries, %zu shard(s)\n",
               *entries, shards);

  // Trial plan: scripted crash points first, then seeded random positions.
  std::vector<Trial> trials;
  if (flags.Has("crash-at")) {
    std::string spec = flags.GetString("crash-at", "");
    size_t start = 0;
    while (start <= spec.size()) {
      const size_t comma = spec.find(',', start);
      const std::string part =
          spec.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      if (!part.empty()) trials.push_back({"scripted " + part, part});
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  } else if (distributed) {
    // Default fleet drill: kill each side of the control plane at its
    // dedicated points, plus a data-plane kill mid-range and a torn
    // checkpoint write inside worker 0.
    const std::string mid_range = std::to_string(std::max<size_t>(
        1, *entries / (2 * static_cast<size_t>(*workers_flag))));
    for (const std::string& spec :
         {std::string(kCrashWorkerPostHello) + ":1",
          std::string(kCrashWorkerEpochReport) + ":2",
          std::string(kCrashPostDelivery) + ":" + mid_range,
          std::string(kCrashMidCheckpointWrite) + ":2",
          std::string(kCrashCoordPostAssign) + ":1",
          std::string(kCrashCoordEpochRelease) + ":2"}) {
      trials.push_back({"scripted " + spec, spec});
    }
  } else {
    // Default: every compiled crash point that can fire in a single
    // process (the coord-*/worker-* points only exist in a fleet). Crash
    // points that fire inside checkpoint writes target hit 2 so one good
    // generation exists to fall back to; post-delivery targets mid-stream.
    for (const std::string_view point : FaultPlan::KnownCrashPoints()) {
      if (point == kCrashEpochBarrier && shards == 1) continue;
      if (point.rfind("coord-", 0) == 0 || point.rfind("worker-", 0) == 0) {
        continue;
      }
      std::string spec(point);
      spec += point == kCrashPostDelivery
                  ? ":" + std::to_string(std::max<size_t>(1, *entries / 2))
                  : ":2";
      trials.push_back({"scripted " + spec, spec});
    }
  }
  Rng rng(static_cast<uint64_t>(*seed) ^ 0xc4a5c85d68dbef22ULL);
  for (int k = 0; k < *random_kills; ++k) {
    // Random position in the stream: crash after a uniformly random
    // delivered event. Occasionally pick a checkpoint-path point instead so
    // randomized trials also exercise torn-rename windows.
    std::string spec;
    const double pick = rng.NextDouble();
    if (pick < 0.7) {
      spec = std::string(kCrashPostDelivery) + ":" +
             std::to_string(1 + rng.NextBounded(*entries));
    } else {
      const size_t max_checkpoints = std::max<size_t>(
          1, *entries / static_cast<size_t>(*checkpoint_every));
      const std::string_view points[] = {kCrashMidCheckpointWrite,
                                         kCrashPreCheckpointRename,
                                         kCrashPostCheckpoint};
      spec = std::string(points[rng.NextBounded(3)]) + ":" +
             std::to_string(1 + rng.NextBounded(max_checkpoints));
    }
    trials.push_back({"random #" + std::to_string(k) + " " + spec, spec});
  }

  size_t passed = 0;
  size_t failed = 0;
  std::FILE* diff_file = nullptr;
  auto report_diff = [&](const std::string& trial, size_t s, size_t offset,
                         const std::string& got) {
    if (diff_file == nullptr) diff_file = std::fopen(diff_out.c_str(), "w");
    if (diff_file == nullptr) return;
    std::fprintf(diff_file,
                 "trial %s shard %zu: first diff at offset %zu\n"
                 "  golden: %s\n  got:    %s\n",
                 trial.c_str(), s, offset,
                 HexContext(golden_bytes[s], offset).c_str(),
                 HexContext(got, offset).c_str());
  };

  for (size_t t = 0; t < trials.size(); ++t) {
    const Trial& trial = trials[t];
    const std::string prefix = workdir + "/trial" + std::to_string(t);
    const std::string checkpoint = prefix + ".cp";

    size_t crashes = 0;
    bool converged = false;
    std::string failure;
    if (distributed) {
      FleetParams params;
      params.coordinator_bin = coordinator;
      params.replayer_bin = replayer;
      params.stream = stream;
      params.shards = shards;
      params.workers = static_cast<size_t>(*workers_flag);
      params.rate = rate_str;
      params.checkpoint_every = *checkpoint_every;
      params.retry_budget = static_cast<int>(*retry_budget);
      auto fleet = RunFleetTrial(params, prefix, trial.crash_env);
      if (!fleet.ok()) return Fail(fleet.status());
      crashes = fleet->crashes;
      converged = fleet->converged;
      failure = fleet->failure;
    } else {
      // Scrub leftovers from a previous invocation: a stale checkpoint
      // generation would poison the resume path.
      for (size_t g = 0; g < 4; ++g) {
        const std::string path =
            g == 0 ? checkpoint : checkpoint + "." + std::to_string(g);
        ::unlink(path.c_str());
      }
      for (int attempt = 0; attempt <= *retry_budget; ++attempt) {
        // Resume only when a checkpoint was published before the kill; a
        // crash before the first checkpoint restarts from scratch.
        struct ::stat cp_stat {};
        const bool have_checkpoint =
            attempt > 0 && ::stat(checkpoint.c_str(), &cp_stat) == 0;
        const std::string log =
            prefix + ".attempt" + std::to_string(attempt) + ".log";
        auto child = RunChild(replay_args(prefix, checkpoint, have_checkpoint),
                              attempt == 0 ? trial.crash_env : "", log);
        if (!child.ok()) return Fail(child.status());
        if (child->exited && child->code == 0) {
          converged = true;
          break;
        }
        if (child->signaled) {
          ++crashes;
          continue;  // supervised resume
        }
        failure = "replayer failed (exit " + std::to_string(child->code) +
                  "); see " + log;
        break;
      }
    }
    if (converged) {
      for (size_t s = 0; s < shards; ++s) {
        auto data = ReadWholeFile(shard_path(prefix, s));
        if (!data.ok()) return Fail(data.status());
        const size_t diff = FirstDiff(golden_bytes[s], *data);
        if (diff != std::string::npos) {
          failure = "shard " + std::to_string(s) + " differs at offset " +
                    std::to_string(diff) + " (golden " +
                    std::to_string(golden_bytes[s].size()) + " B, got " +
                    std::to_string(data->size()) + " B)";
          report_diff(trial.name, s, diff, *data);
          break;
        }
      }
    } else if (failure.empty()) {
      failure = "resume budget exhausted after " + std::to_string(crashes) +
                " crash(es)";
    }

    if (failure.empty()) {
      ++passed;
      std::fprintf(stderr, "gt_chaos: PASS %-40s (%zu crash(es))\n",
                   trial.name.c_str(), crashes);
    } else {
      ++failed;
      std::fprintf(stderr, "gt_chaos: FAIL %-40s %s\n", trial.name.c_str(),
                   failure.c_str());
    }
  }
  if (diff_file != nullptr) {
    std::fclose(diff_file);
    std::fprintf(stderr, "gt_chaos: mismatch details -> %s\n",
                 diff_out.c_str());
  }

  std::fprintf(stderr,
               "gt_chaos: %zu/%zu trial(s) byte-identical after kill–resume "
               "(%zu shard(s), %s, retry budget %lld)\n",
               passed, trials.size(), shards,
               distributed
                   ? (std::to_string(*workers_flag) + "-worker fleet").c_str()
                   : "single process",
               static_cast<long long>(*retry_budget));
  return failed == 0 ? 0 : 2;
}
