// gt_campaign — campaign supervision demo and smoke-drill (§4.5: an n ≥ 30
// campaign must run unattended; one wedged system under test must neither
// stall the campaign nor poison its confidence intervals).
//
// Runs a campaign of SimProcess-backed runs. Selected run slots are forced
// to hang: the simulated SUT is killed mid-run, its progress counter
// freezes, the RunWatchdog detects the stall and cancels the attempt, and
// the CampaignSupervisor retries it with a fresh derived seed. The final
// report shows requested vs effective n and the completed/retried/hung
// accounting. Each completed attempt also prints a live progress line to
// stderr (events, apply-cost p50/p99 from the shared latency histogram,
// virtual throughput) so long campaigns are observable while they run.
//
// Crash drill (--crash-runs + --auto-resume): selected slots crash midway
// through their first attempts, leaving a simulated checkpoint behind.
// With --auto-resume the supervisor relaunches the slot as a resume of the
// same logical run (same seed), the runner continues from the checkpointed
// event count, and the report separates resumed slots from retried/
// quarantined ones and prints downtime + MTTR.
//
// Frontier mode (--frontier): per-SUT closed-loop capacity sweeps
// (DESIGN.md §16). For each named simulated SUT the campaign runs an
// adaptive CapacitySearch over full seeded workload replays, tops every
// visited rate up to --repetitions measurements, and writes a
// gt-frontier-v1 artifact (sustainable-rate point + latency-vs-throughput
// curve with CI95 bands). Deterministic in --seed: two runs with the same
// seed produce bit-identical artifacts.
//
// Usage:
//   gt_campaign --runs 10 --hang-runs 3,7 --deadline-ms 300
//   gt_campaign --runs 10 --crash-runs 2,5 --auto-resume
//   gt_campaign --frontier --sut weaverlite,chronolite --workload social
//       --slo-p99-ms 100 --repetitions 3 --frontier-out frontier.json
//
// Flags:
//   --runs N             run slots in the campaign (default 10)
//   --events N           simulated events per run (default 200)
//   --hang-runs LIST     comma-separated 1-based run numbers to wedge
//   --hang-attempts K    wedge the first K attempts of each hang run
//                        (default 1; raise past --retry-budget to force a
//                        quarantine)
//   --crash-runs LIST    comma-separated 1-based run numbers that crash
//                        mid-run (leaving a checkpoint)
//   --crash-attempts K   crash the first K attempts of each crash run
//                        (default 1)
//   --auto-resume        resume crashed slots from their checkpoint with
//                        the attempt-0 seed instead of rerunning fresh
//   --deadline-ms M      watchdog no-progress deadline (default 300)
//   --retry-budget N     extra attempts per run slot (default 2)
//   --quarantine-after N exhausted slots before quarantine (default 1)
//   --seed S             base seed (default 42)
//
// Exit code 0 when every run slot eventually completed, 2 otherwise.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/random.h"
#include "common/string_util.h"
#include "harness/campaign.h"
#include "harness/capacity/frontier.h"
#include "harness/capacity/frontier_sweep.h"
#include "harness/telemetry/latency_histogram.h"
#include "sim/process.h"
#include "sim/simulator.h"
#include "suite/benchmark_suite.h"
#include "suite/connectors/online_connector.h"
#include "suite/connectors/weaver_connector.h"

using namespace graphtides;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "gt_campaign: %s\n", status.ToString().c_str());
  return 1;
}

Result<ConnectorFactory> ConnectorFor(const std::string& sut) {
  if (sut == "weaverlite") {
    return ConnectorFactory([](Simulator* sim) {
      return std::make_unique<WeaverConnector>(sim, WeaverConnectorOptions{});
    });
  }
  if (sut == "chronolite") {
    return ConnectorFactory([](Simulator* sim) {
      return std::make_unique<OnlineConnector>(sim, ChronoLiteOptions{});
    });
  }
  return Status::InvalidArgument("unknown --sut '" + sut +
                                 "' (weaverlite, chronolite)");
}

/// Per-SUT output path: a single SUT writes to `base` verbatim; several
/// insert the SUT name before the extension.
std::string FrontierPathFor(const std::string& base, const std::string& sut,
                            size_t num_suts) {
  if (num_suts == 1) return base;
  const size_t dot = base.rfind('.');
  if (dot == std::string::npos) return base + "." + sut;
  return base.substr(0, dot) + "." + sut + base.substr(dot);
}

int RunFrontierMode(const Flags& flags) {
  const std::string sut_spec = flags.GetString("sut", "weaverlite");
  const std::string workload_name = flags.GetString("workload", "social");
  const std::string size_name = flags.GetString("size", "small");
  const std::string out_path = flags.GetString("frontier-out", "");

  auto slo_ms = flags.GetDouble("slo-p99-ms", 100.0);
  auto repetitions = flags.GetInt("repetitions", 3);
  auto seed = flags.GetInt("seed", 42);
  auto start_rate = flags.GetDouble("start-rate", 1000.0);
  auto max_rate = flags.GetDouble("max-rate", 1e6);
  auto growth = flags.GetDouble("growth", 2.0);
  auto resolution = flags.GetDouble("resolution", 0.05);
  auto windows = flags.GetInt("windows", 1);
  auto confirm = flags.GetInt("confirm", 1);
  auto max_steps = flags.GetInt("max-steps", 32);
  auto max_duration_s = flags.GetDouble("max-duration-s", 600.0);
  for (const Status& st :
       {slo_ms.status(), repetitions.status(), seed.status(),
        start_rate.status(), max_rate.status(), growth.status(),
        resolution.status(), windows.status(), confirm.status(),
        max_steps.status(), max_duration_s.status()}) {
    if (!st.ok()) return Fail(st);
  }

  SuiteSize size;
  if (size_name == "tiny") {
    size = SuiteSize::kTiny;
  } else if (size_name == "small") {
    size = SuiteSize::kSmall;
  } else if (size_name == "medium") {
    size = SuiteSize::kMedium;
  } else if (size_name == "large") {
    size = SuiteSize::kLarge;
  } else {
    return Fail(Status::InvalidArgument("unknown --size '" + size_name +
                                        "' (tiny, small, medium, large)"));
  }

  FrontierSweepOptions sweep;
  sweep.search.slo_p99_ms = *slo_ms;
  sweep.search.start_rate_eps = *start_rate;
  sweep.search.max_rate_eps = *max_rate;
  sweep.search.growth = *growth;
  sweep.search.resolution = *resolution;
  sweep.search.windows_per_step = *windows;
  sweep.search.confirm_violations = *confirm;
  sweep.search.max_steps = *max_steps;
  sweep.search.seed = static_cast<uint64_t>(*seed);
  sweep.repetitions = *repetitions;
  sweep.case_options.max_duration = Duration::FromSeconds(*max_duration_s);

  const SeededWorkloadFactory workload_for =
      [&](uint64_t workload_seed) -> Result<SuiteWorkload> {
    for (SuiteWorkload& w : StandardWorkloads(size, workload_seed)) {
      if (w.name == workload_name) return std::move(w);
    }
    return Status::InvalidArgument("unknown --workload '" + workload_name +
                                   "' (social, ddos, blockchain, mix)");
  };

  std::vector<std::string> suts;
  for (std::string_view part : SplitString(sut_spec, ',')) {
    if (!part.empty()) suts.emplace_back(part);
  }
  bool all_ok = true;
  for (const std::string& sut : suts) {
    auto factory = ConnectorFor(sut);
    if (!factory.ok()) return Fail(factory.status());

    std::fprintf(stderr,
                 "gt_campaign: frontier sweep: sut=%s workload=%s "
                 "slo p99 %.1f ms, seed %llu\n",
                 sut.c_str(), workload_name.c_str(), *slo_ms,
                 static_cast<unsigned long long>(sweep.search.seed));
    auto artifact = RunFrontierSweep(sut, workload_for, *factory, sweep);
    if (!artifact.ok()) return Fail(artifact.status());

    std::printf("%s", FormatFrontierTable(*artifact).c_str());
    if (Status st = ValidateFrontier(*artifact); !st.ok()) {
      std::fprintf(stderr, "gt_campaign: frontier invalid: %s\n",
                   st.ToString().c_str());
      all_ok = false;
    }
    if (!artifact->complete) {
      std::fprintf(stderr,
                   "gt_campaign: sweep for %s did not converge "
                   "(raise --max-steps or --max-rate)\n",
                   sut.c_str());
      all_ok = false;
    }
    if (!out_path.empty()) {
      const std::string path = FrontierPathFor(out_path, sut, suts.size());
      std::ofstream out(path, std::ios::trunc);
      out << artifact->ToJson() << "\n";
      if (!out.good()) {
        return Fail(Status::IoError("cannot write " + path));
      }
      std::fprintf(stderr, "gt_campaign: wrote %s\n", path.c_str());
    }
  }
  return all_ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const Flags& flags = *flags_or;
  const auto unknown = flags.UnknownFlags(
      {"runs", "events", "hang-runs", "hang-attempts", "crash-runs",
       "crash-attempts", "auto-resume", "deadline-ms", "retry-budget",
       "quarantine-after", "seed", "help", "frontier", "sut", "workload",
       "size", "slo-p99-ms", "repetitions", "frontier-out", "start-rate",
       "max-rate", "growth", "resolution", "windows", "confirm", "max-steps",
       "max-duration-s"});
  if (!unknown.empty()) {
    return Fail(Status::InvalidArgument("unknown flag --" + unknown[0]));
  }
  if (flags.GetBool("help")) {
    std::printf(
        "usage: gt_campaign [--runs N] [--events N] [--hang-runs 3,7]\n"
        "       [--hang-attempts K] [--crash-runs 2,5] [--crash-attempts K]\n"
        "       [--auto-resume] [--deadline-ms M] [--retry-budget N]\n"
        "       [--quarantine-after N] [--seed S]\n"
        "   or: gt_campaign --frontier [--sut weaverlite,chronolite]\n"
        "       [--workload social] [--size small] [--slo-p99-ms X]\n"
        "       [--repetitions N] [--seed S] [--frontier-out FILE]\n"
        "       [--start-rate R] [--max-rate R] [--growth G]\n"
        "       [--resolution R] [--windows N] [--confirm K]\n"
        "       [--max-steps N] [--max-duration-s S]\n");
    return 0;
  }
  if (flags.GetBool("frontier")) return RunFrontierMode(flags);

  auto runs = flags.GetInt("runs", 10);
  auto events = flags.GetInt("events", 200);
  auto hang_attempts = flags.GetInt("hang-attempts", 1);
  auto crash_attempts = flags.GetInt("crash-attempts", 1);
  auto deadline_ms = flags.GetInt("deadline-ms", 300);
  auto retry_budget = flags.GetInt("retry-budget", 2);
  auto quarantine_after = flags.GetInt("quarantine-after", 1);
  auto seed = flags.GetInt("seed", 42);
  for (const Status& st :
       {runs.status(), events.status(), hang_attempts.status(),
        crash_attempts.status(), deadline_ms.status(), retry_budget.status(),
        quarantine_after.status(), seed.status()}) {
    if (!st.ok()) return Fail(st);
  }
  if (*runs <= 0 || *events <= 0 || *deadline_ms <= 0) {
    return Fail(Status::InvalidArgument(
        "--runs, --events, and --deadline-ms must be positive"));
  }

  auto parse_run_list = [&](const char* flag_name,
                            std::set<uint64_t>* out) -> Status {
    const std::string spec = flags.GetString(flag_name, "");
    for (const auto& part : SplitString(spec, ',')) {
      if (part.empty()) continue;
      auto n = ParseUint64(part);
      if (!n.ok()) {
        return n.status().WithContext(std::string("--") + flag_name);
      }
      if (*n == 0 || *n > static_cast<uint64_t>(*runs)) {
        return Status::InvalidArgument(std::string("--") + flag_name +
                                       " entries must be in 1..--runs");
      }
      out->insert(*n);
    }
    return Status::OK();
  };
  std::set<uint64_t> hang_runs;
  std::set<uint64_t> crash_runs;
  if (Status st = parse_run_list("hang-runs", &hang_runs); !st.ok()) {
    return Fail(st);
  }
  if (Status st = parse_run_list("crash-runs", &crash_runs); !st.ok()) {
    return Fail(st);
  }

  CampaignOptions options;
  options.experiment.repetitions = static_cast<size_t>(*runs);
  options.experiment.base_seed = static_cast<uint64_t>(*seed);
  options.retry_budget = static_cast<size_t>(*retry_budget);
  options.quarantine_after = static_cast<size_t>(*quarantine_after);
  options.auto_resume = flags.GetBool("auto-resume");
  options.watchdog.stall_deadline = Duration::FromMillis(*deadline_ms);

  const uint64_t total_events = static_cast<uint64_t>(*events);
  const uint64_t wedge_attempts = static_cast<uint64_t>(*hang_attempts);
  const uint64_t crash_attempt_count = static_cast<uint64_t>(*crash_attempts);
  // Per-slot simulated checkpoints: the event count a crashing run had
  // durably applied before dying. Slots only touch their own entry.
  std::vector<uint64_t> checkpoints(static_cast<size_t>(*runs), 0);

  std::printf(
      "gt_campaign: %lld run(s), %zu forced hang(s), %zu forced crash(es)%s, "
      "deadline %lld ms, retry budget %lld\n",
      static_cast<long long>(*runs), hang_runs.size(), crash_runs.size(),
      options.auto_resume ? " (auto-resume)" : "",
      static_cast<long long>(*deadline_ms),
      static_cast<long long>(*retry_budget));

  CampaignSupervisor supervisor({}, options);
  auto report = supervisor.Run(
      [&](const ExperimentConfig&, const RunContext& ctx)
          -> Result<RunOutcome> {
        Simulator sim;
        SimProcess sut(&sim, "sut");
        Rng rng(ctx.seed);
        // Wedge the configured slots on their first attempts: the SUT is
        // killed halfway, completions stop, and the progress heartbeat
        // freezes until the watchdog cancels us.
        const bool wedge = hang_runs.contains(ctx.run_index + 1) &&
                           ctx.attempt < wedge_attempts;
        const uint64_t stall_after = wedge ? total_events / 2 : total_events;
        // Crash drill: die two-thirds in, leaving a checkpoint at the last
        // 50-event boundary — the supervisor's resume continues from it.
        const bool crash = crash_runs.contains(ctx.run_index + 1) &&
                           ctx.attempt < crash_attempt_count;
        const uint64_t crash_after = (2 * total_events) / 3;
        uint64_t applied = ctx.resume ? checkpoints[ctx.run_index] : 0;
        bool crashed = false;
        LatencyHistogram apply_costs;

        std::function<void()> submit_next = [&] {
          const double cost_ms = 0.5 + rng.NextDouble();
          const Duration cost =
              Duration::FromNanos(static_cast<int64_t>(cost_ms * 1e6));
          apply_costs.Record(cost);
          sut.Submit(cost, [&] {
            ++applied;
            if (wedge && applied >= stall_after) {
              sut.Kill();
              return;
            }
            if (crash && applied >= crash_after) {
              crashed = true;
              return;
            }
            if (applied < total_events) submit_next();
          });
        };
        submit_next();

        // Drive the simulator from wall clock so a wedged SUT shows up as
        // real-time stalling, exactly like an external system under test.
        while (applied < total_events) {
          if (crashed) {
            checkpoints[ctx.run_index] = applied - (applied % 50);
            return Status::IoError(
                "simulated crash after " + std::to_string(applied) +
                " events (checkpoint at " +
                std::to_string(checkpoints[ctx.run_index]) + ")");
          }
          if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
            return Status::Cancelled(ctx.cancel->reason());
          }
          if (!sim.Step()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          if (ctx.report_progress) ctx.report_progress(applied);
        }

        // Live per-run progress line so an unattended n >= 30 campaign is
        // observable while it runs, not only from the final report.
        std::fprintf(stderr,
                     "gt_campaign: run %zu/%lld attempt %zu done: %llu "
                     "events, apply cost p50 %.2f ms p99 %.2f ms, "
                     "%.0f ev/virtual-s\n",
                     ctx.run_index + 1, static_cast<long long>(*runs),
                     ctx.attempt,
                     static_cast<unsigned long long>(total_events),
                     apply_costs.ValueAtQuantileMicros(0.5) / 1e3,
                     apply_costs.ValueAtQuantileMicros(0.99) / 1e3,
                     static_cast<double>(total_events) / sim.Now().seconds());

        RunOutcome out;
        out["virtual_s"] = sim.Now().seconds();
        out["events_per_virtual_s"] =
            static_cast<double>(total_events) / sim.Now().seconds();
        out["apply_cost_p50_ms"] = apply_costs.ValueAtQuantileMicros(0.5) / 1e3;
        out["apply_cost_p99_ms"] =
            apply_costs.ValueAtQuantileMicros(0.99) / 1e3;
        // A resumed attempt is a replacement identity adopting the slot
        // from its checkpoint — the single-box analogue of a shard range
        // reassigned to a respawned worker. Reserved key, routed into the
        // report's recovery accounting rather than the metric CIs.
        if (ctx.resume) out[std::string(kReassignmentsKey)] = 1.0;
        return out;
      });
  if (!report.ok()) return Fail(report.status());

  for (const AttemptRecord& a : report->attempts) {
    if (a.outcome == AttemptOutcome::kCompleted && a.attempt == 0) continue;
    std::printf("  run %zu attempt %zu%s (seed %llu): %s%s%s\n",
                a.run_index + 1, a.attempt, a.resume ? " (resume)" : "",
                static_cast<unsigned long long>(a.seed),
                std::string(AttemptOutcomeName(a.outcome)).c_str(),
                a.detail.empty() ? "" : " — ", a.detail.c_str());
  }
  std::printf("%s", FormatCampaignReport(*report).c_str());
  std::printf(
      "gt_campaign: %zu completed, %zu hung, %zu failed, %zu retried, "
      "%zu resumed, %zu quarantined config(s)\n",
      report->total_completed, report->total_hung, report->total_failed,
      report->total_retried, report->total_resumed,
      report->quarantined_configs);
  if (report->total_recoveries > 0) {
    std::printf(
        "gt_campaign: %zu recover(ies), %llu reassignment(s), %.3f s total "
        "downtime, MTTR %.3f s\n",
        report->total_recoveries,
        static_cast<unsigned long long>(report->total_reassignments),
        report->total_downtime_s,
        report->total_downtime_s /
            static_cast<double>(report->total_recoveries));
  }

  const bool all_slots_completed =
      report->total_completed == static_cast<size_t>(*runs) &&
      report->quarantined_configs == 0;
  return all_slots_completed ? 0 : 2;
}
