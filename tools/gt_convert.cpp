// gt_convert — lossless conversion between the CSV stream format (v1) and
// the gt-stream-v2 binary block format.
//
// Usage:
//   gt_convert --in stream.gts --out stream.gts2            (auto: flip)
//   gt_convert --in stream.gts2 --out stream.gts --to csv
//
// The input format is detected by magic; --to csv|v2 forces the output
// encoding (default: the opposite of the input). Conversion is lossless
// for canonical streams: v1 -> v2 -> v1 reproduces the CSV file byte for
// byte (generator output is canonical — no comments, no blank lines, LF
// line endings), and v2 -> v1 -> v2 reproduces the v2 file byte for byte.
// Non-canonical CSV (comments, blank lines, CRLF) converts fine but those
// carrier bytes are not representable in v2 and are dropped.
//
// Exit code 0 on success, 1 on usage/IO/parse errors.
#include <cstdio>

#include <string>

#include "common/flags.h"
#include "stream/stream_file.h"
#include "stream/v2_format.h"
#include "stream/v2_reader.h"
#include "stream/v2_writer.h"

using namespace graphtides;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "gt_convert: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const Flags& flags = *flags_or;
  const auto unknown = flags.UnknownFlags({"in", "out", "to", "quiet", "help"});
  if (!unknown.empty()) {
    return Fail(Status::InvalidArgument("unknown flag --" + unknown[0]));
  }
  if (flags.GetBool("help")) {
    std::printf(
        "usage: gt_convert --in FILE --out FILE [--to csv|v2] [--quiet]\n");
    return 0;
  }

  const std::string in = flags.GetString("in", "");
  if (in.empty()) return Fail(Status::InvalidArgument("--in is required"));
  const std::string out = flags.GetString("out", "");
  if (out.empty()) return Fail(Status::InvalidArgument("--out is required"));

  auto in_format = DetectStreamFormat(in);
  if (!in_format.ok()) return Fail(in_format.status());

  StreamFormat out_format = *in_format == StreamFormat::kV2
                                ? StreamFormat::kCsv
                                : StreamFormat::kV2;
  const std::string to = flags.GetString("to", "");
  if (to == "csv") {
    out_format = StreamFormat::kCsv;
  } else if (to == "v2") {
    out_format = StreamFormat::kV2;
  } else if (!to.empty()) {
    return Fail(Status::InvalidArgument("unknown --to: " + to));
  }

  // Stream event-by-event rather than materializing: conversion stays
  // constant-memory in the stream length for both directions.
  size_t events = 0;
  Status st;
  if (*in_format == StreamFormat::kV2) {
    V2StreamReader reader;
    st = reader.Open(in);
    if (st.ok() && out_format == StreamFormat::kV2) {
      V2FileWriter writer;
      st = writer.Open(out);
      while (st.ok()) {
        auto next = reader.Next();
        if (!next.ok()) {
          st = next.status();
          break;
        }
        if (!next->has_value()) break;
        const EventView& v = **next;
        st = writer.AppendFields(v.type, v.vertex, v.edge, v.payload,
                                 v.rate_factor, v.pause);
        if (st.ok()) ++events;
      }
      if (st.ok()) st = writer.Finish();
    } else if (st.ok()) {
      StreamFileWriter writer;
      st = writer.Open(out);
      Event scratch;
      while (st.ok()) {
        auto next = reader.Next();
        if (!next.ok()) {
          st = next.status();
          break;
        }
        if (!next->has_value()) break;
        scratch = (*next)->Materialize();
        st = writer.Append(scratch);
        if (st.ok()) ++events;
      }
      if (st.ok()) st = writer.Close();
    }
  } else {
    StreamFileReader reader;
    st = reader.Open(in);
    if (st.ok() && out_format == StreamFormat::kV2) {
      V2FileWriter writer;
      st = writer.Open(out);
      while (st.ok()) {
        auto next = reader.Next();
        if (!next.ok()) {
          st = next.status();
          break;
        }
        if (!next->has_value()) break;
        st = writer.Append(**next);
        if (st.ok()) ++events;
      }
      if (st.ok()) st = writer.Finish();
    } else if (st.ok()) {
      StreamFileWriter writer;
      st = writer.Open(out);
      while (st.ok()) {
        auto next = reader.Next();
        if (!next.ok()) {
          st = next.status();
          break;
        }
        if (!next->has_value()) break;
        st = writer.Append(**next);
        if (st.ok()) ++events;
      }
      if (st.ok()) st = writer.Close();
    }
  }
  if (!st.ok()) {
    std::remove(out.c_str());
    return Fail(st);
  }

  if (!flags.GetBool("quiet")) {
    std::fprintf(stderr, "gt_convert: %zu events, %s -> %s (%s)\n", events,
                 in.c_str(), out.c_str(),
                 std::string(StreamFormatName(out_format)).c_str());
  }
  return 0;
}
