// gt_coordinator — control plane for distributed replay: accepts
// `gt_replay --worker` processes, deals disjoint shard ranges over the
// framed TCP protocol, drives the cross-process epoch barrier, detects
// worker death via heartbeat watchdogs and reassigns orphaned ranges to
// survivors (byte-exact resume from the range's last durable checkpoint),
// and merges per-range telemetry into one fleet report.
//
// Usage:
//   gt_coordinator --stream s.gts --total-shards 4 --workers 2 \
//       --checkpoint-prefix wd/cp --out wd/out [--listen 127.0.0.1:0] \
//       [--port-file wd/port]
//
// Flags:
//   --stream FILE           stream every worker replays (required)
//   --total-shards N        global hash-partition width; must match the
//                           single-process golden's --shards (default 2)
//   --ranges N              shard ranges dealt (default: one per worker)
//   --workers N             fleet size; assignment starts once this many
//                           workers said HELLO (default 2)
//   --rate R                aggregate fleet rate, events/s (default 10000)
//   --checkpoint-prefix P   per-range checkpoint stores P.range<b>-<e>
//                           (required)
//   --checkpoint-every N    checkpoint cadence in events (default 5000)
//   --checkpoint-generations N  rotated generations kept (default 3)
//   --out PREFIX            per-lane outputs PREFIX.shard<s> (required)
//   --ignore-controls       do not honor SET_RATE / PAUSE
//   --listen HOST:PORT      bind address (default 127.0.0.1:0 = ephemeral)
//   --port-file FILE        write the bound port (scripts with port 0)
//   --heartbeat-timeout-ms M  declare a silent worker dead (default 2000)
//   --max-runtime-ms M      abort an incompletable fleet (0 = unbounded)
//   --send-attempts N       control-plane send retries (default 3)
//   --backoff-seed S        retry jitter seed (default 1)
//   --telemetry-out FILE    gt-telemetry-v1 JSONL with the fleet recovery
//                           block (reassignments, downtime, MTTR)
//   --telemetry-period-ms M snapshot period (default 500)
//   --crash-at / --fault-plan  scripted coordinator crash points
//                           (coord-post-assign, coord-epoch-release)
//
// Exit code 0 on a drained fleet with exactly-once accounting, 1 on any
// failure.
#include <cstdio>

#include <string>

#include "common/fault_plan.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "distributed/coordinator.h"
#include "stream/v2_format.h"

using namespace graphtides;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "gt_coordinator: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const Flags& flags = *flags_or;
  const auto unknown = flags.UnknownFlags(
      {"stream", "total-shards", "ranges", "workers", "rate", "batch",
       "checkpoint-prefix", "checkpoint-every", "checkpoint-generations",
       "out", "ignore-controls", "listen", "port-file",
       "heartbeat-timeout-ms", "tick-ms", "max-runtime-ms", "send-attempts",
       "backoff-seed", "telemetry-out", "telemetry-period-ms", "crash-at",
       "fault-plan", "help"});
  if (!unknown.empty()) {
    return Fail(Status::InvalidArgument("unknown flag --" + unknown[0]));
  }
  if (flags.GetBool("help")) {
    std::printf(
        "usage: gt_coordinator --stream FILE --total-shards N --workers N "
        "--checkpoint-prefix P --out PREFIX\n"
        "       [--ranges N] [--rate R] [--checkpoint-every N] "
        "[--checkpoint-generations N] [--ignore-controls]\n"
        "       [--listen HOST:PORT] [--port-file FILE] "
        "[--heartbeat-timeout-ms M] [--max-runtime-ms M]\n"
        "       [--send-attempts N] [--backoff-seed S] "
        "[--telemetry-out FILE] [--telemetry-period-ms M]\n"
        "       [--crash-at POINT[:N]] [--fault-plan SPEC]\n");
    return 0;
  }

  FaultPlan& fault_plan = FaultPlan::Global();
  if (Status st = fault_plan.ConfigureFromEnv(); !st.ok()) return Fail(st);
  if (flags.Has("fault-plan")) {
    if (Status st = fault_plan.Configure(flags.GetString("fault-plan", ""));
        !st.ok()) {
      return Fail(st);
    }
  }
  if (flags.Has("crash-at")) {
    for (const std::string_view part :
         SplitString(flags.GetString("crash-at", ""), ',')) {
      const std::string_view point = TrimWhitespace(part);
      if (point.empty()) continue;
      if (Status st = fault_plan.Configure("crash=" + std::string(point));
          !st.ok()) {
        return Fail(st);
      }
    }
  }

  auto total_shards = flags.GetInt("total-shards", 2);
  auto ranges = flags.GetInt("ranges", 0);
  auto workers = flags.GetInt("workers", 2);
  auto rate = flags.GetDouble("rate", 10000.0);
  auto batch = flags.GetInt("batch", 256);
  auto checkpoint_every = flags.GetInt("checkpoint-every", 5000);
  auto checkpoint_generations = flags.GetInt("checkpoint-generations", 3);
  auto heartbeat_timeout_ms = flags.GetInt("heartbeat-timeout-ms", 2000);
  auto tick_ms = flags.GetInt("tick-ms", 100);
  auto max_runtime_ms = flags.GetInt("max-runtime-ms", 0);
  auto send_attempts = flags.GetInt("send-attempts", 3);
  auto backoff_seed = flags.GetInt("backoff-seed", 1);
  auto telemetry_period_ms = flags.GetInt("telemetry-period-ms", 500);
  for (const Status& st :
       {total_shards.status(), ranges.status(), workers.status(),
        rate.status(), batch.status(), checkpoint_every.status(),
        checkpoint_generations.status(), heartbeat_timeout_ms.status(),
        tick_ms.status(), max_runtime_ms.status(), send_attempts.status(),
        backoff_seed.status(), telemetry_period_ms.status()}) {
    if (!st.ok()) return Fail(st);
  }
  if (*total_shards < 1 || *workers < 1) {
    return Fail(Status::InvalidArgument(
        "--total-shards and --workers must be >= 1"));
  }

  CoordinatorOptions options;
  const std::string listen = flags.GetString("listen", "127.0.0.1:0");
  const auto parts = SplitString(listen, ':');
  if (parts.size() != 2) {
    return Fail(Status::InvalidArgument("--listen expects HOST:PORT"));
  }
  auto port = ParseUint64(parts[1]);
  if (!port.ok() || *port > 65535) {
    return Fail(Status::InvalidArgument("bad port in --listen"));
  }
  options.host = std::string(parts[0]);
  options.port = static_cast<uint16_t>(*port);
  options.stream = flags.GetString("stream", "");
  if (!options.stream.empty()) {
    // Workers open the stream themselves and auto-detect the encoding;
    // sniffing here surfaces a missing/garbled file before the fleet dials
    // in, and logs which format the fleet will replay.
    auto format = DetectStreamFormat(options.stream);
    if (!format.ok()) return Fail(format.status());
    std::fprintf(stderr, "gt_coordinator: stream %s (%s format)\n",
                 options.stream.c_str(),
                 std::string(StreamFormatName(*format)).c_str());
  }
  options.total_shards = static_cast<uint32_t>(*total_shards);
  options.ranges = static_cast<uint32_t>(*ranges);
  options.workers = static_cast<size_t>(*workers);
  options.rate_eps = *rate;
  options.batch_events = static_cast<uint64_t>(*batch);
  options.checkpoint_prefix = flags.GetString("checkpoint-prefix", "");
  options.checkpoint_every = static_cast<uint64_t>(*checkpoint_every);
  options.checkpoint_generations =
      static_cast<uint64_t>(*checkpoint_generations);
  options.out_prefix = flags.GetString("out", "");
  options.honor_controls = !flags.GetBool("ignore-controls");
  options.heartbeat_timeout_ms = static_cast<int>(*heartbeat_timeout_ms);
  options.tick_ms = static_cast<int>(*tick_ms);
  options.max_runtime_ms = static_cast<int>(*max_runtime_ms);
  options.send_attempts = static_cast<int>(*send_attempts);
  options.backoff_seed = static_cast<uint64_t>(*backoff_seed);
  options.telemetry_out = flags.GetString("telemetry-out", "");
  options.telemetry_every_ms = static_cast<int>(*telemetry_period_ms);

  Coordinator coordinator(options);
  auto bound = coordinator.Start();
  if (!bound.ok()) return Fail(bound.status());
  std::fprintf(stderr, "gt_coordinator: listening on %s:%u\n",
               options.host.c_str(), static_cast<unsigned>(*bound));
  const std::string port_file = flags.GetString("port-file", "");
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "wb");
    if (f == nullptr) {
      return Fail(Status::IoError("cannot write " + port_file));
    }
    std::fprintf(f, "%u\n", static_cast<unsigned>(*bound));
    std::fclose(f);
  }

  auto report = coordinator.Run();
  if (!report.ok()) return Fail(report.status());
  std::fprintf(stderr, "%s\n", report->ToString().c_str());
  return 0;
}
