// gt_faults — rewrites a graph stream file with injected delivery faults
// (§3.2: the replayer always delivers exactly-once and in order; weaker
// semantics are modeled by degrading the input a priori).
//
// Usage:
//   gt_faults --in clean.gts --out faulty.gts --drop 0.01 --reorder 0.05
//
// Flags:
//   --in FILE, --out FILE   required
//   --drop P                per-event drop probability       (default 0)
//   --dup P                 per-event duplicate probability  (default 0)
//   --reorder P             per-event displacement probability (default 0)
//   --window N              max forward displacement         (default 8)
//   --seed S                fault RNG seed                   (default 1)
//   --include-non-graph     also degrade markers/controls
#include <cstdio>

#include "common/flags.h"
#include "faults/fault_injector.h"
#include "stream/stream_file.h"

using namespace graphtides;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "gt_faults: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const Flags& flags = *flags_or;
  const auto unknown = flags.UnknownFlags(
      {"in", "out", "drop", "dup", "reorder", "window", "seed",
       "include-non-graph", "help"});
  if (!unknown.empty()) {
    return Fail(Status::InvalidArgument("unknown flag --" + unknown[0]));
  }
  if (flags.GetBool("help")) {
    std::printf("usage: gt_faults --in FILE --out FILE [--drop P] [--dup P] "
                "[--reorder P --window N] [--seed S]\n");
    return 0;
  }

  const std::string in = flags.GetString("in", "");
  const std::string out = flags.GetString("out", "");
  if (in.empty() || out.empty()) {
    return Fail(Status::InvalidArgument("--in and --out are required"));
  }
  auto events = ReadStreamFile(in);
  if (!events.ok()) return Fail(events.status());

  FaultOptions options;
  auto drop = flags.GetDouble("drop", 0.0);
  auto dup = flags.GetDouble("dup", 0.0);
  auto reorder = flags.GetDouble("reorder", 0.0);
  auto window = flags.GetInt("window", 8);
  auto seed = flags.GetInt("seed", 1);
  for (const Status& st :
       {drop.status(), dup.status(), reorder.status(), window.status(),
        seed.status()}) {
    if (!st.ok()) return Fail(st);
  }
  options.drop_probability = *drop;
  options.duplicate_probability = *dup;
  options.reorder_probability = *reorder;
  options.reorder_window = static_cast<size_t>(*window);
  options.seed = static_cast<uint64_t>(*seed);
  options.protect_non_graph_events = !flags.GetBool("include-non-graph");

  FaultReport report;
  const std::vector<Event> faulty = InjectFaults(*events, options, &report);
  if (Status st = WriteStreamFile(out, faulty); !st.ok()) return Fail(st);
  std::fprintf(stderr, "gt_faults: %s -> %s\n", report.ToString().c_str(),
               out.c_str());
  return 0;
}
