// gt_faults — rewrites a graph stream file with injected delivery faults
// (§3.2: the replayer always delivers exactly-once and in order; weaker
// semantics are modeled by degrading the input a priori).
//
// Usage:
//   gt_faults --in clean.gts --out faulty.gts --drop 0.01 --reorder 0.05
//
// Flags:
//   --in FILE, --out FILE   required
//   --drop P                per-event drop probability       (default 0)
//   --dup P                 per-event duplicate probability  (default 0)
//   --reorder P             per-event displacement probability (default 0)
//   --window N              max forward displacement         (default 8)
//   --seed S                fault RNG seed                   (default 1)
//   --include-non-graph     also degrade markers/controls
//   --shuffle-begin N       uniformly shuffle events [N, M) after the other
//   --shuffle-end M         faults ("shuffling partial streams", §3.2)
//   --report FILE           write fault counters as harness log records (CSV)
#include <cstdio>

#include "common/flags.h"
#include "faults/fault_injector.h"
#include "harness/log_record.h"
#include "stream/stream_file.h"

using namespace graphtides;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "gt_faults: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const Flags& flags = *flags_or;
  const auto unknown = flags.UnknownFlags(
      {"in", "out", "drop", "dup", "reorder", "window", "seed",
       "include-non-graph", "shuffle-begin", "shuffle-end", "report", "help"});
  if (!unknown.empty()) {
    return Fail(Status::InvalidArgument("unknown flag --" + unknown[0]));
  }
  if (flags.GetBool("help")) {
    std::printf("usage: gt_faults --in FILE --out FILE [--drop P] [--dup P] "
                "[--reorder P --window N] [--seed S]\n"
                "       [--shuffle-begin N --shuffle-end M] [--report FILE]\n");
    return 0;
  }

  const std::string in = flags.GetString("in", "");
  const std::string out = flags.GetString("out", "");
  if (in.empty() || out.empty()) {
    return Fail(Status::InvalidArgument("--in and --out are required"));
  }
  auto events = ReadStreamFile(in);
  if (!events.ok()) return Fail(events.status());

  FaultOptions options;
  auto drop = flags.GetDouble("drop", 0.0);
  auto dup = flags.GetDouble("dup", 0.0);
  auto reorder = flags.GetDouble("reorder", 0.0);
  auto window = flags.GetInt("window", 8);
  auto seed = flags.GetInt("seed", 1);
  for (const Status& st :
       {drop.status(), dup.status(), reorder.status(), window.status(),
        seed.status()}) {
    if (!st.ok()) return Fail(st);
  }
  options.drop_probability = *drop;
  options.duplicate_probability = *dup;
  options.reorder_probability = *reorder;
  options.reorder_window = static_cast<size_t>(*window);
  options.seed = static_cast<uint64_t>(*seed);
  options.protect_non_graph_events = !flags.GetBool("include-non-graph");

  FaultReport report;
  std::vector<Event> faulty = InjectFaults(*events, options, &report);

  // Optional partial-stream shuffle, applied after the per-event faults so
  // the window indices refer to the stream that will actually be written.
  auto shuffle_begin = flags.GetInt("shuffle-begin", 0);
  auto shuffle_end = flags.GetInt("shuffle-end", 0);
  for (const Status& st : {shuffle_begin.status(), shuffle_end.status()}) {
    if (!st.ok()) return Fail(st);
  }
  size_t shuffled = 0;
  if (flags.Has("shuffle-begin") || flags.Has("shuffle-end")) {
    if (*shuffle_begin < 0 || *shuffle_end < *shuffle_begin) {
      return Fail(Status::InvalidArgument(
          "--shuffle-begin/--shuffle-end must satisfy 0 <= N <= M"));
    }
    // Distinct stream from the per-event fault draws so adding a shuffle
    // does not change which events get dropped/duplicated.
    Rng rng(options.seed ^ 0x5A0FFULL);
    const size_t begin = static_cast<size_t>(*shuffle_begin);
    const size_t end = static_cast<size_t>(*shuffle_end);
    faulty = ShuffleWindow(std::move(faulty), begin, end, rng);
    shuffled = std::min(end, faulty.size()) -
               std::min(begin, faulty.size());
  }

  if (Status st = WriteStreamFile(out, faulty); !st.ok()) return Fail(st);
  std::fprintf(stderr, "gt_faults: %s shuffled=%zu -> %s\n",
               report.ToString().c_str(), shuffled, out.c_str());

  const std::string report_file = flags.GetString("report", "");
  if (!report_file.empty()) {
    std::FILE* f = std::fopen(report_file.c_str(), "w");
    if (f == nullptr) {
      return Fail(Status::IoError("cannot create " + report_file));
    }
    WallClock wall;
    const Timestamp now = wall.Now();
    const std::vector<std::pair<std::string, double>> metrics = {
        {"fault_input_events", static_cast<double>(report.input_events)},
        {"fault_output_events", static_cast<double>(report.output_events)},
        {"fault_dropped", static_cast<double>(report.dropped)},
        {"fault_duplicated", static_cast<double>(report.duplicated)},
        {"fault_displaced", static_cast<double>(report.displaced)},
        {"fault_shuffled", static_cast<double>(shuffled)},
    };
    for (const auto& [metric, value] : metrics) {
      LogRecord record{now, "faults", metric, value, out};
      std::fprintf(f, "%s\n", record.ToCsvLine().c_str());
    }
    std::fclose(f);
  }
  return 0;
}
