// gt_analyze — result-log analysis (Fig. 2 "Log Collector" output side;
// §4.5 assessment): merges one or more per-logger CSV log files into the
// chronologically sorted result log, prints per-metric statistics, and
// optionally runs marker correlation and cross-correlation between two
// metrics.
//
// Usage:
//   gt_analyze --log run1.csv --log-2 run2.csv
//   gt_analyze --log result.csv --correlate replayer.replay_rate,worker-1.queue_length --bin-ms 1000
//   gt_analyze --log result.csv --markers marker_sent,marker_seen
//   gt_analyze --telemetry run.telemetry.jsonl
//
// Flags:
//   --log FILE [--log-2 FILE --log-3 FILE]  input logs (merged)
//   --out FILE                merged result log output
//   --markers SENT,SEEN      correlate marker metrics, print latencies
//   --correlate A,B          cross-correlate metric series "source.metric"
//   --bin-ms N               resampling bin for correlation (default 1000)
//   --max-lag N              lag search range in bins (default 10)
//   --telemetry FILE         post-hoc analysis of a JSONL telemetry sidecar
//                            (gt_replay --telemetry-out): throughput over
//                            the run, final per-stage/marker percentile
//                            tables, shard balance, fault counters
//   --stream FILE            reconstruct the graph from a stream file (CSV
//                            or gt-stream-v2) and run the batch reference
//                            computations (statistics, PageRank, WCC,
//                            triangles) with per-kernel timings
//   --threads N              worker threads for --stream computations
//                            (0 = auto: hardware concurrency)
//   --frontier FILE          render a gt-frontier-v1 capacity artifact
//                            (gt_campaign --frontier / gt_replay
//                            --find-capacity) and validate its invariants
//   --frontier-compare FILE2 reproducibility check: identical step
//                            schedules and mutually CI95-compatible
//                            sustainable rates (exit 2 on mismatch)
//   --expect-range LO,HI     sanity band: exit 2 unless the sustainable
//                            rate [ev/s] falls inside [LO, HI]
#include <chrono>
#include <cstdio>

#include <fstream>

#include "algorithms/components.h"
#include "algorithms/pagerank.h"
#include "algorithms/statistics.h"
#include "algorithms/triangles.h"
#include "analysis/time_series.h"
#include "common/flags.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "harness/capacity/frontier.h"
#include "harness/log_collector.h"
#include "harness/marker_correlator.h"
#include "harness/report.h"
#include "harness/telemetry/snapshot.h"
#include "stream/v2_reader.h"

using namespace graphtides;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "gt_analyze: %s\n", status.ToString().c_str());
  return 1;
}

/// Splits "source.metric" (metric may not contain a dot; source may).
std::pair<std::string, std::string> SplitSeriesName(const std::string& s) {
  const size_t dot = s.rfind('.');
  if (dot == std::string::npos) return {"", s};
  return {s.substr(0, dot), s.substr(dot + 1)};
}

/// Post-hoc read of a JSONL telemetry sidecar: per-snapshot throughput
/// trace plus the final cumulative stage/marker/sink state.
int AnalyzeTelemetry(const std::string& path) {
  std::ifstream file(path);
  if (!file.good()) return Fail(Status::IoError("cannot read " + path));
  std::vector<TelemetrySnapshot> snaps;
  std::string line;
  size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto snap = TelemetrySnapshot::FromJsonLine(line);
    if (!snap.ok()) {
      return Fail(snap.status().WithContext(path + " line " +
                                            std::to_string(line_no)));
    }
    snaps.push_back(std::move(*snap));
  }
  if (snaps.empty()) {
    return Fail(Status::InvalidArgument(path + " holds no snapshots"));
  }
  const TelemetrySnapshot& last = snaps.back();
  std::printf("telemetry: %zu snapshot(s) over %.3f s, %llu events "
              "(%.0f ev/s overall), %zu shard(s)\n",
              snaps.size(), last.elapsed_s,
              static_cast<unsigned long long>(last.events),
              last.elapsed_s > 0.0
                  ? static_cast<double>(last.events) / last.elapsed_s
                  : 0.0,
              last.shard_events.size());

  TextTable trace({"seq", "elapsed [s]", "events", "ev/s", "imbalance"});
  for (const TelemetrySnapshot& s : snaps) {
    trace.AddRow({std::to_string(s.seq),
                  TextTable::FormatDouble(s.elapsed_s, 3),
                  std::to_string(s.events),
                  TextTable::FormatDouble(s.events_per_sec, 0),
                  TextTable::FormatDouble(s.shard_imbalance, 3)});
  }
  std::printf("\n%s", trace.ToString().c_str());

  TextTable stages({"stage", "count", "p50 [us]", "p90 [us]", "p99 [us]",
                    "p99.9 [us]", "max [us]"});
  bool any_stage = false;
  for (size_t i = 0; i < kReplayStageCount; ++i) {
    const StageSummary& s = last.stages[i];
    if (s.count == 0) continue;
    any_stage = true;
    stages.AddRow({std::string(ReplayStageName(static_cast<ReplayStage>(i))),
                   std::to_string(s.count),
                   TextTable::FormatDouble(s.p50_us, 1),
                   TextTable::FormatDouble(s.p90_us, 1),
                   TextTable::FormatDouble(s.p99_us, 1),
                   TextTable::FormatDouble(s.p999_us, 1),
                   TextTable::FormatDouble(s.max_us, 1)});
  }
  if (any_stage) {
    std::printf("\nfinal sampled stage spans:\n%s", stages.ToString().c_str());
  }
  if (last.markers.sent > 0) {
    std::printf("\nmarkers: %llu sent, %llu matched, %llu unmatched, "
                "%llu pending, %llu orphan observation(s)\n",
                static_cast<unsigned long long>(last.markers.sent),
                static_cast<unsigned long long>(last.markers.matched),
                static_cast<unsigned long long>(last.markers.unmatched),
                static_cast<unsigned long long>(last.markers.pending),
                static_cast<unsigned long long>(last.markers.orphans));
    if (last.markers.latency.count > 0) {
      std::printf("marker latency: p50 %.1f us, p99 %.1f us, max %.1f us\n",
                  last.markers.latency.p50_us, last.markers.latency.p99_us,
                  last.markers.latency.max_us);
    }
  }
  if (last.sink.any()) {
    std::printf("\ndelivery faults: %llu retries, %llu reconnects, "
                "%llu drops, %llu giveups, backoff %.3f s, stall %.3f s\n",
                static_cast<unsigned long long>(last.sink.retries),
                static_cast<unsigned long long>(last.sink.reconnects),
                static_cast<unsigned long long>(last.sink.drops_after_retry),
                static_cast<unsigned long long>(last.sink.giveups),
                last.sink.backoff_s, last.sink.stall_s);
  }
  return 0;
}

/// Reconstructs the target graph from a stream file and runs the batch
/// reference computations on it (§4.3: exact results "by reconstructing
/// the target graph and running a separate batch computation").
int AnalyzeStream(const std::string& path, size_t threads) {
  const auto start = std::chrono::steady_clock::now();
  auto events = ReadStreamFileAnyFormat(path);
  if (!events.ok()) return Fail(events.status());

  // Lenient application: a stream under analysis may contain events the
  // strict builder rejects (duplicates, unknown endpoints); count them
  // instead of bailing so partial or faulty captures stay analyzable.
  Graph graph;
  size_t rejected = 0;
  for (const Event& event : *events) {
    if (!graph.Apply(event).ok()) ++rejected;
  }

  auto elapsed_ms = [&start] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  double last_ms = elapsed_ms();
  std::printf("stream: %zu event(s) -> %zu vertices, %zu edges "
              "(%zu rejected), load %.1f ms, threads %zu\n\n",
              events->size(), graph.num_vertices(), graph.num_edges(),
              rejected, last_ms, threads);

  TextTable table({"computation", "time [ms]", "result"});
  auto add = [&](const char* name, const std::string& result) {
    const double now_ms = elapsed_ms();
    table.AddRow({name, TextTable::FormatDouble(now_ms - last_ms, 2), result});
    last_ms = now_ms;
  };

  const CsrGraph csr = CsrGraph::FromGraph(graph, threads);
  add("csr build", std::to_string(csr.num_vertices()) + " vertices, " +
                       std::to_string(csr.num_edges()) + " edges");
  const GraphStatistics stats = ComputeGraphStatistics(csr, threads);
  add("graph statistics", stats.ToString());
  const PageRankResult pr = PageRank(csr, {.threads = threads});
  add("pagerank",
      std::to_string(pr.iterations) + " iterations" +
          (pr.converged ? "" : " (not converged)") + ", top rank " +
          (pr.ranks.empty()
               ? std::string("n/a")
               : TextTable::FormatDouble(pr.ranks[TopKByRank(pr.ranks, 1)[0]],
                                         6)));
  const ComponentsResult wcc =
      WeaklyConnectedComponents(csr, {.threads = threads});
  add("weakly connected components",
      std::to_string(wcc.num_components) + " component(s), largest " +
          std::to_string(wcc.LargestSize()));
  const uint64_t triangles = CountTriangles(csr, threads);
  add("triangle count", std::to_string(triangles) + " triangle(s)");

  std::printf("%s", table.ToString().c_str());
  return 0;
}

Result<FrontierArtifact> LoadFrontier(const std::string& path) {
  std::ifstream file(path);
  if (!file.good()) return Status::IoError("cannot read " + path);
  std::string text((std::istreambuf_iterator<char>(file)),
                   std::istreambuf_iterator<char>());
  auto artifact = FrontierArtifact::FromJson(text);
  if (!artifact.ok()) return artifact.status().WithContext(path);
  return artifact;
}

/// Renders + validates a frontier artifact; optionally checks
/// reproducibility against a second run and a sanity band. Exit 0 = all
/// checks passed, 2 = a check failed, 1 = unreadable input.
int AnalyzeFrontier(const Flags& flags, const std::string& path) {
  auto artifact = LoadFrontier(path);
  if (!artifact.ok()) return Fail(artifact.status());
  std::printf("%s", FormatFrontierTable(*artifact).c_str());

  bool ok = true;
  if (Status st = ValidateFrontier(*artifact); !st.ok()) {
    std::fprintf(stderr, "gt_analyze: frontier invalid: %s\n",
                 st.ToString().c_str());
    ok = false;
  }

  const std::string compare_path = flags.GetString("frontier-compare", "");
  if (!compare_path.empty()) {
    auto other = LoadFrontier(compare_path);
    if (!other.ok()) return Fail(other.status());
    if (Status st = CompareFrontiers(*artifact, *other); !st.ok()) {
      std::fprintf(stderr, "gt_analyze: runs not reproducible: %s\n",
                   st.ToString().c_str());
      ok = false;
    } else {
      std::printf("reproducible: schedules identical (%zu steps), "
                  "sustainable %.0f vs %.0f ev/s within CI95\n",
                  artifact->step_schedule.size(),
                  artifact->sustainable_rate_eps,
                  other->sustainable_rate_eps);
    }
  }

  const std::string range = flags.GetString("expect-range", "");
  if (!range.empty()) {
    const auto parts = SplitString(range, ',');
    const auto lo_or = parts.size() == 2 ? ParseDouble(parts[0])
                                         : Result<double>(Status::InvalidArgument(""));
    const auto hi_or = parts.size() == 2 ? ParseDouble(parts[1])
                                         : Result<double>(Status::InvalidArgument(""));
    if (!lo_or.ok() || !hi_or.ok() || *lo_or > *hi_or) {
      return Fail(
          Status::InvalidArgument("--expect-range wants LO,HI (ev/s)"));
    }
    const double lo = *lo_or, hi = *hi_or;
    if (artifact->sustainable_rate_eps < lo ||
        artifact->sustainable_rate_eps > hi) {
      std::fprintf(stderr,
                   "gt_analyze: sustainable rate %.0f ev/s outside the "
                   "expected band [%.0f, %.0f]\n",
                   artifact->sustainable_rate_eps, lo, hi);
      ok = false;
    } else {
      std::printf("sustainable rate %.0f ev/s within expected [%.0f, %.0f]\n",
                  artifact->sustainable_rate_eps, lo, hi);
    }
  }
  return ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const Flags& flags = *flags_or;
  const auto unknown = flags.UnknownFlags(
      {"log", "log-2", "log-3", "out", "markers", "correlate", "bin-ms",
       "max-lag", "telemetry", "stream", "threads", "help", "frontier",
       "frontier-compare", "expect-range"});
  if (!unknown.empty()) {
    return Fail(Status::InvalidArgument("unknown flag --" + unknown[0]));
  }
  if (flags.GetBool("help")) {
    std::printf("usage: gt_analyze --log FILE [--markers SENT,SEEN] "
                "[--correlate A,B --bin-ms N]\n"
                "       gt_analyze --telemetry FILE\n"
                "       gt_analyze --stream FILE [--threads N]\n"
                "       gt_analyze --frontier FILE "
                "[--frontier-compare FILE2] [--expect-range LO,HI]\n");
    return 0;
  }

  const std::string frontier_path = flags.GetString("frontier", "");
  if (!frontier_path.empty()) return AnalyzeFrontier(flags, frontier_path);

  const std::string telemetry_path = flags.GetString("telemetry", "");
  if (!telemetry_path.empty()) return AnalyzeTelemetry(telemetry_path);

  const std::string stream_path = flags.GetString("stream", "");
  if (!stream_path.empty()) {
    auto threads = flags.GetInt("threads", 0);
    if (!threads.ok()) return Fail(threads.status());
    if (*threads < 0) {
      return Fail(Status::InvalidArgument("--threads expects N >= 0"));
    }
    return AnalyzeStream(stream_path,
                         ResolveThreads(static_cast<size_t>(*threads)));
  }

  // Merge all provided logs.
  std::vector<LogRecord> all;
  for (const char* name : {"log", "log-2", "log-3"}) {
    const std::string path = flags.GetString(name, "");
    if (path.empty()) continue;
    auto log = ResultLog::ReadCsv(path);
    if (!log.ok()) return Fail(log.status());
    all.insert(all.end(), log->records().begin(), log->records().end());
  }
  if (all.empty()) {
    return Fail(Status::InvalidArgument("no --log input given (or empty)"));
  }
  const ResultLog log(std::move(all));

  // Per source.metric statistics.
  std::map<std::string, RunningStats> by_series;
  for (const LogRecord& r : log.records()) {
    by_series[r.source + "." + r.metric].Add(r.value);
  }
  TextTable table({"series", "n", "mean", "min", "max"});
  for (const auto& [name, stats] : by_series) {
    table.AddRow({name, std::to_string(stats.count()),
                  TextTable::FormatDouble(stats.mean(), 3),
                  TextTable::FormatDouble(stats.min(), 3),
                  TextTable::FormatDouble(stats.max(), 3)});
  }
  std::printf("result log: %zu records, %zu sources, spanning %.3f s\n\n",
              log.size(), log.Sources().size(),
              log.records().empty()
                  ? 0.0
                  : (log.records().back().time - log.records().front().time)
                        .seconds());
  std::printf("%s", table.ToString().c_str());

  const std::string out = flags.GetString("out", "");
  if (!out.empty()) {
    if (Status st = log.WriteCsv(out); !st.ok()) return Fail(st);
    std::printf("\nmerged log -> %s\n", out.c_str());
  }

  // Marker correlation (watermark latency, §4.5).
  const std::string markers = flags.GetString("markers", "");
  if (!markers.empty()) {
    const auto parts = SplitString(markers, ',');
    if (parts.size() != 2) {
      return Fail(Status::InvalidArgument("--markers expects SENT,SEEN"));
    }
    const auto report = CorrelateMarkers(log, std::string(parts[0]),
                                         std::string(parts[1]));
    std::printf("\nmarker correlation (%s -> %s): %zu matched, %zu "
                "unmatched\n",
                std::string(parts[0]).c_str(), std::string(parts[1]).c_str(),
                report.matched.size(), report.unmatched.size());
    if (!report.latency.empty()) {
      std::printf("latency: median %.6f s, p99 %.6f s\n",
                  report.latency.ValueAtQuantileSeconds(0.5),
                  report.latency.ValueAtQuantileSeconds(0.99));
      std::printf("%s", PercentileTable(
                            "metric", {{"marker_latency", &report.latency}})
                            .c_str());
    }
  }

  // Cross-correlation between two series (§4.5 time-series analyses).
  const std::string correlate = flags.GetString("correlate", "");
  if (!correlate.empty()) {
    const auto parts = SplitString(correlate, ',');
    if (parts.size() != 2) {
      return Fail(Status::InvalidArgument("--correlate expects A,B"));
    }
    const auto [src_a, met_a] = SplitSeriesName(std::string(parts[0]));
    const auto [src_b, met_b] = SplitSeriesName(std::string(parts[1]));
    const TimeSeries a = log.Series(src_a, met_a);
    const TimeSeries b = log.Series(src_b, met_b);
    if (a.empty() || b.empty()) {
      return Fail(Status::NotFound("one of the series is empty"));
    }
    auto bin_ms = flags.GetInt("bin-ms", 1000);
    auto max_lag = flags.GetInt("max-lag", 10);
    if (!bin_ms.ok()) return Fail(bin_ms.status());
    if (!max_lag.ok()) return Fail(max_lag.status());
    const Timestamp from = std::min(a.start(), b.start());
    const Timestamp to = std::max(a.end(), b.end());
    const Duration bin = Duration::FromMillis(*bin_ms);
    const auto sa = a.ResampleMean(from, to, bin);
    const auto sb = b.ResampleMean(from, to, bin);
    double correlation = 0.0;
    const int lag = BestCrossCorrelationLag(
        sa, sb, static_cast<int>(*max_lag), &correlation);
    std::printf("\ncross-correlation %s vs %s (bin %lld ms): r = %.3f at "
                "lag %+d bins\n",
                std::string(parts[0]).c_str(), std::string(parts[1]).c_str(),
                static_cast<long long>(*bin_ms), correlation, lag);
  }
  return 0;
}
