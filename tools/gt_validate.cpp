// gt_validate — checks a graph stream file for precondition violations and
// prints the workload's §4.4.1 property profile (event mix, direction,
// types, interleaving, sizes).
//
// Usage:
//   gt_validate --in stream.gts [--max-violations 10] [--quiet]
//
// Exit code 0 for a valid stream, 2 for violations, 1 for usage/IO errors.
#include <cstdio>

#include "common/flags.h"
#include "stream/statistics.h"
#include "stream/stream_file.h"
#include "stream/validator.h"

using namespace graphtides;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "gt_validate: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const Flags& flags = *flags_or;
  const auto unknown =
      flags.UnknownFlags({"in", "max-violations", "quiet", "help"});
  if (!unknown.empty()) {
    return Fail(Status::InvalidArgument("unknown flag --" + unknown[0]));
  }
  if (flags.GetBool("help")) {
    std::printf("usage: gt_validate --in FILE [--max-violations N] "
                "[--quiet]\n");
    return 0;
  }

  const std::string in = flags.GetString("in", "");
  if (in.empty()) return Fail(Status::InvalidArgument("--in is required"));
  auto events = ReadStreamFile(in);
  if (!events.ok()) return Fail(events.status());

  auto max_violations = flags.GetInt("max-violations", 10);
  if (!max_violations.ok()) return Fail(max_violations.status());

  const StreamValidationReport report =
      ValidateStream(*events, static_cast<size_t>(*max_violations));

  if (!flags.GetBool("quiet")) {
    std::printf("%s\n", ComputeStreamStatistics(*events).ToString().c_str());
  }
  if (report.valid()) {
    std::printf("gt_validate: OK — %zu events, no precondition violations\n",
                report.events_checked);
    return 0;
  }
  std::printf("gt_validate: %zu violation(s) (showing up to %lld):\n",
              report.violations.size(),
              static_cast<long long>(*max_violations));
  for (const StreamViolation& v : report.violations) {
    std::printf("  event %zu: %s  [%s]\n", v.index, v.reason.c_str(),
                v.event.ToCsvLine().c_str());
  }
  return 2;
}
