// gt_validate — checks a graph stream file for precondition violations and
// prints the workload's §4.4.1 property profile (event mix, direction,
// types, interleaving, sizes).
//
// Usage:
//   gt_validate --in stream.gts [--max-violations 10] [--quiet]
//   gt_validate --in stream.gts --strict
//   gt_validate --in run.telemetry.jsonl --telemetry
//
// --strict validates the file line by line instead of loading it whole:
// malformed lines (bad CSV, NUL bytes, over-long lines, non-numeric ids,
// truncated final records) are reported with their 1-based line numbers
// alongside precondition violations, and every problem is listed rather
// than stopping at the first parse error.
//
// Both stream formats are accepted and auto-detected by magic: CSV (v1)
// and the gt-stream-v2 binary block format. For v2 inputs, --strict
// streams record by record; a framing/CRC error stops the scan at that
// record (unlike CSV there is no line boundary to resync on), but all
// precondition violations up to that point are still listed.
//
// --telemetry validates a JSONL telemetry sidecar (gt_replay
// --telemetry-out) instead of a stream file: every line must parse as a
// "gt-telemetry-v1" snapshot, seq must increase by 1 from 0, elapsed_s and
// the cumulative events counter must be non-decreasing.
//
// --frontier validates a gt-frontier-v1 capacity artifact (gt_campaign
// --frontier / gt_replay --find-capacity): schema fields, strictly
// increasing offered rates, CI95 bounds bracketing each mean, near-SLO
// latency monotonicity, and the sustainable rate inside its own band.
//
// Exit code 0 for a valid stream, 2 for violations, 1 for usage/IO errors.
#include <cstdio>

#include <fstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "harness/capacity/frontier.h"
#include "harness/telemetry/snapshot.h"
#include "stream/statistics.h"
#include "stream/stream_file.h"
#include "stream/v2_format.h"
#include "stream/v2_reader.h"
#include "stream/validator.h"

using namespace graphtides;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "gt_validate: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const Flags& flags = *flags_or;
  const auto unknown = flags.UnknownFlags({"in", "max-violations", "quiet",
                                           "strict", "telemetry", "frontier",
                                           "help"});
  if (!unknown.empty()) {
    return Fail(Status::InvalidArgument("unknown flag --" + unknown[0]));
  }
  if (flags.GetBool("help")) {
    std::printf("usage: gt_validate --in FILE [--max-violations N] "
                "[--quiet] [--strict | --telemetry | --frontier]\n");
    return 0;
  }

  const std::string in = flags.GetString("in", "");
  if (in.empty()) return Fail(Status::InvalidArgument("--in is required"));

  auto max_violations = flags.GetInt("max-violations", 10);
  if (!max_violations.ok()) return Fail(max_violations.status());

  if (flags.GetBool("frontier")) {
    std::ifstream file(in);
    if (!file.good()) return Fail(Status::IoError("cannot read " + in));
    std::string text((std::istreambuf_iterator<char>(file)),
                     std::istreambuf_iterator<char>());
    auto artifact = FrontierArtifact::FromJson(text);
    if (!artifact.ok()) {
      std::printf("gt_validate: %s does not parse as %s: %s\n", in.c_str(),
                  std::string(kFrontierSchema).c_str(),
                  artifact.status().ToString().c_str());
      return 2;
    }
    if (Status st = ValidateFrontier(*artifact); !st.ok()) {
      std::printf("gt_validate: frontier invariant violated: %s\n",
                  st.ToString().c_str());
      return 2;
    }
    std::printf(
        "gt_validate: OK — %s frontier for %s/%s: %zu point(s), %zu "
        "step(s), sustainable %.0f ev/s (offered %.0f) under p99 SLO "
        "%.1f ms%s\n",
        std::string(kFrontierSchema).c_str(), artifact->sut.c_str(),
        artifact->workload.c_str(), artifact->points.size(),
        artifact->step_schedule.size(), artifact->sustainable_rate_eps,
        artifact->sustainable_offered_eps, artifact->slo_p99_ms,
        artifact->complete ? "" : " (search did not converge)");
    return 0;
  }

  if (flags.GetBool("telemetry")) {
    std::ifstream file(in);
    if (!file.good()) return Fail(Status::IoError("cannot read " + in));
    size_t problems = 0;
    size_t lines = 0;
    uint64_t expected_seq = 0;
    double last_elapsed = -1.0;
    uint64_t last_events = 0;
    std::string line;
    TelemetrySnapshot last;
    const size_t max_report = static_cast<size_t>(*max_violations);
    auto complain = [&](const std::string& what) {
      if (problems < max_report) {
        std::printf("  line %zu: %s\n", lines, what.c_str());
      }
      ++problems;
    };
    while (std::getline(file, line)) {
      ++lines;
      if (line.empty()) continue;
      auto snap = TelemetrySnapshot::FromJsonLine(line);
      if (!snap.ok()) {
        complain(snap.status().ToString());
        continue;
      }
      if (snap->seq != expected_seq) {
        complain("seq " + std::to_string(snap->seq) + ", expected " +
                 std::to_string(expected_seq));
      }
      expected_seq = snap->seq + 1;
      if (snap->elapsed_s < last_elapsed) complain("elapsed_s went backwards");
      if (snap->events < last_events) complain("events counter decreased");
      // Recovery counters are cumulative for the run; a decrease means a
      // snapshotter lost state across a resume.
      const RecoveryCounters& rec = snap->recovery;
      const RecoveryCounters& prev_rec = last.recovery;
      if (rec.crashes < prev_rec.crashes) {
        complain("recovery.crashes decreased");
      }
      if (rec.resumes < prev_rec.resumes) {
        complain("recovery.resumes decreased");
      }
      if (rec.checkpoint_fallbacks < prev_rec.checkpoint_fallbacks) {
        complain("recovery.checkpoint_fallbacks decreased");
      }
      if (rec.write_faults < prev_rec.write_faults) {
        complain("recovery.write_faults decreased");
      }
      if (rec.reassignments < prev_rec.reassignments) {
        complain("recovery.reassignments decreased");
      }
      if (rec.downtime_s < prev_rec.downtime_s) {
        complain("recovery.downtime_s decreased");
      }
      // mttr_s is derived (downtime over recoveries), not cumulative — a
      // fast recovery legitimately lowers it, so it is NOT checked.
      last_elapsed = snap->elapsed_s;
      last_events = snap->events;
      last = *snap;
    }
    if (lines == 0) {
      std::printf("gt_validate: telemetry file %s is empty\n", in.c_str());
      return 2;
    }
    if (problems > 0) {
      std::printf("gt_validate: %zu problem(s) in %zu snapshot line(s)\n",
                  problems, lines);
      return 2;
    }
    std::printf(
        "gt_validate: OK — %zu telemetry snapshot(s), final: %llu events "
        "over %.3f s across %zu shard(s)\n",
        lines, static_cast<unsigned long long>(last.events), last.elapsed_s,
        last.shard_events.size());
    if (last.recovery.any()) {
      std::printf(
          "  recovery: %llu crash(es), %llu resume(s), %llu checkpoint "
          "fallback(s), %llu write fault(s), %llu reassignment(s), %.3f s "
          "downtime, %.3f s MTTR\n",
          static_cast<unsigned long long>(last.recovery.crashes),
          static_cast<unsigned long long>(last.recovery.resumes),
          static_cast<unsigned long long>(last.recovery.checkpoint_fallbacks),
          static_cast<unsigned long long>(last.recovery.write_faults),
          static_cast<unsigned long long>(last.recovery.reassignments),
          last.recovery.downtime_s, last.recovery.mttr_s);
    }
    return 0;
  }

  auto in_format = DetectStreamFormat(in);
  if (!in_format.ok()) return Fail(in_format.status());

  if (flags.GetBool("strict")) {
    if (*in_format == StreamFormat::kV2) {
      // v2 strict scan: record-by-record through the checksummed block
      // reader; preconditions checked incrementally. A framing/CRC error
      // ends the scan (no boundary to resync on past a bad block).
      V2StreamReader reader;
      if (Status st = reader.Open(in); !st.ok()) return Fail(st);
      StreamValidator validator;
      size_t events_checked = 0;
      std::vector<std::string> problems;
      Event scratch;
      for (;;) {
        auto next = reader.Next();
        if (!next.ok()) {
          if (next.status().IsIoError()) return Fail(next.status());
          problems.push_back("malformed: " + next.status().ToString());
          break;
        }
        if (!next->has_value()) break;
        scratch = (*next)->Materialize();
        ++events_checked;
        if (Status st = validator.Check(scratch); !st.ok()) {
          problems.push_back("record " + std::to_string(events_checked) +
                             ": precondition violation: " + st.message());
        }
      }
      if (problems.empty()) {
        std::printf(
            "gt_validate: OK — %zu events (v2), no malformed records, no "
            "precondition violations\n",
            events_checked);
        return 0;
      }
      std::printf("gt_validate: %zu problem(s):\n", problems.size());
      for (const std::string& p : problems) {
        std::printf("  %s\n", p.c_str());
      }
      return 2;
    }
    auto report = ValidateStreamFile(in);
    if (!report.ok()) return Fail(report.status());
    if (report->valid()) {
      std::printf(
          "gt_validate: OK — %zu events, no malformed lines, no "
          "precondition violations\n",
          report->events_checked);
      return 0;
    }
    std::printf("gt_validate: %zu problem(s):\n", report->issues.size());
    for (const StreamFileIssue& issue : report->issues) {
      // Parse-error reasons already carry their "line N" context.
      if (issue.parse_error) {
        std::printf("  malformed: %s\n", issue.reason.c_str());
      } else {
        std::printf("  line %zu: precondition violation: %s\n", issue.line,
                    issue.reason.c_str());
      }
    }
    return 2;
  }

  auto events = ReadStreamFileAnyFormat(in);
  if (!events.ok()) return Fail(events.status());

  const StreamValidationReport report =
      ValidateStream(*events, static_cast<size_t>(*max_violations));

  if (!flags.GetBool("quiet")) {
    std::printf("%s\n", ComputeStreamStatistics(*events).ToString().c_str());
  }
  if (report.valid()) {
    std::printf("gt_validate: OK — %zu events, no precondition violations\n",
                report.events_checked);
    return 0;
  }
  std::printf("gt_validate: %zu violation(s) (showing up to %lld):\n",
              report.violations.size(),
              static_cast<long long>(*max_violations));
  for (const StreamViolation& v : report.violations) {
    std::printf("  event %zu: %s  [%s]\n", v.index, v.reason.c_str(),
                v.event.ToCsvLine().c_str());
  }
  return 2;
}
