// gt_validate — checks a graph stream file for precondition violations and
// prints the workload's §4.4.1 property profile (event mix, direction,
// types, interleaving, sizes).
//
// Usage:
//   gt_validate --in stream.gts [--max-violations 10] [--quiet]
//   gt_validate --in stream.gts --strict
//
// --strict validates the file line by line instead of loading it whole:
// malformed lines (bad CSV, NUL bytes, over-long lines, non-numeric ids,
// truncated final records) are reported with their 1-based line numbers
// alongside precondition violations, and every problem is listed rather
// than stopping at the first parse error.
//
// Exit code 0 for a valid stream, 2 for violations, 1 for usage/IO errors.
#include <cstdio>

#include "common/flags.h"
#include "stream/statistics.h"
#include "stream/stream_file.h"
#include "stream/validator.h"

using namespace graphtides;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "gt_validate: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const Flags& flags = *flags_or;
  const auto unknown =
      flags.UnknownFlags({"in", "max-violations", "quiet", "strict", "help"});
  if (!unknown.empty()) {
    return Fail(Status::InvalidArgument("unknown flag --" + unknown[0]));
  }
  if (flags.GetBool("help")) {
    std::printf("usage: gt_validate --in FILE [--max-violations N] "
                "[--quiet] [--strict]\n");
    return 0;
  }

  const std::string in = flags.GetString("in", "");
  if (in.empty()) return Fail(Status::InvalidArgument("--in is required"));

  auto max_violations = flags.GetInt("max-violations", 10);
  if (!max_violations.ok()) return Fail(max_violations.status());

  if (flags.GetBool("strict")) {
    auto report = ValidateStreamFile(in);
    if (!report.ok()) return Fail(report.status());
    if (report->valid()) {
      std::printf(
          "gt_validate: OK — %zu events, no malformed lines, no "
          "precondition violations\n",
          report->events_checked);
      return 0;
    }
    std::printf("gt_validate: %zu problem(s):\n", report->issues.size());
    for (const StreamFileIssue& issue : report->issues) {
      // Parse-error reasons already carry their "line N" context.
      if (issue.parse_error) {
        std::printf("  malformed: %s\n", issue.reason.c_str());
      } else {
        std::printf("  line %zu: precondition violation: %s\n", issue.line,
                    issue.reason.c_str());
      }
    }
    return 2;
  }

  auto events = ReadStreamFile(in);
  if (!events.ok()) return Fail(events.status());

  const StreamValidationReport report =
      ValidateStream(*events, static_cast<size_t>(*max_violations));

  if (!flags.GetBool("quiet")) {
    std::printf("%s\n", ComputeStreamStatistics(*events).ToString().c_str());
  }
  if (report.valid()) {
    std::printf("gt_validate: OK — %zu events, no precondition violations\n",
                report.events_checked);
    return 0;
  }
  std::printf("gt_validate: %zu violation(s) (showing up to %lld):\n",
              report.violations.size(),
              static_cast<long long>(*max_violations));
  for (const StreamViolation& v : report.violations) {
    std::printf("  event %zu: %s  [%s]\n", v.index, v.reason.c_str(),
                v.event.ToCsvLine().c_str());
  }
  return 2;
}
