// gt_replay — the graph stream replayer as a standalone tool (Fig. 2
// "Graph Stream Replayer"; the paper's Java 9 tool, reimplemented).
//
// Streams a stream file to stdout (pipe setup) or a TCP endpoint at a
// uniform, tunable rate, honoring in-stream SET_RATE / PAUSE controls, and
// reports marker wall-clock timestamps plus achieved-rate statistics on
// stderr (the replayer-side instrumentation of §4.3 "Streaming Metrics").
//
// Runtime faults & resilience: --chaos-* flags inject delivery faults at
// runtime (ChaosSink) and --retry-*/--on-failure flags wrap the transport
// in a ResilientSink (retry + backoff + reconnect + degradation policy);
// the resulting fault telemetry is reported on stderr and, with
// --marker-log, as harness log records.
//
// Usage:
//   gt_replay --in stream.gts --rate 10000                    # to stdout
//   gt_replay --in stream.gts --rate 10000 --tcp 127.0.0.1:9009
//   gt_replay --in stream.gts --tcp HOST:PORT
//       --chaos-seed 7 --chaos-fail 0.001 --chaos-disconnect 0.0002
//       --retry-budget 8 --on-failure block
//
// Flags:
//   --in FILE              stream file (required; CSV or gt-stream-v2,
//                          auto-detected by magic)
//   --wire-format F        csv (default) | v2 — preferred sink wire format,
//                          negotiated per sink: pipe/TCP transports carry
//                          sealed gt-stream-v2 blocks, decorated chains
//                          (--chaos-*/--retry-*) decline and stay on CSV.
//                          Incompatible with --resume-from and with
//                          checkpointed --out runs (a resume truncates sink
//                          files and would re-emit the v2 preamble).
//   --rate R               base emission rate in events/s (default 1000);
//                          with --shards N this is the TOTAL rate, split
//                          evenly across shard lanes
//   --shards N             partition the stream into N parallel lanes
//                          (vertices by id, edges by source); each lane has
//                          its own emitter thread and sink connection, and
//                          markers/controls form cross-shard barriers
//   --tcp HOST:PORT        stream over TCP instead of stdout; with
//                          --shards N, N connections to the same endpoint
//   --connect-timeout-ms M TCP connect deadline per attempt (0 = OS
//                          default blocking connect)
//   --connect-attempts N   bounded connect retries with linear backoff
//                          (default 1)
//   --ignore-controls      do not honor SET_RATE / PAUSE events
//   --marker-log FILE      write marker + telemetry records (CSV)
//   --chaos-seed S         chaos schedule seed (default 1)
//   --chaos-fail P         per-attempt transient failure probability
//   --chaos-disconnect P   per-attempt forced-disconnect probability (TCP)
//   --chaos-stall P        per-attempt stall probability
//   --chaos-stall-ms M     stall duration (default 2)
//   --retry-budget N       retries per delivery (default 5)
//   --retry-backoff-ms M   initial backoff (default 1)
//   --deliver-timeout-ms M per-delivery timeout, 0 = unlimited
//   --on-failure POLICY    fail | drop | block (default fail)
//
// File output (kill–resume equivalence over files):
//   --out PREFIX           write events to PREFIX (1 shard) or
//                          PREFIX.shard<N> files instead of stdout.
//                          Checkpoints then flush the sinks and record
//                          per-shard byte offsets; a resume truncates each
//                          file to its checkpointed offset and appends, so
//                          the bytes concatenate identically with an
//                          uninterrupted run.
//
// Supervision (checkpoint/resume + watchdog):
//   --checkpoint-file FILE checkpoint destination (atomic replace)
//   --checkpoint-every N   write a checkpoint every N delivered events
//   --checkpoint-generations N  keep N rotated generations (default 1);
//                          a torn/corrupt newest record falls back to an
//                          intact ancestor on --resume-from
//   --resume-from FILE     resume from the newest good checkpoint
//                          generation at FILE
//   --stop-after N         stop cleanly after N events (writes a final
//                          checkpoint; models a controlled kill)
//   --watchdog-ms M        abort the run when no event is delivered for
//                          M milliseconds (0 = no watchdog)
//
// Scripted process faults (crash-consistency drills; see
// common/fault_plan.h for the spec grammar and crash points):
//   --crash-at P[:N]       SIGKILL the process at the N-th hit of the
//                          named crash point (post-delivery,
//                          mid-checkpoint-write, pre-checkpoint-rename,
//                          post-checkpoint, epoch-barrier). Also honored
//                          from the GT_CRASH_AT environment variable.
//   --fault-plan SPEC      full fault-plan spec (crash=, torn=, enospc=,
//                          short-write=, fail=, seed=); also honored from
//                          GT_FAULT_PLAN
//
// Live telemetry (§4.3 extended to the replayer's own pipeline):
//   --telemetry-out DEST   emit JSONL telemetry snapshots (schema
//                          "gt-telemetry-v1") during the run: events/s,
//                          per-stage latency percentiles, shard balance,
//                          marker correlation, delivery-fault counters.
//                          DEST is a sidecar file path, or "-" for stderr
//                          (stdout carries the event stream in pipe mode).
//                          Also prints a per-stage percentile table at the
//                          end of the run.
//   --telemetry-period-ms M  snapshot period (default 500)
//   --telemetry-sample N     sample 1-in-N events for stage spans
//                            (default 64)
//
// Closed-loop capacity search (DESIGN.md §16): instead of replaying at a
// fixed --rate, discover the highest rate the downstream sustains under a
// latency SLO. A controller thread drives the CapacitySearch decision
// engine (geometric bracketing, then bisection refinement) against
// windowed deltas of the live telemetry hub, retargeting the emitter lanes
// in place — RateController::Retarget re-anchors the pacing schedule, so a
// rate change never produces a catch-up burst. When the search concludes
// it stops the replay; that stop is the success path of the run.
//   --find-capacity        enable the search (single and sharded lanes)
//   --slo-p99-ms X         the SLO: a window violates when its latency p99
//                          exceeds X ms (default 100)
//   --capacity-start-rate R  first offered rate (default: --rate)
//   --capacity-max-rate R  bracketing cap (default 1e6)
//   --capacity-growth G    bracketing ramp factor (default 2)
//   --capacity-resolution F  refinement stop width, relative (default 0.05)
//   --capacity-warmup-ms M  settle time after each retarget, excluded from
//                          measurement (default 300)
//   --capacity-window-ms M  measurement window length (default 500)
//   --capacity-windows N   windows per rate step (default 3)
//   --capacity-confirm N   violating windows that flip a step (default 2)
//   --capacity-max-steps N  hard cap on rate steps (default 32)
//   --capacity-signal S    latency signal: auto | marker | deliver
//                          (default auto: marker latency when markers
//                          matched, else the deliver-stage span)
//   --frontier-out FILE    write the gt-frontier-v1 artifact
//
// Distributed replay (one worker in a gt_coordinator fleet; see
// src/distributed/ and DESIGN.md §12):
//   --worker               run as a replay worker: everything else
//                          (stream, shard range, rate, checkpoint, output)
//                          arrives over the control channel
//   --coordinator HOST:PORT  coordinator control endpoint (required)
//   --worker-id ID         stable identity across reconnects
//   --dial-attempts N      re-dial budget (exponential backoff + jitter)
//   --heartbeat-ms M       heartbeat interval (default 200)
//   --epoch-wait-ms M      partition rule: quiesce when an epoch release
//                          does not arrive within M ms (default 10000)
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/fault_plan.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "distributed/worker.h"
#include "faults/chaos_sink.h"
#include "harness/capacity/capacity_search.h"
#include "harness/capacity/frontier.h"
#include "harness/capacity/window_probe.h"
#include "harness/log_record.h"
#include "harness/report.h"
#include "harness/run_watchdog.h"
#include "harness/telemetry/run_telemetry.h"
#include "harness/telemetry/snapshotter.h"
#include "replayer/checkpoint.h"
#include "replayer/replayer.h"
#include "replayer/resilient_sink.h"
#include "replayer/sharded_replayer.h"
#include "replayer/tcp.h"

using namespace graphtides;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "gt_replay: %s\n", status.ToString().c_str());
  return 1;
}

Status ConfigureFaultPlan(const Flags& flags) {
  FaultPlan& fault_plan = FaultPlan::Global();
  GT_RETURN_NOT_OK(fault_plan.ConfigureFromEnv());
  if (flags.Has("fault-plan")) {
    GT_RETURN_NOT_OK(
        fault_plan.Configure(flags.GetString("fault-plan", "")));
  }
  if (flags.Has("crash-at")) {
    const std::string crash_at = flags.GetString("crash-at", "");
    for (const std::string_view part : SplitString(crash_at, ',')) {
      const std::string_view point = TrimWhitespace(part);
      if (point.empty()) continue;
      GT_RETURN_NOT_OK(
          fault_plan.Configure("crash=" + std::string(point)));
    }
  }
  return Status::OK();
}

// --worker: hand this process to a coordinator as a distributed replay
// worker. All replay parameters (stream, range, rate, checkpointing,
// output) arrive over the control channel in ASSIGN frames.
int RunWorkerMode(const Flags& flags) {
  if (Status st = ConfigureFaultPlan(flags); !st.ok()) return Fail(st);
  const std::string spec = flags.GetString("coordinator", "");
  const auto parts = SplitString(spec, ':');
  if (parts.size() != 2) {
    return Fail(
        Status::InvalidArgument("--worker requires --coordinator HOST:PORT"));
  }
  auto port = ParseUint64(parts[1]);
  if (!port.ok() || *port == 0 || *port > 65535) {
    return Fail(Status::InvalidArgument("bad port in --coordinator"));
  }
  auto connect_timeout_ms = flags.GetInt("connect-timeout-ms", 2000);
  auto dial_attempts = flags.GetInt("dial-attempts", 15);
  auto heartbeat_ms = flags.GetInt("heartbeat-ms", 200);
  auto epoch_wait_ms = flags.GetInt("epoch-wait-ms", 10000);
  auto backoff_seed = flags.GetInt("backoff-seed", 1);
  for (const Status& st :
       {connect_timeout_ms.status(), dial_attempts.status(),
        heartbeat_ms.status(), epoch_wait_ms.status(),
        backoff_seed.status()}) {
    if (!st.ok()) return Fail(st);
  }

  ReplayWorkerOptions options;
  options.coordinator_host = std::string(parts[0]);
  options.coordinator_port = static_cast<uint16_t>(*port);
  options.worker_id = flags.GetString("worker-id", "");
  options.connect_timeout_ms = static_cast<int>(*connect_timeout_ms);
  options.dial_attempts = static_cast<int>(*dial_attempts);
  options.heartbeat_interval_ms = static_cast<int>(*heartbeat_ms);
  options.epoch_wait_timeout_ms = static_cast<int>(*epoch_wait_ms);
  options.backoff_seed = static_cast<uint64_t>(*backoff_seed);

  ReplayWorker worker(options);
  const Status status = worker.Run();
  const ReplayWorker::Totals totals = worker.totals();
  std::fprintf(
      stderr,
      "gt_replay: worker %s — %llu local events over %llu task(s), %llu "
      "resume(s), %llu quiesce(s), %llu checkpoint fallback(s)\n",
      status.ok() ? "done" : "failed",
      static_cast<unsigned long long>(totals.local_events),
      static_cast<unsigned long long>(totals.tasks_started),
      static_cast<unsigned long long>(totals.resumes),
      static_cast<unsigned long long>(totals.quiesces),
      static_cast<unsigned long long>(totals.checkpoint_fallbacks));
  if (!status.ok()) return Fail(status);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const Flags& flags = *flags_or;
  const auto unknown = flags.UnknownFlags(
      {"in", "rate", "shards", "tcp", "out", "wire-format", "ignore-controls",
       "marker-log",
       "chaos-seed", "chaos-fail", "chaos-disconnect", "chaos-stall",
       "chaos-stall-ms", "retry-budget", "retry-backoff-ms",
       "deliver-timeout-ms", "on-failure", "checkpoint-file",
       "checkpoint-every", "checkpoint-generations", "resume-from",
       "stop-after", "watchdog-ms", "crash-at", "fault-plan",
       "telemetry-out", "telemetry-period-ms", "telemetry-sample",
       "find-capacity", "slo-p99-ms", "capacity-start-rate",
       "capacity-max-rate", "capacity-growth", "capacity-resolution",
       "capacity-warmup-ms", "capacity-window-ms", "capacity-windows",
       "capacity-confirm", "capacity-max-steps", "capacity-signal",
       "frontier-out",
       "connect-timeout-ms", "connect-attempts", "worker", "coordinator",
       "worker-id", "dial-attempts", "heartbeat-ms", "epoch-wait-ms",
       "backoff-seed", "help"});
  if (!unknown.empty()) {
    return Fail(Status::InvalidArgument("unknown flag --" + unknown[0]));
  }
  if (flags.GetBool("worker")) return RunWorkerMode(flags);
  if (flags.GetBool("help")) {
    std::printf(
        "usage: gt_replay --in FILE --rate R [--shards N] [--tcp HOST:PORT | "
        "--out PREFIX] [--wire-format csv|v2] [--ignore-controls] "
        "[--marker-log FILE]\n"
        "       [--chaos-seed S --chaos-fail P --chaos-disconnect P "
        "--chaos-stall P --chaos-stall-ms M]\n"
        "       [--retry-budget N --retry-backoff-ms M "
        "--deliver-timeout-ms M --on-failure fail|drop|block]\n"
        "       [--checkpoint-file FILE --checkpoint-every N "
        "--checkpoint-generations N --resume-from FILE --stop-after N "
        "--watchdog-ms M]\n"
        "       [--crash-at POINT[:N] --fault-plan SPEC]\n"
        "       [--telemetry-out FILE|- --telemetry-period-ms M "
        "--telemetry-sample N]\n"
        "       [--find-capacity --slo-p99-ms X --capacity-start-rate R "
        "--capacity-max-rate R --capacity-growth G "
        "--capacity-resolution F]\n"
        "       [--capacity-warmup-ms M --capacity-window-ms M "
        "--capacity-windows N --capacity-confirm N --capacity-max-steps N "
        "--capacity-signal auto|marker|deliver --frontier-out FILE]\n");
    return 0;
  }

  const std::string in = flags.GetString("in", "");
  if (in.empty()) return Fail(Status::InvalidArgument("--in is required"));
  auto rate = flags.GetDouble("rate", 1000.0);
  if (!rate.ok()) return Fail(rate.status());
  if (*rate <= 0.0) {
    return Fail(Status::InvalidArgument("--rate must be positive"));
  }

  auto shards_flag = flags.GetInt("shards", 1);
  if (!shards_flag.ok()) return Fail(shards_flag.status());
  if (*shards_flag < 1) {
    return Fail(Status::InvalidArgument("--shards must be >= 1"));
  }
  const size_t shards = static_cast<size_t>(*shards_flag);

  const std::string wire_name = flags.GetString("wire-format", "csv");
  if (wire_name != "csv" && wire_name != "v2") {
    return Fail(
        Status::InvalidArgument("unknown --wire-format: " + wire_name));
  }
  const bool v2_wire = wire_name == "v2";

  auto chaos_seed = flags.GetInt("chaos-seed", 1);
  auto chaos_fail = flags.GetDouble("chaos-fail", 0.0);
  auto chaos_disconnect = flags.GetDouble("chaos-disconnect", 0.0);
  auto chaos_stall = flags.GetDouble("chaos-stall", 0.0);
  auto chaos_stall_ms = flags.GetInt("chaos-stall-ms", 2);
  auto retry_budget = flags.GetInt("retry-budget", 5);
  auto retry_backoff_ms = flags.GetInt("retry-backoff-ms", 1);
  auto deliver_timeout_ms = flags.GetInt("deliver-timeout-ms", 0);
  auto checkpoint_every = flags.GetInt("checkpoint-every", 0);
  auto checkpoint_generations = flags.GetInt("checkpoint-generations", 1);
  auto stop_after = flags.GetInt("stop-after", 0);
  auto watchdog_ms = flags.GetInt("watchdog-ms", 0);
  auto telemetry_period_ms = flags.GetInt("telemetry-period-ms", 500);
  auto telemetry_sample = flags.GetInt("telemetry-sample", 64);
  auto connect_timeout_ms = flags.GetInt("connect-timeout-ms", 0);
  auto connect_attempts = flags.GetInt("connect-attempts", 1);
  for (const Status& st :
       {chaos_seed.status(), chaos_fail.status(), chaos_disconnect.status(),
        chaos_stall.status(), chaos_stall_ms.status(), retry_budget.status(),
        retry_backoff_ms.status(), deliver_timeout_ms.status(),
        checkpoint_every.status(), checkpoint_generations.status(),
        stop_after.status(), watchdog_ms.status(),
        telemetry_period_ms.status(), telemetry_sample.status(),
        connect_timeout_ms.status(), connect_attempts.status()}) {
    if (!st.ok()) return Fail(st);
  }
  if (*checkpoint_generations < 1) {
    return Fail(
        Status::InvalidArgument("--checkpoint-generations must be >= 1"));
  }

  // Closed-loop capacity search flags. The controller itself is built
  // later, once the telemetry hub and emitter lanes exist.
  const bool find_capacity = flags.GetBool("find-capacity");
  auto slo_p99_ms = flags.GetDouble("slo-p99-ms", 100.0);
  auto capacity_start = flags.GetDouble("capacity-start-rate", *rate);
  auto capacity_max = flags.GetDouble("capacity-max-rate", 1e6);
  auto capacity_growth = flags.GetDouble("capacity-growth", 2.0);
  auto capacity_resolution = flags.GetDouble("capacity-resolution", 0.05);
  auto capacity_warmup_ms = flags.GetInt("capacity-warmup-ms", 300);
  auto capacity_window_ms = flags.GetInt("capacity-window-ms", 500);
  auto capacity_windows = flags.GetInt("capacity-windows", 3);
  auto capacity_confirm = flags.GetInt("capacity-confirm", 2);
  auto capacity_max_steps = flags.GetInt("capacity-max-steps", 32);
  for (const Status& st :
       {slo_p99_ms.status(), capacity_start.status(), capacity_max.status(),
        capacity_growth.status(), capacity_resolution.status(),
        capacity_warmup_ms.status(), capacity_window_ms.status(),
        capacity_windows.status(), capacity_confirm.status(),
        capacity_max_steps.status()}) {
    if (!st.ok()) return Fail(st);
  }
  CapacityProbe::Signal capacity_signal = CapacityProbe::Signal::kAuto;
  const std::string signal_name = flags.GetString("capacity-signal", "auto");
  if (signal_name == "marker") {
    capacity_signal = CapacityProbe::Signal::kMarker;
  } else if (signal_name == "deliver") {
    capacity_signal = CapacityProbe::Signal::kDeliver;
  } else if (signal_name != "auto") {
    return Fail(
        Status::InvalidArgument("unknown --capacity-signal: " + signal_name));
  }
  const std::string frontier_out = flags.GetString("frontier-out", "");

  // Scripted process faults: environment first (GT_FAULT_PLAN / GT_CRASH_AT
  // — how a supervisor arms a child without touching its argv), then the
  // explicit flags on top.
  FaultPlan& fault_plan = FaultPlan::Global();
  if (Status st = ConfigureFaultPlan(flags); !st.ok()) return Fail(st);

  const bool chaos_enabled =
      flags.Has("chaos-fail") || flags.Has("chaos-disconnect") ||
      flags.Has("chaos-stall") || !fault_plan.delivery_fail_points().empty();
  const bool resilience_enabled =
      chaos_enabled || flags.Has("retry-budget") ||
      flags.Has("retry-backoff-ms") || flags.Has("deliver-timeout-ms") ||
      flags.Has("on-failure");

  ChaosOptions chaos_options;
  chaos_options.seed = static_cast<uint64_t>(*chaos_seed);
  chaos_options.fail_probability = *chaos_fail;
  chaos_options.disconnect_probability = *chaos_disconnect;
  chaos_options.stall_probability = *chaos_stall;
  chaos_options.stall = Duration::FromMillis(*chaos_stall_ms);
  // Deterministic per-attempt fail points from the fault plan unify with
  // the probabilistic chaos schedule.
  chaos_options.fail_points = fault_plan.delivery_fail_points();

  ResilientSinkOptions resilient_options;
  resilient_options.retry_budget = static_cast<uint32_t>(*retry_budget);
  resilient_options.initial_backoff = Duration::FromMillis(*retry_backoff_ms);
  resilient_options.deliver_timeout =
      Duration::FromMillis(*deliver_timeout_ms);
  if (flags.Has("on-failure")) {
    auto policy = ParseDegradationPolicy(flags.GetString("on-failure", ""));
    if (!policy.ok()) return Fail(policy.status());
    resilient_options.policy = *policy;
  }

  CancellationToken cancel;
  ReplayerOptions options;
  options.base_rate_eps = *rate;
  options.honor_control_events = !flags.GetBool("ignore-controls");
  options.cancel = &cancel;
  options.checkpoint_path = flags.GetString("checkpoint-file", "");
  options.checkpoint_every = static_cast<uint64_t>(*checkpoint_every);
  options.checkpoint_generations =
      static_cast<size_t>(*checkpoint_generations);
  options.stop_after_events = static_cast<uint64_t>(*stop_after);

  // Resume: load the newest good checkpoint generation BEFORE the sinks
  // are built — file-backed output must be truncated to the checkpointed
  // byte offsets before it reopens for append.
  std::optional<ReplayCheckpoint> resume;
  size_t resume_fallbacks = 0;
  const std::string resume_from = flags.GetString("resume-from", "");
  if (v2_wire && !resume_from.empty()) {
    // A resume truncates sink files to the checkpointed offset and a fresh
    // sink would re-emit the v2 preamble mid-file; CSV stays the golden
    // resumable wire format.
    return Fail(Status::InvalidArgument(
        "--wire-format v2 cannot be combined with --resume-from; "
        "resume runs must use the CSV wire format"));
  }
  if (v2_wire && flags.Has("out") && *checkpoint_every > 0) {
    return Fail(Status::InvalidArgument(
        "--wire-format v2 cannot be combined with checkpointed --out runs "
        "(the checkpoint's sink byte offsets are only resumable over CSV)"));
  }
  if (!resume_from.empty()) {
    auto loaded = CheckpointStore::LoadLatestGood(resume_from);
    if (!loaded.ok()) return Fail(loaded.status());
    resume = loaded->checkpoint;
    resume_fallbacks = loaded->fallbacks;
    for (const std::string& reason : loaded->rejected) {
      std::fprintf(stderr, "gt_replay: checkpoint rejected: %s\n",
                   reason.c_str());
    }
    if (loaded->fallbacks > 0) {
      std::fprintf(
          stderr, "gt_replay: fell back %zu generation(s), resuming from %s\n",
          loaded->fallbacks,
          CheckpointStore::GenerationPath(resume_from, loaded->generation)
              .c_str());
    }
    std::fprintf(stderr,
                 "gt_replay: resuming at entry %llu (%llu events already "
                 "delivered)\n",
                 static_cast<unsigned long long>(resume->entries_consumed),
                 static_cast<unsigned long long>(resume->events_delivered));
  }

  // Sink chain, one per shard: transport -> [ChaosSink] -> [ResilientSink].
  // With --shards 1 this degenerates to the classic single chain; with
  // N > 1, each lane gets its own transport (own TCP connection, or a
  // PipeSink sharing stdout — serialized batches keep lines atomic) and
  // its own chaos schedule (seed + shard) and retry state.
  const std::string tcp_spec = flags.GetString("tcp", "");
  std::string tcp_host;
  uint16_t tcp_port = 0;
  if (!tcp_spec.empty()) {
    const auto parts = SplitString(tcp_spec, ':');
    if (parts.size() != 2) {
      return Fail(Status::InvalidArgument("--tcp expects HOST:PORT"));
    }
    auto port = ParseUint64(parts[1]);
    if (!port.ok() || *port > 65535) {
      return Fail(Status::InvalidArgument("bad port in --tcp"));
    }
    tcp_host = std::string(parts[0]);
    tcp_port = static_cast<uint16_t>(*port);
  } else if (*chaos_disconnect > 0.0) {
    std::fprintf(stderr,
                 "gt_replay: --chaos-disconnect requires --tcp; ignored\n");
    chaos_options.disconnect_probability = 0.0;
  }

  // --out PREFIX: per-shard output files. The deterministic alternative to
  // interleaved stdout — required for byte-exact kill–resume comparison.
  const std::string out_prefix = flags.GetString("out", "");
  if (!out_prefix.empty() && !tcp_spec.empty()) {
    return Fail(
        Status::InvalidArgument("--out and --tcp are mutually exclusive"));
  }
  auto out_path = [&](size_t s) {
    return shards == 1 ? out_prefix
                       : out_prefix + ".shard" + std::to_string(s);
  };
  std::vector<std::FILE*> out_files;

  std::vector<std::unique_ptr<TcpSink>> tcp_sinks;
  std::vector<std::unique_ptr<PipeSink>> pipe_sinks;
  std::vector<std::unique_ptr<ChaosSink>> chaos_sinks;
  std::vector<std::unique_ptr<ResilientSink>> resilient_sinks;
  std::vector<EventSink*> lane_sinks;
  for (size_t s = 0; s < shards; ++s) {
    EventSink* sink = nullptr;
    TcpSink* tcp = nullptr;
    if (!tcp_spec.empty()) {
      tcp_sinks.push_back(std::make_unique<TcpSink>());
      tcp = tcp_sinks.back().get();
      tcp->set_connect_timeout_ms(static_cast<int>(*connect_timeout_ms));
      tcp->set_connect_attempts(static_cast<int>(*connect_attempts));
      if (Status st = tcp->Connect(tcp_host, tcp_port); !st.ok()) {
        return Fail(st.WithContext("shard " + std::to_string(s)));
      }
      if (v2_wire) tcp->EnableV2Wire();
      sink = tcp;
    } else if (!out_prefix.empty()) {
      const std::string path = out_path(s);
      if (resume.has_value()) {
        // Kafka-style log truncation: the checkpoint's byte offset is the
        // durable high-water mark; everything past it was delivered after
        // the record (or half-flushed by the crash) and gets re-emitted.
        if (resume->sink_bytes.size() != shards) {
          return Fail(Status::InvalidArgument(
              "resume checkpoint has no per-shard sink byte offsets "
              "(written without --out, or shard count changed); cannot "
              "resume into --out files"));
        }
        struct ::stat file_stat {};
        if (::stat(path.c_str(), &file_stat) != 0) {
          return Fail(Status::IoError("cannot stat " + path));
        }
        if (static_cast<uint64_t>(file_stat.st_size) <
            resume->sink_bytes[s]) {
          return Fail(Status::IoError(
              path + " is shorter than its checkpointed offset (" +
              std::to_string(file_stat.st_size) + " < " +
              std::to_string(resume->sink_bytes[s]) + " bytes)"));
        }
        if (::truncate(path.c_str(),
                       static_cast<off_t>(resume->sink_bytes[s])) != 0) {
          return Fail(Status::IoError("cannot truncate " + path));
        }
      }
      std::FILE* f = std::fopen(path.c_str(), resume ? "ab" : "wb");
      if (f == nullptr) {
        return Fail(Status::IoError("cannot open " + path));
      }
      out_files.push_back(f);
      pipe_sinks.push_back(std::make_unique<PipeSink>(f));
      if (v2_wire) pipe_sinks.back()->EnableV2Wire();
      sink = pipe_sinks.back().get();
    } else {
      pipe_sinks.push_back(std::make_unique<PipeSink>(stdout));
      if (v2_wire) pipe_sinks.back()->EnableV2Wire();
      sink = pipe_sinks.back().get();
    }
    if (chaos_enabled) {
      ChaosOptions per_shard = chaos_options;
      per_shard.seed = chaos_options.seed + s;  // independent schedules
      ChaosSink::DisconnectFn disconnect;
      if (tcp != nullptr) disconnect = [tcp] { tcp->Sever(); };
      chaos_sinks.push_back(std::make_unique<ChaosSink>(
          sink, per_shard, std::move(disconnect)));
      sink = chaos_sinks.back().get();
    }
    if (resilience_enabled) {
      ResilientSink::ReconnectFn reconnect;
      if (tcp != nullptr) reconnect = [tcp] { return tcp->Reconnect(); };
      resilient_sinks.push_back(std::make_unique<ResilientSink>(
          sink, resilient_options, std::move(reconnect)));
      sink = resilient_sinks.back().get();
    }
    lane_sinks.push_back(sink);
  }
  if (resilience_enabled) {
    // Snapshot the retry-jitter RNG into checkpoints so a resumed run
    // replays the same backoff schedule an uninterrupted run would.
    // (Sharded runs snapshot shard 0's; the other lanes draw fresh jitter
    // on resume, which only perturbs backoff timing, never delivery.)
    options.checkpoint_rng = resilient_sinks[0]->mutable_jitter_rng();
  }
  // File-backed output is the byte-exactness contract: checkpoints flush
  // the sinks and record per-shard byte offsets.
  options.record_sink_bytes = !out_prefix.empty();

  // Live telemetry: hub + background JSONL snapshotter.
  const std::string telemetry_out = flags.GetString("telemetry-out", "");
  std::unique_ptr<RunTelemetry> telemetry;
  std::FILE* telemetry_file = nullptr;
  std::optional<TelemetrySnapshotter> snapshotter;
  // The capacity probe reads the same hub the snapshotter does, so
  // --find-capacity creates one even without --telemetry-out.
  if (!telemetry_out.empty() || find_capacity) {
    if (!kTelemetryCompiled) {
      std::fprintf(stderr,
                   "gt_replay: built with GT_TELEMETRY=OFF; --telemetry-out "
                   "will report only delivered counts%s\n",
                   find_capacity ? " and --find-capacity has no latency "
                                   "signal (every window reads as idle)"
                                 : "");
    }
    RunTelemetryOptions topt;
    topt.shards = shards;
    topt.sample_every = static_cast<uint32_t>(
        *telemetry_sample > 0 ? *telemetry_sample : 1);
    telemetry = std::make_unique<RunTelemetry>(topt);
  }
  if (!telemetry_out.empty()) {
    SnapshotterOptions sopt;
    sopt.period = Duration::FromMillis(
        *telemetry_period_ms > 0 ? *telemetry_period_ms : 500);
    if (telemetry_out == "-") {
      sopt.out = stderr;
    } else {
      telemetry_file = std::fopen(telemetry_out.c_str(), "w");
      if (telemetry_file == nullptr) {
        return Fail(Status::IoError("cannot create " + telemetry_out));
      }
      sopt.out = telemetry_file;
    }
    snapshotter.emplace(telemetry.get(), sopt);
  }
  if (telemetry != nullptr && resume.has_value()) {
    RecoveryCounters rec;
    rec.resumes = 1;
    rec.checkpoint_fallbacks = resume_fallbacks;
    telemetry->UpdateRecoveryCounters(rec);
  }

  // The v2 wire handshake lives on the sharded serialized path, so v2-wire
  // runs route through ShardedReplayer even at --shards 1 (a single lane).
  // Decorated chains never opt in — their outer sink declines negotiation
  // and the lane stays on CSV.
  if (v2_wire && (chaos_enabled || resilience_enabled)) {
    std::fprintf(stderr,
                 "gt_replay: --wire-format v2 with --chaos-*/--retry-* "
                 "sinks: decorated sinks decline v2; output stays CSV\n");
  }
  // Live rate retargeting: the capacity controller publishes new offered
  // rates here; the lanes poll it and re-anchor their pacing in place.
  std::atomic<double> rate_target{find_capacity ? *capacity_start : *rate};
  std::optional<StreamReplayer> single;
  std::optional<ShardedReplayer> sharded;
  std::function<uint64_t()> progress_fn;
  if (shards == 1 && !v2_wire) {
    options.telemetry = telemetry.get();
    if (find_capacity) {
      options.base_rate_eps = *capacity_start;
      options.rate_target_eps = &rate_target;
    }
    single.emplace(options);
    progress_fn = [&] { return single->progress(); };
  } else {
    ShardedReplayerOptions sharded_options;
    sharded_options.shards = shards;
    sharded_options.wire_format = v2_wire ? WireFormat::kV2 : WireFormat::kCsv;
    sharded_options.total_rate_eps = *rate;
    sharded_options.honor_control_events = options.honor_control_events;
    sharded_options.cancel = &cancel;
    sharded_options.checkpoint_path = options.checkpoint_path;
    sharded_options.checkpoint_every = options.checkpoint_every;
    sharded_options.checkpoint_generations = options.checkpoint_generations;
    sharded_options.stop_after_events = options.stop_after_events;
    sharded_options.checkpoint_rng = options.checkpoint_rng;
    sharded_options.record_sink_bytes = options.record_sink_bytes;
    sharded_options.telemetry = telemetry.get();
    if (find_capacity) {
      sharded_options.total_rate_eps = *capacity_start;
      sharded_options.rate_target_eps = &rate_target;
    }
    sharded.emplace(sharded_options);
    progress_fn = [&] { return sharded->progress(); };
  }

  RunWatchdog watchdog([&] {
    WatchdogOptions w;
    if (*watchdog_ms > 0) w.stall_deadline = Duration::FromMillis(*watchdog_ms);
    return w;
  }());
  if (*watchdog_ms > 0) {
    watchdog.Arm(progress_fn,
                 [&cancel, &tcp_sinks](uint64_t last, Duration stalled) {
                   cancel.RequestCancel("watchdog: no progress past event " +
                                        std::to_string(last) + " for " +
                                        std::to_string(stalled.seconds()) +
                                        " s");
                   // Unblock a send() stuck on a wedged receiver; shutdown
                   // only, the emitter thread still owns the close.
                   for (auto& tcp : tcp_sinks) tcp->Abort();
                 });
  }

  // Capacity controller: drives the CapacitySearch decision engine against
  // windowed deltas of the live hub, retargeting the lanes at each step.
  // When the search concludes it cancels the replay — for a
  // --find-capacity run that cancellation is the success path.
  std::optional<CapacitySearch> search;
  std::atomic<bool> replay_done{false};
  std::atomic<bool> capacity_concluded{false};
  std::thread capacity_thread;
  MonotonicClock capacity_clock;
  if (find_capacity) {
    CapacitySearchOptions copt;
    copt.slo_p99_ms = *slo_p99_ms;
    copt.start_rate_eps = *capacity_start;
    copt.growth = *capacity_growth;
    copt.max_rate_eps = *capacity_max;
    copt.resolution = *capacity_resolution;
    copt.windows_per_step = static_cast<int>(*capacity_windows);
    copt.confirm_violations = static_cast<int>(*capacity_confirm);
    copt.max_steps = static_cast<int>(*capacity_max_steps);
    search.emplace(copt);
    const Duration warmup = Duration::FromMillis(*capacity_warmup_ms);
    const Duration window = Duration::FromMillis(
        *capacity_window_ms > 0 ? *capacity_window_ms : 500);
    capacity_thread = std::thread([&, warmup, window] {
      CapacityProbe probe(telemetry.get(), capacity_signal, &capacity_clock);
      // Sleeps are sliced so a finished replay (stream exhausted) or a
      // watchdog cancel stops the controller promptly; a false return
      // means the run ended mid-search and the artifact stays incomplete.
      auto settle = [&](Duration d) {
        const Timestamp until = capacity_clock.Now() + d;
        while (!replay_done.load(std::memory_order_acquire) &&
               !cancel.cancelled() && capacity_clock.Now() < until) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        return !replay_done.load(std::memory_order_acquire) &&
               !cancel.cancelled();
      };
      while (!search->done()) {
        rate_target.store(search->current_rate_eps(),
                          std::memory_order_relaxed);
        if (!settle(warmup)) return;  // ramp transient, never measured
        probe.BeginWindow();
        for (bool concluded = false; !concluded;) {
          if (!settle(window)) return;
          // EndWindow re-baselines, so back-to-back windows partition the
          // step exactly.
          concluded = search->ReportWindow(probe.EndWindow());
        }
      }
      capacity_concluded.store(true, std::memory_order_release);
      cancel.RequestCancel("capacity search complete");
    });
  }

  std::vector<ReplayStats> per_shard_stats;
  if (snapshotter.has_value()) snapshotter->Start();
  Result<ReplayStats> stats = [&]() -> Result<ReplayStats> {
    if (single.has_value()) {
      return single->ReplayFile(in, lane_sinks[0], resume ? &*resume : nullptr);
    }
    auto sharded_stats =
        sharded->ReplayFile(in, lane_sinks, resume ? &*resume : nullptr);
    if (!sharded_stats.ok()) return sharded_stats.status();
    per_shard_stats = std::move(sharded_stats->per_shard);
    return std::move(sharded_stats->aggregate);
  }();
  watchdog.Disarm();
  replay_done.store(true, std::memory_order_release);
  if (capacity_thread.joinable()) capacity_thread.join();
  if (telemetry != nullptr) {
    if (resume.has_value() || fault_plan.write_faults_fired() > 0) {
      RecoveryCounters rec;
      rec.resumes = resume.has_value() ? 1 : 0;
      rec.checkpoint_fallbacks = resume_fallbacks;
      rec.write_faults = fault_plan.write_faults_fired();
      telemetry->UpdateRecoveryCounters(rec);
    }
    telemetry->markers().Finish();
  }
  if (snapshotter.has_value()) {
    snapshotter->Stop();
    if (telemetry_file != nullptr) std::fclose(telemetry_file);
  }
  for (std::FILE* f : out_files) std::fclose(f);
  out_files.clear();
  if (fault_plan.write_faults_fired() > 0) {
    std::fprintf(stderr, "gt_replay: %llu scripted write fault(s) fired\n",
                 static_cast<unsigned long long>(
                     fault_plan.write_faults_fired()));
  }
  // A cancellation raised by the concluded capacity search is this mode's
  // normal end of run, not a failure.
  const bool capacity_stopped_replay =
      find_capacity && !stats.ok() && stats.status().IsCancelled() &&
      capacity_concluded.load(std::memory_order_acquire);
  if (!stats.ok() && !capacity_stopped_replay) {
    if (stats.status().IsCancelled() && !options.checkpoint_path.empty()) {
      std::fprintf(stderr,
                   "gt_replay: aborted; resumable checkpoint left at %s\n",
                   options.checkpoint_path.c_str());
    }
    return Fail(stats.status());
  }

  if (stats.ok()) {
    std::fprintf(stderr,
                 "gt_replay: %zu events in %.3f s (%.0f ev/s achieved; "
                 "%zu markers, %zu controls)\n",
                 stats->events_delivered, stats->Elapsed().seconds(),
                 stats->AchievedRateEps(), stats->markers, stats->controls);
    for (size_t s = 0; s < per_shard_stats.size(); ++s) {
      std::fprintf(stderr, "gt_replay:   shard %zu: %zu events (%.0f ev/s)\n",
                   s, per_shard_stats[s].events_delivered,
                   per_shard_stats[s].AchievedRateEps());
    }
    if (stats->stopped_early) {
      std::fprintf(stderr, "gt_replay: stopped early at --stop-after %llu\n",
                   static_cast<unsigned long long>(options.stop_after_events));
    }
    if (stats->checkpoints_written > 0) {
      std::fprintf(stderr, "gt_replay: %llu checkpoint(s) -> %s\n",
                   static_cast<unsigned long long>(stats->checkpoints_written),
                   options.checkpoint_path.c_str());
    }
    if (chaos_enabled || resilience_enabled) {
      std::fprintf(stderr, "gt_replay: faults: %s\n",
                   stats->telemetry.ToString().c_str());
    }
  }
  if (telemetry != nullptr) {
    const auto stages = telemetry->MergedStageHistograms();
    std::vector<std::pair<std::string, const LatencyHistogram*>> rows;
    for (size_t i = 0; i < kReplayStageCount; ++i) {
      rows.emplace_back(
          std::string(ReplayStageName(static_cast<ReplayStage>(i))),
          &stages[i]);
    }
    const std::string table = PercentileTable("stage", rows);
    std::fprintf(stderr, "gt_replay: sampled stage spans (1 in %u events):\n%s",
                 telemetry->sample_every(), table.c_str());
    if (snapshotter.has_value()) {
      const std::string dest =
          telemetry_out == "-" ? std::string("stderr") : telemetry_out;
      std::fprintf(stderr, "gt_replay: %llu telemetry snapshot(s) -> %s\n",
                   static_cast<unsigned long long>(
                       snapshotter->snapshots_emitted()),
                   dest.c_str());
    }
  }

  if (find_capacity) {
    if (!capacity_concluded.load(std::memory_order_acquire)) {
      std::fprintf(stderr,
                   "gt_replay: capacity search ran out of stream before "
                   "concluding — artifact marked incomplete; use a longer "
                   "input or smaller --capacity-window-ms\n");
    }
    const std::string sut = !tcp_spec.empty() ? "tcp:" + tcp_spec
                            : !out_prefix.empty() ? "file"
                                                  : "stdout";
    const FrontierArtifact artifact = FrontierFromSearch(*search, sut, in);
    std::fprintf(stderr, "%s", FormatFrontierTable(artifact).c_str());
    std::fprintf(stderr,
                 "gt_replay: sustainable rate %.0f ev/s (offered %.0f) "
                 "under p99 SLO %.1f ms after %zu step(s)%s\n",
                 artifact.sustainable_rate_eps,
                 artifact.sustainable_offered_eps, artifact.slo_p99_ms,
                 artifact.step_schedule.size(),
                 artifact.complete ? "" : " (did not converge)");
    if (!frontier_out.empty()) {
      std::FILE* f = std::fopen(frontier_out.c_str(), "w");
      if (f == nullptr) {
        return Fail(Status::IoError("cannot create " + frontier_out));
      }
      const std::string json = artifact.ToJson();
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::fprintf(stderr, "gt_replay: frontier artifact -> %s\n",
                   frontier_out.c_str());
    }
  }

  const std::string marker_log = flags.GetString("marker-log", "");
  if (!marker_log.empty() && stats.ok()) {
    std::FILE* f = std::fopen(marker_log.c_str(), "w");
    if (f == nullptr) {
      return Fail(Status::IoError("cannot create " + marker_log));
    }
    WallClock wall;
    const Timestamp now_wall = wall.Now();
    MonotonicClock mono;
    const Timestamp now_mono = mono.Now();
    for (const MarkerRecord& m : stats->marker_log) {
      // Rebase monotonic marker times onto the wall clock so logs from
      // different machines merge (§4.1: synchronized wall clocks).
      const Timestamp wall_time = now_wall - (now_mono - m.time);
      LogRecord record{wall_time, "replayer", "marker_sent", 1.0, m.label};
      std::fprintf(f, "%s\n", record.ToCsvLine().c_str());
    }
    // Fault telemetry as end-of-run records, mergeable by the collector.
    const SinkTelemetry& t = stats->telemetry;
    const std::vector<std::pair<std::string, double>> telemetry_metrics = {
        {"delivery_retries", static_cast<double>(t.retries)},
        {"delivery_reconnects", static_cast<double>(t.reconnects)},
        {"delivery_drops_after_retry",
         static_cast<double>(t.drops_after_retry)},
        {"delivery_giveups", static_cast<double>(t.giveups)},
        {"delivery_backoff_s", t.backoff_s},
        {"chaos_injected_failures", static_cast<double>(t.injected_failures)},
        {"chaos_injected_disconnects",
         static_cast<double>(t.injected_disconnects)},
        {"chaos_stall_s", t.stall_s},
    };
    for (const auto& [metric, value] : telemetry_metrics) {
      LogRecord record{now_wall, "replayer", metric, value, ""};
      std::fprintf(f, "%s\n", record.ToCsvLine().c_str());
    }
    std::fclose(f);
    std::fprintf(stderr, "gt_replay: %zu marker + %zu telemetry records -> %s\n",
                 stats->marker_log.size(), telemetry_metrics.size(),
                 marker_log.c_str());
  }
  return 0;
}
