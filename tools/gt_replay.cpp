// gt_replay — the graph stream replayer as a standalone tool (Fig. 2
// "Graph Stream Replayer"; the paper's Java 9 tool, reimplemented).
//
// Streams a stream file to stdout (pipe setup) or a TCP endpoint at a
// uniform, tunable rate, honoring in-stream SET_RATE / PAUSE controls, and
// reports marker wall-clock timestamps plus achieved-rate statistics on
// stderr (the replayer-side instrumentation of §4.3 "Streaming Metrics").
//
// Usage:
//   gt_replay --in stream.gts --rate 10000                    # to stdout
//   gt_replay --in stream.gts --rate 10000 --tcp 127.0.0.1:9009
//
// Flags:
//   --in FILE          stream file (required)
//   --rate R           base emission rate in events/s (default 1000)
//   --tcp HOST:PORT    stream over TCP instead of stdout
//   --ignore-controls  do not honor SET_RATE / PAUSE events
//   --marker-log FILE  write marker records (CSV) for the log collector
#include <cstdio>

#include "common/flags.h"
#include "common/string_util.h"
#include "harness/log_record.h"
#include "replayer/replayer.h"
#include "replayer/tcp.h"

using namespace graphtides;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "gt_replay: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const Flags& flags = *flags_or;
  const auto unknown = flags.UnknownFlags(
      {"in", "rate", "tcp", "ignore-controls", "marker-log", "help"});
  if (!unknown.empty()) {
    return Fail(Status::InvalidArgument("unknown flag --" + unknown[0]));
  }
  if (flags.GetBool("help")) {
    std::printf(
        "usage: gt_replay --in FILE --rate R [--tcp HOST:PORT] "
        "[--ignore-controls] [--marker-log FILE]\n");
    return 0;
  }

  const std::string in = flags.GetString("in", "");
  if (in.empty()) return Fail(Status::InvalidArgument("--in is required"));
  auto rate = flags.GetDouble("rate", 1000.0);
  if (!rate.ok()) return Fail(rate.status());
  if (*rate <= 0.0) {
    return Fail(Status::InvalidArgument("--rate must be positive"));
  }

  ReplayerOptions options;
  options.base_rate_eps = *rate;
  options.honor_control_events = !flags.GetBool("ignore-controls");
  StreamReplayer replayer(options);

  Result<ReplayStats> stats = Status::Internal("unset");
  const std::string tcp = flags.GetString("tcp", "");
  if (!tcp.empty()) {
    const auto parts = SplitString(tcp, ':');
    if (parts.size() != 2) {
      return Fail(Status::InvalidArgument("--tcp expects HOST:PORT"));
    }
    auto port = ParseUint64(parts[1]);
    if (!port.ok() || *port > 65535) {
      return Fail(Status::InvalidArgument("bad port in --tcp"));
    }
    TcpSink sink;
    if (Status st = sink.Connect(std::string(parts[0]),
                                 static_cast<uint16_t>(*port));
        !st.ok()) {
      return Fail(st);
    }
    stats = replayer.ReplayFile(in, &sink);
  } else {
    PipeSink sink(stdout);
    stats = replayer.ReplayFile(in, &sink);
  }
  if (!stats.ok()) return Fail(stats.status());

  std::fprintf(stderr,
               "gt_replay: %zu events in %.3f s (%.0f ev/s achieved; "
               "%zu markers, %zu controls)\n",
               stats->events_delivered, stats->Elapsed().seconds(),
               stats->AchievedRateEps(), stats->markers, stats->controls);

  const std::string marker_log = flags.GetString("marker-log", "");
  if (!marker_log.empty()) {
    std::FILE* f = std::fopen(marker_log.c_str(), "w");
    if (f == nullptr) {
      return Fail(Status::IoError("cannot create " + marker_log));
    }
    WallClock wall;
    const Timestamp now_wall = wall.Now();
    MonotonicClock mono;
    const Timestamp now_mono = mono.Now();
    for (const MarkerRecord& m : stats->marker_log) {
      // Rebase monotonic marker times onto the wall clock so logs from
      // different machines merge (§4.1: synchronized wall clocks).
      const Timestamp wall_time = now_wall - (now_mono - m.time);
      LogRecord record{wall_time, "replayer", "marker_sent", 1.0, m.label};
      std::fprintf(f, "%s\n", record.ToCsvLine().c_str());
    }
    std::fclose(f);
    std::fprintf(stderr, "gt_replay: %zu marker records -> %s\n",
                 stats->marker_log.size(), marker_log.c_str());
  }
  return 0;
}
