// gt_generate — the graph stream generator as a standalone tool (Fig. 2
// "Graph Stream Generator"; the paper's TypeScript tool, reimplemented).
//
// Usage:
//   gt_generate --model social --rounds 100000 --seed 7 --out stream.gts
//
// Flags:
//   --model            social | ddos | blockchain | mix   (default social)
//   --rounds N         evolution-phase events             (default 10000)
//   --seed S           generator seed                     (default 42)
//   --out FILE         output stream file                 (default stdout)
//   --stream-out FILE  stream events straight to FILE ("-" = stdout)
//                      through the pipelined writer: constant memory in
//                      the stream length, so arbitrarily long streams fit
//                      in a fixed RSS budget
//   --format F         csv (default) | v2 — output encoding; v2 writes
//                      the gt-stream-v2 binary block format
//                      (stream/v2_format.h), which gt_replay auto-detects
//                      and gt_convert round-trips losslessly to CSV
//   --marker-interval N  MARK_<i> every N events          (default 0 = off)
//   --bootstrap-pause MS pause event after bootstrap      (default 0)
//   --no-phase-markers   omit BOOTSTRAP_DONE / STREAM_END
//   --stats              print stream statistics to stderr
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/flags.h"
#include "generator/models/blockchain_model.h"
#include "generator/models/ddos_model.h"
#include "generator/models/event_mix_model.h"
#include "generator/models/social_network_model.h"
#include "generator/stream_generator.h"
#include "generator/stream_pipeline.h"
#include "generator/v2_consumer.h"
#include "stream/statistics.h"
#include "stream/stream_file.h"
#include "stream/v2_writer.h"

using namespace graphtides;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "gt_generate: %s\n", status.ToString().c_str());
  return 1;
}

/// Feeds every event to a statistics builder before forwarding it, so
/// --stats works on the streaming path without materializing the stream.
class TeeStatsConsumer final : public EventConsumer {
 public:
  TeeStatsConsumer(StreamStatisticsBuilder* stats, EventConsumer* inner)
      : stats_(stats), inner_(inner) {}

  Status Consume(Event&& event) override {
    stats_->Add(event);
    return inner_->Consume(std::move(event));
  }

  Status Finish() override { return inner_->Finish(); }

 private:
  StreamStatisticsBuilder* stats_;
  EventConsumer* inner_;
};

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = Flags::Parse(argc, argv);
  if (!flags_or.ok()) return Fail(flags_or.status());
  const Flags& flags = *flags_or;
  const auto unknown = flags.UnknownFlags(
      {"model", "rounds", "seed", "out", "stream-out", "format",
       "marker-interval", "bootstrap-pause", "no-phase-markers", "stats",
       "help"});
  if (!unknown.empty()) {
    return Fail(Status::InvalidArgument("unknown flag --" + unknown[0]));
  }
  if (flags.GetBool("help")) {
    std::printf("usage: gt_generate --model social|ddos|blockchain|mix "
                "--rounds N --seed S [--out FILE | --stream-out FILE] "
                "[--format csv|v2]\n");
    return 0;
  }

  const std::string format_name = flags.GetString("format", "csv");
  if (format_name != "csv" && format_name != "v2") {
    return Fail(Status::InvalidArgument("unknown --format: " + format_name));
  }
  const bool v2_out = format_name == "v2";

  const std::string model_name = flags.GetString("model", "social");
  std::unique_ptr<GeneratorModel> model;
  if (model_name == "social") {
    model = std::make_unique<SocialNetworkModel>();
  } else if (model_name == "ddos") {
    DdosModelOptions options;
    auto rounds = flags.GetInt("rounds", 10000);
    if (!rounds.ok()) return Fail(rounds.status());
    // One attack window in the middle third of the run.
    options.attacks = {{static_cast<uint64_t>(*rounds / 3),
                        static_cast<uint64_t>(2 * *rounds / 3)}};
    model = std::make_unique<DdosModel>(options);
  } else if (model_name == "blockchain") {
    model = std::make_unique<BlockchainModel>();
  } else if (model_name == "mix") {
    model = std::make_unique<EventMixModel>(EventMixModelOptions{});
  } else {
    return Fail(Status::InvalidArgument("unknown model: " + model_name));
  }

  StreamGeneratorOptions options;
  auto rounds = flags.GetInt("rounds", 10000);
  if (!rounds.ok()) return Fail(rounds.status());
  options.rounds = static_cast<size_t>(*rounds);
  auto seed = flags.GetInt("seed", 42);
  if (!seed.ok()) return Fail(seed.status());
  options.seed = static_cast<uint64_t>(*seed);
  auto marker_interval = flags.GetInt("marker-interval", 0);
  if (!marker_interval.ok()) return Fail(marker_interval.status());
  options.marker_interval = static_cast<size_t>(*marker_interval);
  auto pause_ms = flags.GetInt("bootstrap-pause", 0);
  if (!pause_ms.ok()) return Fail(pause_ms.status());
  options.bootstrap_pause = Duration::FromMillis(*pause_ms);
  options.emit_phase_markers = !flags.GetBool("no-phase-markers");

  StreamGenerator generator(model.get(), options);
  const bool want_stats = flags.GetBool("stats");
  StreamStatisticsBuilder stats;

  const std::string stream_out = flags.GetString("stream-out", "");
  if (!stream_out.empty()) {
    // Streaming path: generator thread -> batch queue -> writer thread,
    // one write per block; RSS stays bounded regardless of --rounds.
    FILE* file = stdout;
    if (stream_out != "-") {
      file = std::fopen(stream_out.c_str(), v2_out ? "wb" : "w");
      if (file == nullptr) {
        return Fail(Status::IoError("cannot create stream file: " +
                                    stream_out + ": " + std::strerror(errno)));
      }
    }
    Result<GenerateSummary> summary = [&]() -> Result<GenerateSummary> {
      auto run = [&](EventConsumer& writer) {
        if (want_stats) {
          TeeStatsConsumer tee(&stats, &writer);
          return generator.GenerateTo(tee);
        }
        return generator.GenerateTo(writer);
      };
      if (v2_out) {
        V2WriterConsumer writer(file);
        return run(writer);
      }
      PipelinedWriterConsumer writer(file);
      return run(writer);
    }();
    if (file != stdout) std::fclose(file);
    if (!summary.ok()) return Fail(summary.status());
    std::fprintf(stderr,
                 "gt_generate: %zu events (%zu bootstrap, %zu evolution, %zu "
                 "skipped rounds) -> %s\n",
                 summary->total_events, summary->bootstrap_events,
                 summary->evolution_events, summary->skipped_rounds,
                 stream_out == "-" ? "stdout" : stream_out.c_str());
    if (want_stats) {
      std::fprintf(stderr, "%s\n", stats.Snapshot().ToString().c_str());
    }
    return 0;
  }

  auto stream = generator.Generate();
  if (!stream.ok()) return Fail(stream.status());

  const std::string out = flags.GetString("out", "");
  if (out.empty()) {
    if (v2_out) {
      V2FileWriter writer;
      Status st = writer.Attach(stdout);
      for (const Event& e : stream->events) {
        if (!st.ok()) break;
        st = writer.Append(e);
      }
      if (st.ok()) st = writer.Finish();
      if (!st.ok()) return Fail(st);
    } else {
      std::fputs(FormatStreamText(stream->events).c_str(), stdout);
    }
  } else {
    const Status st = v2_out ? WriteV2StreamFile(out, stream->events)
                             : WriteStreamFile(out, stream->events);
    if (!st.ok()) return Fail(st);
  }
  std::fprintf(stderr,
               "gt_generate: %zu events (%zu bootstrap, %zu evolution, %zu "
               "skipped rounds) -> %s\n",
               stream->events.size(), stream->bootstrap_events,
               stream->evolution_events, stream->skipped_rounds,
               out.empty() ? "stdout" : out.c_str());
  if (want_stats) {
    std::fprintf(stderr, "%s\n",
                 ComputeStreamStatistics(stream->events).ToString().c_str());
  }
  return 0;
}
