#include "algorithms/communities.h"

#include <gtest/gtest.h>

namespace graphtides {
namespace {

/// Two dense cliques joined by one bridge edge.
Graph TwoCliques(size_t clique_size) {
  Graph g;
  const size_t n = 2 * clique_size;
  for (VertexId v = 0; v < n; ++v) EXPECT_TRUE(g.AddVertex(v).ok());
  for (size_t base : {size_t{0}, clique_size}) {
    for (VertexId i = 0; i < clique_size; ++i) {
      for (VertexId j = i + 1; j < clique_size; ++j) {
        EXPECT_TRUE(g.AddEdge(base + i, base + j).ok());
      }
    }
  }
  EXPECT_TRUE(g.AddEdge(clique_size - 1, clique_size).ok());  // bridge
  return g;
}

TEST(LabelPropagationTest, EmptyGraph) {
  Rng rng(1);
  const CommunityResult r = LabelPropagation(CsrGraph::FromGraph(Graph()), rng);
  EXPECT_EQ(r.num_communities, 0u);
}

TEST(LabelPropagationTest, CliqueCollapsesToOneCommunity) {
  Graph g;
  const size_t n = 8;
  for (VertexId v = 0; v < n; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) ASSERT_TRUE(g.AddEdge(i, j).ok());
  }
  Rng rng(5);
  const CommunityResult r = LabelPropagation(CsrGraph::FromGraph(g), rng);
  EXPECT_EQ(r.num_communities, 1u);
}

TEST(LabelPropagationTest, SeparatesTwoCliques) {
  const CsrGraph csr = CsrGraph::FromGraph(TwoCliques(8));
  Rng rng(7);
  const CommunityResult r = LabelPropagation(csr, rng);
  // The two cliques must end up internally uniform.
  for (size_t i = 1; i < 8; ++i) {
    EXPECT_EQ(r.community[i], r.community[0]) << i;
    EXPECT_EQ(r.community[8 + i], r.community[8]) << i;
  }
  EXPECT_NE(r.community[0], r.community[8]);
  EXPECT_EQ(r.num_communities, 2u);
}

TEST(LabelPropagationTest, IsolatedVerticesKeepOwnLabels) {
  Graph g;
  for (VertexId v = 0; v < 4; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  Rng rng(9);
  const CommunityResult r = LabelPropagation(CsrGraph::FromGraph(g), rng);
  EXPECT_EQ(r.num_communities, 4u);
}

TEST(LabelPropagationTest, LabelsDense) {
  const CsrGraph csr = CsrGraph::FromGraph(TwoCliques(5));
  Rng rng(11);
  const CommunityResult r = LabelPropagation(csr, rng);
  for (uint32_t label : r.community) EXPECT_LT(label, r.num_communities);
}

TEST(CoreNumbersTest, CliqueIsUniform) {
  Graph g;
  const size_t n = 6;
  for (VertexId v = 0; v < n; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) ASSERT_TRUE(g.AddEdge(i, j).ok());
  }
  const auto cores = CoreNumbers(CsrGraph::FromGraph(g));
  for (uint32_t c : cores) EXPECT_EQ(c, n - 1);
}

TEST(CoreNumbersTest, PathGraphIsOneCore) {
  Graph g;
  for (VertexId v = 0; v < 5; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (VertexId v = 0; v + 1 < 5; ++v) ASSERT_TRUE(g.AddEdge(v, v + 1).ok());
  const auto cores = CoreNumbers(CsrGraph::FromGraph(g));
  for (uint32_t c : cores) EXPECT_EQ(c, 1u);
}

TEST(CoreNumbersTest, CliqueWithPendant) {
  // Clique of 4 (core 3) plus a pendant vertex (core 1).
  Graph g;
  for (VertexId v = 0; v < 5; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (VertexId i = 0; i < 4; ++i) {
    for (VertexId j = i + 1; j < 4; ++j) ASSERT_TRUE(g.AddEdge(i, j).ok());
  }
  ASSERT_TRUE(g.AddEdge(0, 4).ok());
  const CsrGraph csr = CsrGraph::FromGraph(g);
  const auto cores = CoreNumbers(csr);
  CsrGraph::Index pendant;
  ASSERT_TRUE(csr.IndexOf(4, &pendant));
  EXPECT_EQ(cores[pendant], 1u);
  CsrGraph::Index clique0;
  ASSERT_TRUE(csr.IndexOf(0, &clique0));
  EXPECT_EQ(cores[clique0], 3u);
}

TEST(CoreNumbersTest, IsolatedVertexIsZeroCore) {
  Graph g;
  ASSERT_TRUE(g.AddVertex(1).ok());
  const auto cores = CoreNumbers(CsrGraph::FromGraph(g));
  ASSERT_EQ(cores.size(), 1u);
  EXPECT_EQ(cores[0], 0u);
}

TEST(ModularityTest, GoodPartitionBeatsBadPartition) {
  const CsrGraph csr = CsrGraph::FromGraph(TwoCliques(6));
  std::vector<uint32_t> good(12);
  std::vector<uint32_t> bad(12);
  for (size_t v = 0; v < 12; ++v) {
    good[v] = v < 6 ? 0 : 1;
    bad[v] = v % 2;  // interleaved: terrible split
  }
  const double q_good = Modularity(csr, good);
  const double q_bad = Modularity(csr, bad);
  EXPECT_GT(q_good, 0.3);
  EXPECT_GT(q_good, q_bad);
}

TEST(ModularityTest, SingleCommunityIsZero) {
  const CsrGraph csr = CsrGraph::FromGraph(TwoCliques(4));
  const std::vector<uint32_t> all_same(8, 0);
  EXPECT_NEAR(Modularity(csr, all_same), 0.0, 1e-12);
}

TEST(ModularityTest, DegenerateInputs) {
  EXPECT_EQ(Modularity(CsrGraph::FromGraph(Graph()), {}), 0.0);
  Graph g;
  ASSERT_TRUE(g.AddVertex(1).ok());
  // Size mismatch -> 0.
  EXPECT_EQ(Modularity(CsrGraph::FromGraph(g), {0, 1}), 0.0);
}

}  // namespace
}  // namespace graphtides
