#include "algorithms/shortest_paths.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace graphtides {
namespace {

TEST(BellmanFordTest, UnitWeightsMatchHopCount) {
  Graph g;
  for (VertexId v = 0; v < 4; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (VertexId v = 0; v + 1 < 4; ++v) ASSERT_TRUE(g.AddEdge(v, v + 1).ok());
  const CsrGraph csr = CsrGraph::FromGraph(g);
  const BellmanFordResult r = BellmanFord(csr, 0, UnitWeights());
  for (uint32_t v = 0; v < 4; ++v) EXPECT_DOUBLE_EQ(r.distance[v], v);
  EXPECT_FALSE(r.has_negative_cycle);
}

TEST(BellmanFordTest, WeightedShortcut) {
  // 0->1 (1), 1->2 (1), 0->2 (5): shortest 0->2 is 2 via 1.
  Graph g;
  for (VertexId v = 0; v < 3; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  const CsrGraph csr = CsrGraph::FromGraph(g);
  auto weight = [](CsrGraph::Index s, CsrGraph::Index d) {
    return (s == 0 && d == 2) ? 5.0 : 1.0;
  };
  const BellmanFordResult r = BellmanFord(csr, 0, weight);
  EXPECT_DOUBLE_EQ(r.distance[2], 2.0);
  EXPECT_EQ(r.predecessor[2], 1u);
  EXPECT_EQ(r.predecessor[1], 0u);
}

TEST(BellmanFordTest, UnreachableIsInfinite) {
  Graph g;
  ASSERT_TRUE(g.AddVertex(0).ok());
  ASSERT_TRUE(g.AddVertex(1).ok());
  const CsrGraph csr = CsrGraph::FromGraph(g);
  const BellmanFordResult r = BellmanFord(csr, 0, UnitWeights());
  EXPECT_EQ(r.distance[1], kInfiniteDistance);
  EXPECT_EQ(r.predecessor[1], BellmanFordResult::kNoPredecessor);
}

TEST(BellmanFordTest, NegativeEdgeOk) {
  Graph g;
  for (VertexId v = 0; v < 3; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  const CsrGraph csr = CsrGraph::FromGraph(g);
  auto weight = [](CsrGraph::Index s, CsrGraph::Index) {
    return s == 1 ? -2.0 : 3.0;
  };
  const BellmanFordResult r = BellmanFord(csr, 0, weight);
  EXPECT_DOUBLE_EQ(r.distance[2], 1.0);
  EXPECT_FALSE(r.has_negative_cycle);
}

TEST(BellmanFordTest, DetectsNegativeCycle) {
  Graph g;
  for (VertexId v = 0; v < 2; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 0).ok());
  const CsrGraph csr = CsrGraph::FromGraph(g);
  auto weight = [](CsrGraph::Index, CsrGraph::Index) { return -1.0; };
  const BellmanFordResult r = BellmanFord(csr, 0, weight);
  EXPECT_TRUE(r.has_negative_cycle);
}

TEST(BellmanFordTest, UnreachableNegativeCycleIgnored) {
  // Negative cycle in a component unreachable from the source.
  Graph g;
  for (VertexId v = 0; v < 3; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 1).ok());
  const CsrGraph csr = CsrGraph::FromGraph(g);
  auto weight = [](CsrGraph::Index, CsrGraph::Index) { return -1.0; };
  const BellmanFordResult r = BellmanFord(csr, 0, weight);
  EXPECT_FALSE(r.has_negative_cycle);
}

TEST(BellmanFordTest, SingleVertexGraph) {
  Graph g;
  ASSERT_TRUE(g.AddVertex(0).ok());
  const BellmanFordResult r =
      BellmanFord(CsrGraph::FromGraph(g), 0, UnitWeights());
  EXPECT_DOUBLE_EQ(r.distance[0], 0.0);
}

TEST(FloydWarshallTest, MatchesBellmanFordOnRandomGraphs) {
  Rng rng(23);
  Graph g;
  const size_t n = 20;
  for (VertexId v = 0; v < n; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (int i = 0; i < 80; ++i) {
    const VertexId a = rng.NextBounded(n);
    const VertexId b = rng.NextBounded(n);
    if (a != b && !g.HasEdge(a, b)) ASSERT_TRUE(g.AddEdge(a, b).ok());
  }
  const CsrGraph csr = CsrGraph::FromGraph(g);
  // Deterministic positive weights from indices.
  auto weight = [](CsrGraph::Index s, CsrGraph::Index d) {
    return 1.0 + ((s * 7 + d * 13) % 5);
  };
  auto fw = FloydWarshall(csr, weight);
  ASSERT_TRUE(fw.ok());
  for (CsrGraph::Index src = 0; src < n; ++src) {
    const BellmanFordResult bf = BellmanFord(csr, src, weight);
    for (size_t dst = 0; dst < n; ++dst) {
      const double fw_dist = (*fw)[src * n + dst];
      if (bf.distance[dst] == kInfiniteDistance) {
        EXPECT_EQ(fw_dist, kInfiniteDistance);
      } else {
        EXPECT_NEAR(fw_dist, bf.distance[dst], 1e-9)
            << src << "->" << dst;
      }
    }
  }
}

TEST(FloydWarshallTest, RejectsHugeGraphs) {
  Graph g;
  for (VertexId v = 0; v < 4097; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  auto fw = FloydWarshall(CsrGraph::FromGraph(g), UnitWeights());
  ASSERT_FALSE(fw.ok());
  EXPECT_TRUE(fw.status().IsCapacityExceeded());
}

}  // namespace
}  // namespace graphtides
