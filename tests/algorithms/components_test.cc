#include "algorithms/components.h"

#include <gtest/gtest.h>

#include "algorithms/traversal.h"
#include "common/random.h"

namespace graphtides {
namespace {

TEST(WccTest, EmptyGraph) {
  const ComponentsResult r = WeaklyConnectedComponents(CsrGraph::FromGraph(Graph()));
  EXPECT_EQ(r.num_components, 0u);
  EXPECT_EQ(r.LargestSize(), 0u);
}

TEST(WccTest, IsolatedVerticesAreSingletons) {
  Graph g;
  for (VertexId v : {1, 2, 3}) ASSERT_TRUE(g.AddVertex(v).ok());
  const ComponentsResult r = WeaklyConnectedComponents(CsrGraph::FromGraph(g));
  EXPECT_EQ(r.num_components, 3u);
  EXPECT_EQ(r.LargestSize(), 1u);
}

TEST(WccTest, DirectionIgnored) {
  Graph g;
  for (VertexId v : {1, 2, 3}) ASSERT_TRUE(g.AddVertex(v).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(3, 2).ok());  // 3 -> 2 still connects weakly
  const ComponentsResult r = WeaklyConnectedComponents(CsrGraph::FromGraph(g));
  EXPECT_EQ(r.num_components, 1u);
  EXPECT_EQ(r.LargestSize(), 3u);
}

TEST(WccTest, TwoComponents) {
  Graph g;
  for (VertexId v = 0; v < 6; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(3, 4).ok());
  const ComponentsResult r = WeaklyConnectedComponents(CsrGraph::FromGraph(g));
  EXPECT_EQ(r.num_components, 3u);  // {0,1,2}, {3,4}, {5}
  EXPECT_EQ(r.LargestSize(), 3u);
  // Labels consistent with membership.
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[1], r.component[2]);
  EXPECT_EQ(r.component[3], r.component[4]);
  EXPECT_NE(r.component[0], r.component[3]);
  EXPECT_NE(r.component[0], r.component[5]);
}

TEST(WccTest, SizesSumToVertexCount) {
  Rng rng(31);
  Graph g;
  const size_t n = 60;
  for (VertexId v = 0; v < n; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (int i = 0; i < 50; ++i) {
    const VertexId a = rng.NextBounded(n);
    const VertexId b = rng.NextBounded(n);
    if (a != b && !g.HasEdge(a, b)) ASSERT_TRUE(g.AddEdge(a, b).ok());
  }
  const ComponentsResult r = WeaklyConnectedComponents(CsrGraph::FromGraph(g));
  size_t total = 0;
  for (size_t s : r.sizes) total += s;
  EXPECT_EQ(total, n);
}

TEST(WccTest, AgreesWithUndirectedBfs) {
  Rng rng(37);
  Graph g;
  const size_t n = 50;
  for (VertexId v = 0; v < n; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (int i = 0; i < 40; ++i) {
    const VertexId a = rng.NextBounded(n);
    const VertexId b = rng.NextBounded(n);
    if (a != b && !g.HasEdge(a, b)) ASSERT_TRUE(g.AddEdge(a, b).ok());
  }
  const CsrGraph csr = CsrGraph::FromGraph(g);
  const ComponentsResult r = WeaklyConnectedComponents(csr);
  // Same component iff mutually reachable in the undirected view.
  for (CsrGraph::Index v = 0; v < n; v += 7) {
    const auto dist = BfsDistancesUndirected(csr, v);
    for (CsrGraph::Index w = 0; w < n; ++w) {
      const bool reachable = dist[w] != kUnreachable;
      EXPECT_EQ(reachable, r.component[v] == r.component[w])
          << v << " vs " << w;
    }
  }
}

TEST(WccTest, LabelsAreDense) {
  Graph g;
  for (VertexId v = 0; v < 10; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  const ComponentsResult r = WeaklyConnectedComponents(CsrGraph::FromGraph(g));
  for (uint32_t label : r.component) {
    EXPECT_LT(label, r.num_components);
  }
}

}  // namespace
}  // namespace graphtides
