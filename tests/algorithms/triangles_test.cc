#include "algorithms/triangles.h"

#include <gtest/gtest.h>

namespace graphtides {
namespace {

Graph CompleteDirected(size_t n) {
  // One direction per pair (i < j), which is a complete undirected graph.
  Graph g;
  for (VertexId v = 0; v < n; ++v) EXPECT_TRUE(g.AddVertex(v).ok());
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) {
      EXPECT_TRUE(g.AddEdge(i, j).ok());
    }
  }
  return g;
}

TEST(TrianglesTest, EmptyAndTiny) {
  EXPECT_EQ(CountTriangles(CsrGraph::FromGraph(Graph())), 0u);
  EXPECT_EQ(CountTriangles(CsrGraph::FromGraph(CompleteDirected(2))), 0u);
}

TEST(TrianglesTest, SingleTriangle) {
  EXPECT_EQ(CountTriangles(CsrGraph::FromGraph(CompleteDirected(3))), 1u);
}

class CompleteGraphTrianglesTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CompleteGraphTrianglesTest, BinomialCount) {
  const size_t n = GetParam();
  const uint64_t expected = n * (n - 1) * (n - 2) / 6;
  EXPECT_EQ(CountTriangles(CsrGraph::FromGraph(CompleteDirected(n))),
            expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompleteGraphTrianglesTest,
                         ::testing::Values(3, 4, 5, 6, 8, 12));

TEST(TrianglesTest, DirectionDoesNotMatter) {
  // Triangle with mixed directions.
  Graph g;
  for (VertexId v : {1, 2, 3}) ASSERT_TRUE(g.AddVertex(v).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(3, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 3).ok());
  EXPECT_EQ(CountTriangles(CsrGraph::FromGraph(g)), 1u);
}

TEST(TrianglesTest, ReciprocalEdgesNotDoubleCounted) {
  // Both directions of every pair: still one triangle.
  Graph g;
  for (VertexId v : {1, 2, 3}) ASSERT_TRUE(g.AddVertex(v).ok());
  for (VertexId a : {1, 2, 3}) {
    for (VertexId b : {1, 2, 3}) {
      if (a != b) ASSERT_TRUE(g.AddEdge(a, b).ok());
    }
  }
  EXPECT_EQ(CountTriangles(CsrGraph::FromGraph(g)), 1u);
}

TEST(TrianglesTest, SquareHasNoTriangles) {
  Graph g;
  for (VertexId v = 0; v < 4; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (VertexId v = 0; v < 4; ++v) {
    ASSERT_TRUE(g.AddEdge(v, (v + 1) % 4).ok());
  }
  EXPECT_EQ(CountTriangles(CsrGraph::FromGraph(g)), 0u);
}

TEST(ClusteringTest, CompleteGraphIsOne) {
  EXPECT_NEAR(
      GlobalClusteringCoefficient(CsrGraph::FromGraph(CompleteDirected(5))),
      1.0, 1e-12);
}

TEST(ClusteringTest, TreeIsZero) {
  Graph g;
  for (VertexId v = 0; v < 7; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (VertexId v = 1; v < 7; ++v) {
    ASSERT_TRUE(g.AddEdge((v - 1) / 2, v).ok());
  }
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(CsrGraph::FromGraph(g)), 0.0);
}

TEST(ClusteringTest, KnownSmallGraph) {
  // Triangle {0,1,2} plus pendant 3 attached to 0.
  // Triangles = 1; wedges: deg(0)=3 -> 3, deg(1)=2 -> 1, deg(2)=2 -> 1,
  // deg(3)=1 -> 0; total 5. C = 3*1/5.
  Graph g;
  for (VertexId v = 0; v < 4; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 0).ok());
  ASSERT_TRUE(g.AddEdge(0, 3).ok());
  EXPECT_NEAR(GlobalClusteringCoefficient(CsrGraph::FromGraph(g)), 0.6,
              1e-12);
}

TEST(ClusteringTest, EmptyGraphIsZero) {
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(CsrGraph::FromGraph(Graph())),
                   0.0);
}

}  // namespace
}  // namespace graphtides
