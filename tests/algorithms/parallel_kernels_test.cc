// Golden tests for the parallel compute layer: every parallelized kernel
// must produce BIT-IDENTICAL results at threads 1, 2, and 8 — across all
// generator models — because chunk layouts and reduction orders derive
// only from the input graph, never from the thread count. threads = 1
// runs the sequential paths (for WCC the union-find reference), so these
// tests pin the parallel implementations to the sequential golden ones.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/components.h"
#include "algorithms/pagerank.h"
#include "algorithms/statistics.h"
#include "algorithms/triangles.h"
#include "generator/models/blockchain_model.h"
#include "generator/models/ddos_model.h"
#include "generator/models/event_mix_model.h"
#include "generator/models/social_network_model.h"
#include "generator/stream_generator.h"
#include "graph/csr.h"
#include "graph/graph.h"

namespace graphtides {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 8};

std::unique_ptr<GeneratorModel> MakeModel(const std::string& name) {
  if (name == "social") return std::make_unique<SocialNetworkModel>();
  if (name == "ddos") return std::make_unique<DdosModel>();
  if (name == "blockchain") return std::make_unique<BlockchainModel>();
  return std::make_unique<EventMixModel>(EventMixModelOptions{});
}

Graph MakeGraphFor(const std::string& model_name) {
  auto model = MakeModel(model_name);
  StreamGeneratorOptions options;
  options.rounds = 3000;
  options.seed = 5;
  auto stream = StreamGenerator(model.get(), options).Generate();
  EXPECT_TRUE(stream.ok()) << model_name << ": "
                           << stream.status().ToString();
  Graph graph;
  if (stream.ok()) {
    const Status st = graph.ApplyAll(stream->events);
    EXPECT_TRUE(st.ok()) << model_name << ": " << st.ToString();
  }
  return graph;
}

bool SameCsr(const CsrGraph& a, const CsrGraph& b) {
  if (a.ids() != b.ids() || a.out_offsets() != b.out_offsets() ||
      a.in_offsets() != b.in_offsets()) {
    return false;
  }
  for (CsrGraph::Index v = 0; v < a.num_vertices(); ++v) {
    const auto ao = a.OutNeighbors(v);
    const auto bo = b.OutNeighbors(v);
    const auto ai = a.InNeighbors(v);
    const auto bi = b.InNeighbors(v);
    if (!std::equal(ao.begin(), ao.end(), bo.begin(), bo.end()) ||
        !std::equal(ai.begin(), ai.end(), bi.begin(), bi.end())) {
      return false;
    }
  }
  return true;
}

/// Independent push-style power iteration (accumulates over out-edges in
/// a different order than the kernel's pull), for near-equality checks.
std::vector<double> ReferencePageRank(const CsrGraph& graph,
                                      const PageRankOptions& options) {
  const size_t n = graph.num_vertices();
  const double inv_n = 1.0 / static_cast<double>(n);
  std::vector<double> rank(n, inv_n);
  std::vector<double> next(n);
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    double dangling = 0.0;
    for (size_t v = 0; v < n; ++v) {
      if (graph.OutDegree(static_cast<CsrGraph::Index>(v)) == 0) {
        dangling += rank[v];
      }
    }
    const double base = (1.0 - options.damping) * inv_n +
                        options.damping * dangling * inv_n;
    std::fill(next.begin(), next.end(), base);
    for (size_t u = 0; u < n; ++u) {
      const auto out = graph.OutNeighbors(static_cast<CsrGraph::Index>(u));
      if (out.empty()) continue;
      const double share =
          options.damping * rank[u] / static_cast<double>(out.size());
      for (CsrGraph::Index v : out) next[v] += share;
    }
    double delta = 0.0;
    for (size_t v = 0; v < n; ++v) delta += std::abs(next[v] - rank[v]);
    rank.swap(next);
    if (delta < options.tolerance) break;
  }
  return rank;
}

class ParallelKernelsTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ParallelKernelsTest, CsrBuildIsThreadCountInvariant) {
  const Graph graph = MakeGraphFor(GetParam());
  const CsrGraph reference = CsrGraph::FromGraph(graph, 1);
  ASSERT_GT(reference.num_vertices(), 0u);
  for (const size_t threads : kThreadCounts) {
    const CsrGraph csr = CsrGraph::FromGraph(graph, threads);
    EXPECT_TRUE(SameCsr(reference, csr)) << "threads=" << threads;
  }
}

TEST_P(ParallelKernelsTest, PageRankIsBitIdenticalAcrossThreadCounts) {
  const Graph graph = MakeGraphFor(GetParam());
  const CsrGraph csr = CsrGraph::FromGraph(graph, 1);
  PageRankOptions options;
  options.threads = 1;
  const PageRankResult reference = PageRank(csr, options);
  double total = 0.0;
  for (double r : reference.ranks) total += r;
  EXPECT_NEAR(total, 1.0, 1e-9);

  for (const size_t threads : kThreadCounts) {
    options.threads = threads;
    const PageRankResult pr = PageRank(csr, options);
    EXPECT_EQ(pr.iterations, reference.iterations) << "threads=" << threads;
    // Bit-identical, not merely close: same chunks, same fold order.
    ASSERT_EQ(pr.ranks.size(), reference.ranks.size());
    for (size_t v = 0; v < pr.ranks.size(); ++v) {
      ASSERT_EQ(pr.ranks[v], reference.ranks[v])
          << "threads=" << threads << " vertex=" << v;
    }
  }

  // And numerically consistent with an independent push-style iteration.
  const std::vector<double> push = ReferencePageRank(csr, options);
  ASSERT_EQ(push.size(), reference.ranks.size());
  for (size_t v = 0; v < push.size(); ++v) {
    EXPECT_NEAR(push[v], reference.ranks[v], 1e-8) << "vertex=" << v;
  }
}

TEST_P(ParallelKernelsTest, WccMatchesUnionFindGolden) {
  const Graph graph = MakeGraphFor(GetParam());
  const CsrGraph csr = CsrGraph::FromGraph(graph, 1);
  // threads = 1 is the sequential union-find — the golden reference.
  const ComponentsResult golden =
      WeaklyConnectedComponents(csr, {.threads = 1});
  for (const size_t threads : kThreadCounts) {
    const ComponentsResult wcc =
        WeaklyConnectedComponents(csr, {.threads = threads});
    EXPECT_EQ(wcc.num_components, golden.num_components)
        << "threads=" << threads;
    EXPECT_EQ(wcc.component, golden.component) << "threads=" << threads;
    EXPECT_EQ(wcc.sizes, golden.sizes) << "threads=" << threads;
  }
}

TEST_P(ParallelKernelsTest, TrianglesAreThreadCountInvariant) {
  const Graph graph = MakeGraphFor(GetParam());
  const CsrGraph csr = CsrGraph::FromGraph(graph, 1);
  const uint64_t reference = CountTriangles(csr, 1);
  const double reference_gcc = GlobalClusteringCoefficient(csr, 1);
  for (const size_t threads : kThreadCounts) {
    EXPECT_EQ(CountTriangles(csr, threads), reference)
        << "threads=" << threads;
    // Integer triangle and wedge counts divide identically on every path.
    EXPECT_EQ(GlobalClusteringCoefficient(csr, threads), reference_gcc)
        << "threads=" << threads;
  }
}

TEST_P(ParallelKernelsTest, StatisticsAreThreadCountInvariant) {
  const Graph graph = MakeGraphFor(GetParam());
  const CsrGraph csr = CsrGraph::FromGraph(graph, 1);
  const GraphStatistics reference = ComputeGraphStatistics(csr, 1);
  for (const size_t threads : kThreadCounts) {
    const GraphStatistics s = ComputeGraphStatistics(csr, threads);
    EXPECT_EQ(s.num_vertices, reference.num_vertices);
    EXPECT_EQ(s.num_edges, reference.num_edges);
    EXPECT_EQ(s.density, reference.density) << "threads=" << threads;
    EXPECT_EQ(s.mean_out_degree, reference.mean_out_degree)
        << "threads=" << threads;
    EXPECT_EQ(s.max_out_degree, reference.max_out_degree);
    EXPECT_EQ(s.max_in_degree, reference.max_in_degree);
    EXPECT_EQ(s.isolated_vertices, reference.isolated_vertices);
    EXPECT_EQ(s.out_degree_gini, reference.out_degree_gini)
        << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ParallelKernelsTest,
                         ::testing::Values("social", "ddos", "blockchain",
                                           "mix"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace graphtides
