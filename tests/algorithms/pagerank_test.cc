#include "algorithms/pagerank.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/random.h"

namespace graphtides {
namespace {

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

Graph Cycle(size_t n) {
  Graph g;
  for (VertexId v = 0; v < n; ++v) EXPECT_TRUE(g.AddVertex(v).ok());
  for (VertexId v = 0; v < n; ++v) {
    EXPECT_TRUE(g.AddEdge(v, (v + 1) % n).ok());
  }
  return g;
}

TEST(PageRankTest, EmptyGraph) {
  const PageRankResult r = PageRank(CsrGraph::FromGraph(Graph()));
  EXPECT_TRUE(r.ranks.empty());
  EXPECT_EQ(r.iterations, 0u);
}

TEST(PageRankTest, SingleVertex) {
  Graph g;
  ASSERT_TRUE(g.AddVertex(1).ok());
  const PageRankResult r = PageRank(CsrGraph::FromGraph(g));
  ASSERT_EQ(r.ranks.size(), 1u);
  EXPECT_NEAR(r.ranks[0], 1.0, 1e-6);
}

TEST(PageRankTest, CycleIsUniform) {
  const size_t n = 8;
  const PageRankResult r = PageRank(CsrGraph::FromGraph(Cycle(n)));
  ASSERT_EQ(r.ranks.size(), n);
  EXPECT_TRUE(r.converged);
  for (double rank : r.ranks) {
    EXPECT_NEAR(rank, 1.0 / static_cast<double>(n), 1e-6);
  }
}

TEST(PageRankTest, RanksSumToOne) {
  Rng rng(3);
  Graph g;
  const size_t n = 100;
  for (VertexId v = 0; v < n; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (int i = 0; i < 400; ++i) {
    const VertexId a = rng.NextBounded(n);
    const VertexId b = rng.NextBounded(n);
    if (a != b && !g.HasEdge(a, b)) ASSERT_TRUE(g.AddEdge(a, b).ok());
  }
  const PageRankResult r = PageRank(CsrGraph::FromGraph(g));
  EXPECT_NEAR(Sum(r.ranks), 1.0, 1e-6);
}

TEST(PageRankTest, StarHubOutranksLeaves) {
  // Leaves all point at the hub.
  Graph g;
  ASSERT_TRUE(g.AddVertex(0).ok());
  for (VertexId v = 1; v <= 10; ++v) {
    ASSERT_TRUE(g.AddVertex(v).ok());
    ASSERT_TRUE(g.AddEdge(v, 0).ok());
  }
  const CsrGraph csr = CsrGraph::FromGraph(g);
  const PageRankResult r = PageRank(csr);
  CsrGraph::Index hub;
  ASSERT_TRUE(csr.IndexOf(0, &hub));
  for (CsrGraph::Index v = 0; v < csr.num_vertices(); ++v) {
    if (v != hub) EXPECT_GT(r.ranks[hub], r.ranks[v]);
  }
}

TEST(PageRankTest, TwoVertexClosedPairAnalytic) {
  // 1 <-> 2 is symmetric: both 0.5 regardless of damping.
  Graph g;
  ASSERT_TRUE(g.AddVertex(1).ok());
  ASSERT_TRUE(g.AddVertex(2).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 1).ok());
  const PageRankResult r = PageRank(CsrGraph::FromGraph(g));
  EXPECT_NEAR(r.ranks[0], 0.5, 1e-9);
  EXPECT_NEAR(r.ranks[1], 0.5, 1e-9);
}

TEST(PageRankTest, DanglingMassRedistributed) {
  // 1 -> 2, 2 dangling. Closed-form with uniform dangling redistribution:
  // solve x1 = (1-d)/2 + d*x2/2, x2 = (1-d)/2 + d*x1 + d*x2/2.
  Graph g;
  ASSERT_TRUE(g.AddVertex(1).ok());
  ASSERT_TRUE(g.AddVertex(2).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  const double d = 0.85;
  PageRankOptions options;
  options.damping = d;
  options.tolerance = 1e-14;
  options.max_iterations = 10000;
  const PageRankResult r = PageRank(CsrGraph::FromGraph(g), options);
  // From the two equations with x1 + x2 = 1: x1 = 1/(2+d).
  const double x1 = 1.0 / (2.0 + d);
  EXPECT_NEAR(r.ranks[0], x1, 1e-9);
  EXPECT_NEAR(r.ranks[1], 1.0 - x1, 1e-9);
  EXPECT_NEAR(Sum(r.ranks), 1.0, 1e-9);
}

TEST(PageRankTest, MaxIterationsRespected) {
  PageRankOptions options;
  options.max_iterations = 3;
  options.tolerance = 0.0;  // never converge by tolerance
  const PageRankResult r = PageRank(CsrGraph::FromGraph(Cycle(5)), options);
  EXPECT_EQ(r.iterations, 3u);
  EXPECT_FALSE(r.converged);
}

TEST(TopKByRankTest, OrdersAndTruncates) {
  const std::vector<double> ranks = {0.1, 0.4, 0.2, 0.3};
  const auto top2 = TopKByRank(ranks, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], 1u);
  EXPECT_EQ(top2[1], 3u);
}

TEST(TopKByRankTest, TieBreaksByIndex) {
  const std::vector<double> ranks = {0.5, 0.5, 0.5};
  const auto top = TopKByRank(ranks, 3);
  EXPECT_EQ(top, (std::vector<CsrGraph::Index>{0, 1, 2}));
}

TEST(TopKByRankTest, KLargerThanSize) {
  const auto top = TopKByRank({0.2, 0.8}, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
}

TEST(MedianRelativeErrorTest, ExactMatchIsZero) {
  EXPECT_DOUBLE_EQ(MedianRelativeError({0.5, 0.5}, {0.5, 0.5}), 0.0);
}

TEST(MedianRelativeErrorTest, KnownError) {
  // Errors: 0.1/0.5 = 0.2 and 0 -> median 0.1.
  EXPECT_NEAR(MedianRelativeError({0.6, 0.5}, {0.5, 0.5}), 0.1, 1e-12);
}

TEST(MedianRelativeErrorTest, SkipsZeroExact) {
  EXPECT_NEAR(MedianRelativeError({0.6, 123.0}, {0.5, 0.0}), 0.2, 1e-12);
}

}  // namespace
}  // namespace graphtides
