#include "algorithms/incremental.h"

#include <gtest/gtest.h>

#include "algorithms/components.h"
#include "common/random.h"
#include "graph/csr.h"
#include "graph/graph.h"

namespace graphtides {
namespace {

TEST(IncrementalWccTest, StartsEmpty) {
  IncrementalWcc wcc;
  EXPECT_EQ(wcc.NumComponents(), 0u);
  EXPECT_FALSE(wcc.SameComponent(1, 2));
}

TEST(IncrementalWccTest, AdditionsTracked) {
  IncrementalWcc wcc;
  wcc.OnEventApplied(Event::AddVertex(1));
  wcc.OnEventApplied(Event::AddVertex(2));
  wcc.OnEventApplied(Event::AddVertex(3));
  EXPECT_EQ(wcc.NumComponents(), 3u);
  wcc.OnEventApplied(Event::AddEdge(1, 2));
  EXPECT_EQ(wcc.NumComponents(), 2u);
  EXPECT_TRUE(wcc.SameComponent(1, 2));
  EXPECT_FALSE(wcc.SameComponent(1, 3));
  // Redundant edge does not change the count.
  wcc.OnEventApplied(Event::AddEdge(2, 1));
  EXPECT_EQ(wcc.NumComponents(), 2u);
}

TEST(IncrementalWccTest, EdgeRemovalSplits) {
  IncrementalWcc wcc;
  for (VertexId v : {1, 2, 3}) wcc.OnEventApplied(Event::AddVertex(v));
  wcc.OnEventApplied(Event::AddEdge(1, 2));
  wcc.OnEventApplied(Event::AddEdge(2, 3));
  EXPECT_EQ(wcc.NumComponents(), 1u);
  EXPECT_FALSE(wcc.dirty());
  wcc.OnEventApplied(Event::RemoveEdge(2, 3));
  EXPECT_TRUE(wcc.dirty());
  EXPECT_EQ(wcc.NumComponents(), 2u);  // rebuild happens on query
  EXPECT_FALSE(wcc.dirty());
  EXPECT_FALSE(wcc.SameComponent(1, 3));
}

TEST(IncrementalWccTest, VertexRemovalSplits) {
  IncrementalWcc wcc;
  for (VertexId v : {1, 2, 3}) wcc.OnEventApplied(Event::AddVertex(v));
  wcc.OnEventApplied(Event::AddEdge(1, 2));
  wcc.OnEventApplied(Event::AddEdge(2, 3));
  wcc.OnEventApplied(Event::RemoveVertex(2));
  EXPECT_EQ(wcc.NumComponents(), 2u);  // {1}, {3}
  EXPECT_EQ(wcc.num_vertices(), 2u);
}

TEST(IncrementalWccTest, MatchesBatchOnRandomStreams) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    IncrementalWcc wcc;
    Graph graph;
    const size_t n = 30;
    for (VertexId v = 0; v < n; ++v) {
      const Event e = Event::AddVertex(v);
      ASSERT_TRUE(graph.Apply(e).ok());
      wcc.OnEventApplied(e);
    }
    for (int i = 0; i < 200; ++i) {
      const double x = rng.NextDouble();
      if (x < 0.6) {
        const VertexId a = rng.NextBounded(n);
        const VertexId b = rng.NextBounded(n);
        const Event e = Event::AddEdge(a, b);
        if (graph.Apply(e).ok()) wcc.OnEventApplied(e);
      } else if (x < 0.9) {
        // Remove a random existing edge by scanning.
        std::vector<EdgeId> edges;
        graph.ForEachEdge([&](VertexId s, VertexId d, const std::string&) {
          edges.push_back({s, d});
        });
        if (edges.empty()) continue;
        const EdgeId victim = edges[rng.NextBounded(edges.size())];
        const Event e = Event::RemoveEdge(victim.src, victim.dst);
        ASSERT_TRUE(graph.Apply(e).ok());
        wcc.OnEventApplied(e);
      }
      // Occasionally verify against the batch algorithm.
      if (i % 40 == 39) {
        const ComponentsResult batch =
            WeaklyConnectedComponents(CsrGraph::FromGraph(graph));
        EXPECT_EQ(wcc.NumComponents(), batch.num_components)
            << "seed " << seed << " step " << i;
      }
    }
  }
}

TEST(IncrementalDegreeStatsTest, StartsEmpty) {
  IncrementalDegreeStats stats;
  EXPECT_EQ(stats.num_vertices(), 0u);
  EXPECT_EQ(stats.num_edges(), 0u);
  EXPECT_EQ(stats.MeanOutDegree(), 0.0);
  EXPECT_EQ(stats.MaxOutDegree(), 0u);
}

TEST(IncrementalDegreeStatsTest, TracksAdds) {
  IncrementalDegreeStats stats;
  for (VertexId v : {1, 2, 3}) stats.OnEventApplied(Event::AddVertex(v));
  stats.OnEventApplied(Event::AddEdge(1, 2));
  stats.OnEventApplied(Event::AddEdge(1, 3));
  EXPECT_EQ(stats.num_edges(), 2u);
  EXPECT_EQ(stats.MaxOutDegree(), 2u);
  EXPECT_NEAR(stats.MeanOutDegree(), 2.0 / 3.0, 1e-12);
}

TEST(IncrementalDegreeStatsTest, EdgeRemovalUpdatesMax) {
  IncrementalDegreeStats stats;
  for (VertexId v : {1, 2, 3}) stats.OnEventApplied(Event::AddVertex(v));
  stats.OnEventApplied(Event::AddEdge(1, 2));
  stats.OnEventApplied(Event::AddEdge(1, 3));
  stats.OnEventApplied(Event::AddEdge(2, 3));
  EXPECT_EQ(stats.MaxOutDegree(), 2u);
  stats.OnEventApplied(Event::RemoveEdge(1, 2));
  EXPECT_EQ(stats.MaxOutDegree(), 1u);
  EXPECT_EQ(stats.num_edges(), 2u);
}

TEST(IncrementalDegreeStatsTest, VertexRemovalCascades) {
  IncrementalDegreeStats stats;
  for (VertexId v : {1, 2, 3}) stats.OnEventApplied(Event::AddVertex(v));
  stats.OnEventApplied(Event::AddEdge(1, 2));
  stats.OnEventApplied(Event::AddEdge(3, 2));
  stats.OnEventApplied(Event::RemoveVertex(2));
  EXPECT_EQ(stats.num_vertices(), 2u);
  EXPECT_EQ(stats.num_edges(), 0u);
  EXPECT_EQ(stats.MaxOutDegree(), 0u);
}

TEST(IncrementalDegreeStatsTest, MatchesGraphOnRandomStream) {
  Rng rng(77);
  IncrementalDegreeStats stats;
  Graph graph;
  const size_t n = 25;
  for (VertexId v = 0; v < n; ++v) {
    const Event e = Event::AddVertex(v);
    ASSERT_TRUE(graph.Apply(e).ok());
    stats.OnEventApplied(e);
  }
  for (int i = 0; i < 300; ++i) {
    const VertexId a = rng.NextBounded(n);
    const VertexId b = rng.NextBounded(n);
    if (a == b) continue;
    Event e = graph.HasEdge(a, b) ? Event::RemoveEdge(a, b)
                                  : Event::AddEdge(a, b);
    if (!graph.HasVertex(a) || !graph.HasVertex(b)) continue;
    ASSERT_TRUE(graph.Apply(e).ok());
    stats.OnEventApplied(e);
  }
  EXPECT_EQ(stats.num_edges(), graph.num_edges());
  size_t expected_max = 0;
  for (VertexId v : graph.VertexIds()) {
    expected_max = std::max(expected_max, graph.OutDegree(v).value());
  }
  EXPECT_EQ(stats.MaxOutDegree(), expected_max);
}

}  // namespace
}  // namespace graphtides
