#include "algorithms/online_pagerank.h"

#include <gtest/gtest.h>

#include "algorithms/pagerank.h"
#include "common/random.h"
#include "graph/csr.h"

namespace graphtides {
namespace {

/// Applies events to both the graph and the online rank.
void Feed(Graph& graph, OnlinePageRank& rank, const Event& event) {
  ASSERT_TRUE(graph.Apply(event).ok());
  rank.OnEventApplied(event);
}

/// Runs pushes until convergence (bounded).
void Settle(OnlinePageRank& rank) {
  for (int i = 0; i < 10000 && rank.HasPendingWork(); ++i) {
    rank.ProcessPending(1000);
  }
  EXPECT_FALSE(rank.HasPendingWork());
}

double MaxAbsRankDiff(const Graph& graph, const OnlinePageRank& online) {
  const CsrGraph csr = CsrGraph::FromGraph(graph);
  PageRankOptions options;
  options.tolerance = 1e-12;
  options.max_iterations = 500;
  const PageRankResult exact = PageRank(csr, options);
  double max_diff = 0.0;
  for (CsrGraph::Index v = 0; v < csr.num_vertices(); ++v) {
    const double approx = online.RankOf(csr.IdOf(v));
    max_diff = std::max(max_diff, std::abs(approx - exact.ranks[v]));
  }
  return max_diff;
}

TEST(OnlinePageRankTest, EmptyHasNoWork) {
  Graph g;
  OnlinePageRank rank;
  EXPECT_FALSE(rank.HasPendingWork());
  EXPECT_EQ(rank.RankOf(1), 0.0);
  EXPECT_TRUE(rank.NormalizedRanks().empty());
}

TEST(OnlinePageRankTest, SingleVertexRankIsOne) {
  Graph g;
  OnlinePageRank rank;
  Feed(g, rank, Event::AddVertex(7));
  Settle(rank);
  EXPECT_NEAR(rank.RankOf(7), 1.0, 1e-9);
}

TEST(OnlinePageRankTest, SymmetricPairConverges) {
  Graph g;
  OnlinePageRankOptions options;
  options.push_threshold = 1e-8;
  OnlinePageRank rank(options);
  Feed(g, rank, Event::AddVertex(1));
  Feed(g, rank, Event::AddVertex(2));
  Feed(g, rank, Event::AddEdge(1, 2));
  Feed(g, rank, Event::AddEdge(2, 1));
  Settle(rank);
  EXPECT_NEAR(rank.RankOf(1), 0.5, 1e-3);
  EXPECT_NEAR(rank.RankOf(2), 0.5, 1e-3);
}

TEST(OnlinePageRankTest, ConvergesToBatchOnStaticGraph) {
  Rng rng(3);
  Graph g;
  OnlinePageRankOptions options;
  options.push_threshold = 1e-7;
  OnlinePageRank rank(options);
  const size_t n = 40;
  for (VertexId v = 0; v < n; ++v) Feed(g, rank, Event::AddVertex(v));
  for (int i = 0; i < 150; ++i) {
    const VertexId a = rng.NextBounded(n);
    const VertexId b = rng.NextBounded(n);
    if (a != b && !g.HasEdge(a, b)) Feed(g, rank, Event::AddEdge(a, b));
  }
  Settle(rank);
  EXPECT_LT(MaxAbsRankDiff(g, rank), 0.01);
}

TEST(OnlinePageRankTest, TracksTopologyChangesIncludingRemovals) {
  Rng rng(11);
  Graph g;
  OnlinePageRankOptions options;
  options.push_threshold = 1e-7;
  OnlinePageRank rank(options);
  const size_t n = 30;
  for (VertexId v = 0; v < n; ++v) Feed(g, rank, Event::AddVertex(v));
  std::vector<EdgeId> edges;
  for (int i = 0; i < 120; ++i) {
    const VertexId a = rng.NextBounded(n);
    const VertexId b = rng.NextBounded(n);
    if (a != b && !g.HasEdge(a, b)) {
      Feed(g, rank, Event::AddEdge(a, b));
      edges.push_back({a, b});
    }
  }
  // Remove a third of the edges.
  for (size_t i = 0; i < edges.size(); i += 3) {
    if (g.HasEdge(edges[i].src, edges[i].dst)) {
      Feed(g, rank, Event::RemoveEdge(edges[i].src, edges[i].dst));
    }
  }
  Settle(rank);
  // With invariant-preserving corrections, deletions no longer leave stale
  // propagated mass: the settled estimate tracks the current graph tightly.
  EXPECT_LT(MaxAbsRankDiff(g, rank), 0.01);
}

TEST(OnlinePageRankTest, HubAccumulatesRank) {
  Graph g;
  OnlinePageRank rank;
  Feed(g, rank, Event::AddVertex(0));
  for (VertexId v = 1; v <= 12; ++v) {
    Feed(g, rank, Event::AddVertex(v));
    Feed(g, rank, Event::AddEdge(v, 0));
  }
  Settle(rank);
  for (VertexId v = 1; v <= 12; ++v) {
    EXPECT_GT(rank.RankOf(0), rank.RankOf(v));
  }
}

TEST(OnlinePageRankTest, StaleResultBeforeProcessing) {
  // Without processing pushes, estimates lag — the latency/accuracy
  // trade-off the framework measures.
  Graph g;
  OnlinePageRank rank;
  Feed(g, rank, Event::AddVertex(1));
  Feed(g, rank, Event::AddVertex(2));
  Feed(g, rank, Event::AddEdge(1, 2));
  EXPECT_TRUE(rank.HasPendingWork());
  // Nothing processed: vertex 2 has no estimate yet.
  const double before = rank.RankOf(2);
  Settle(rank);
  const double after = rank.RankOf(2);
  EXPECT_GT(after, before);
}

TEST(OnlinePageRankTest, RemovedVertexLosesRank) {
  Graph g;
  OnlinePageRank rank;
  Feed(g, rank, Event::AddVertex(1));
  Feed(g, rank, Event::AddVertex(2));
  Settle(rank);
  EXPECT_GT(rank.RankOf(2), 0.0);
  Feed(g, rank, Event::RemoveVertex(2));
  Settle(rank);
  EXPECT_EQ(rank.RankOf(2), 0.0);
  EXPECT_NEAR(rank.RankOf(1), 1.0, 1e-6);
}

TEST(OnlinePageRankTest, NormalizedRanksSumToOne) {
  Rng rng(19);
  Graph g;
  OnlinePageRank rank;
  for (VertexId v = 0; v < 20; ++v) Feed(g, rank, Event::AddVertex(v));
  for (int i = 0; i < 50; ++i) {
    const VertexId a = rng.NextBounded(20);
    const VertexId b = rng.NextBounded(20);
    if (a != b && !g.HasEdge(a, b)) Feed(g, rank, Event::AddEdge(a, b));
  }
  Settle(rank);
  double sum = 0.0;
  for (const auto& [v, r] : rank.NormalizedRanks()) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(OnlinePageRankCoreTest, RemoteEmissionForNonLocalVertices) {
  // A core owning only even vertices must emit residual deltas for odd
  // targets of its out-edges.
  OnlinePageRankOptions options;
  OnlinePageRankCore core(options, [](VertexId v) { return v % 2 == 0; });
  core.AddVertex(0);
  core.AddVertex(2);
  core.AddEdge(0, 1);
  core.AddEdge(0, 2);
  core.AddEdge(2, 1);
  double remote_mass = 0.0;
  size_t remote_count = 0;
  while (core.HasPendingWork()) {
    core.ProcessPushes(100, [&](VertexId target, double delta) {
      EXPECT_EQ(target % 2, 1u);
      remote_mass += delta;
      ++remote_count;
    });
  }
  EXPECT_GT(remote_count, 0u);
  EXPECT_GT(remote_mass, 0.0);
}

TEST(OnlinePageRankCoreTest, TopologyCorrectionsFlushedToRemotes) {
  // Edge churn at a local vertex with an already-distributed score must
  // emit signed corrections toward remote neighbors.
  OnlinePageRankOptions options;
  OnlinePageRankCore core(options, [](VertexId v) { return v == 0; });
  core.AddVertex(0);
  core.AddEdge(0, 1);
  // Distribute the score.
  while (core.HasPendingWork()) {
    core.ProcessPushes(100, [](VertexId, double) {});
  }
  const double score = core.EstimateOf(0);
  ASSERT_GT(score, 0.0);
  // Adding a second out-edge halves 1's share: expect a negative delta to
  // 1 and a positive delta to 3.
  core.AddEdge(0, 3);
  double delta_to_1 = 0.0;
  double delta_to_3 = 0.0;
  core.ProcessPushes(100, [&](VertexId target, double delta) {
    if (target == 1) delta_to_1 += delta;
    if (target == 3) delta_to_3 += delta;
  });
  EXPECT_LT(delta_to_1, 0.0);
  EXPECT_GT(delta_to_3, 0.0);
  EXPECT_NEAR(delta_to_1 + delta_to_3, 0.0, 1e-12);
}

TEST(OnlinePageRankTest, InterleavedProcessingStaysAccurate) {
  // The invariant-preserving corrections keep interleaved ingest+compute
  // convergent — the failure mode of naive re-injection schemes.
  Rng rng(29);
  Graph g;
  OnlinePageRankOptions options;
  options.push_threshold = 1e-6;
  OnlinePageRank rank(options);
  const size_t n = 50;
  for (VertexId v = 0; v < n; ++v) {
    Feed(g, rank, Event::AddVertex(v));
    rank.ProcessPending(32);  // compute during ingestion
  }
  for (int i = 0; i < 400; ++i) {
    const VertexId a = rng.NextBounded(n);
    const VertexId b = rng.NextBounded(n);
    if (a != b && !g.HasEdge(a, b)) {
      Feed(g, rank, Event::AddEdge(a, b));
    }
    rank.ProcessPending(32);
  }
  Settle(rank);
  EXPECT_LT(MaxAbsRankDiff(g, rank), 0.005);
}

}  // namespace
}  // namespace graphtides
