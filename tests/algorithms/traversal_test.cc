#include "algorithms/traversal.h"

#include <gtest/gtest.h>

namespace graphtides {
namespace {

Graph Path(size_t n) {
  Graph g;
  for (VertexId v = 0; v < n; ++v) EXPECT_TRUE(g.AddVertex(v).ok());
  for (VertexId v = 0; v + 1 < n; ++v) EXPECT_TRUE(g.AddEdge(v, v + 1).ok());
  return g;
}

TEST(BfsTest, DistancesAlongPath) {
  const CsrGraph csr = CsrGraph::FromGraph(Path(5));
  const auto dist = BfsDistances(csr, 0);
  for (uint32_t v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(BfsTest, DirectionalityMatters) {
  const CsrGraph csr = CsrGraph::FromGraph(Path(5));
  const auto dist = BfsDistances(csr, 4);
  EXPECT_EQ(dist[4], 0u);
  for (uint32_t v = 0; v < 4; ++v) EXPECT_EQ(dist[v], kUnreachable);
}

TEST(BfsTest, UndirectedViewReachesBackwards) {
  const CsrGraph csr = CsrGraph::FromGraph(Path(5));
  const auto dist = BfsDistancesUndirected(csr, 4);
  for (uint32_t v = 0; v < 5; ++v) EXPECT_EQ(dist[v], 4 - v);
}

TEST(BfsTest, DisconnectedComponentsUnreachable) {
  Graph g;
  for (VertexId v : {1, 2, 3, 4}) ASSERT_TRUE(g.AddVertex(v).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(3, 4).ok());
  const CsrGraph csr = CsrGraph::FromGraph(g);
  CsrGraph::Index start;
  ASSERT_TRUE(csr.IndexOf(1, &start));
  const auto dist = BfsDistances(csr, start);
  CsrGraph::Index other;
  ASSERT_TRUE(csr.IndexOf(3, &other));
  EXPECT_EQ(dist[other], kUnreachable);
}

TEST(BfsTest, InvalidSourceAllUnreachable) {
  const CsrGraph csr = CsrGraph::FromGraph(Path(3));
  const auto dist = BfsDistances(csr, 99);
  for (uint32_t d : dist) EXPECT_EQ(d, kUnreachable);
}

TEST(PathExistsTest, FollowsDirection) {
  const CsrGraph csr = CsrGraph::FromGraph(Path(4));
  EXPECT_TRUE(PathExists(csr, 0, 3));
  EXPECT_FALSE(PathExists(csr, 3, 0));
  EXPECT_TRUE(PathExists(csr, 1, 1));  // trivially reachable
  EXPECT_FALSE(PathExists(csr, 0, 99));
}

TEST(SpanningTreeTest, CoversReachableSet) {
  const CsrGraph csr = CsrGraph::FromGraph(Path(5));
  const SpanningTree tree = BfsSpanningTree(csr, 0);
  EXPECT_EQ(tree.reached, 5u);
  EXPECT_EQ(tree.parent[0], 0u);
  for (uint32_t v = 1; v < 5; ++v) EXPECT_EQ(tree.parent[v], v - 1);
}

TEST(SpanningTreeTest, ParentEdgesExist) {
  Graph g;
  for (VertexId v = 0; v < 6; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 3).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  ASSERT_TRUE(g.AddEdge(3, 4).ok());
  const CsrGraph csr = CsrGraph::FromGraph(g);
  const SpanningTree tree = BfsSpanningTree(csr, 0);
  EXPECT_EQ(tree.reached, 5u);  // vertex 5 unreachable
  for (uint32_t v = 0; v < csr.num_vertices(); ++v) {
    if (tree.parent[v] == SpanningTree::kNoParent || tree.parent[v] == v) {
      continue;
    }
    // Parent edge must exist in the graph.
    bool found = false;
    for (CsrGraph::Index w : csr.OutNeighbors(tree.parent[v])) {
      if (w == v) found = true;
    }
    EXPECT_TRUE(found) << "missing edge " << tree.parent[v] << "->" << v;
  }
}

TEST(DiameterTest, PathGraphExact) {
  const CsrGraph csr = CsrGraph::FromGraph(Path(10));
  EXPECT_EQ(ExactDiameter(csr), 9u);
}

TEST(DiameterTest, EstimateMatchesExactOnTrees) {
  // Double sweep is exact on trees.
  Graph g;
  for (VertexId v = 0; v < 15; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (VertexId v = 1; v < 15; ++v) {
    ASSERT_TRUE(g.AddEdge((v - 1) / 2, v).ok());  // binary tree
  }
  const CsrGraph csr = CsrGraph::FromGraph(g);
  Rng rng(7);
  const size_t estimate = EstimateDiameter(csr, 3, rng);
  EXPECT_EQ(estimate, ExactDiameter(csr));
}

TEST(DiameterTest, EstimateNeverExceedsExact) {
  Rng graph_rng(13);
  Graph g;
  const size_t n = 40;
  for (VertexId v = 0; v < n; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (int i = 0; i < 100; ++i) {
    const VertexId a = graph_rng.NextBounded(n);
    const VertexId b = graph_rng.NextBounded(n);
    if (a != b && !g.HasEdge(a, b)) ASSERT_TRUE(g.AddEdge(a, b).ok());
  }
  const CsrGraph csr = CsrGraph::FromGraph(g);
  const size_t exact = ExactDiameter(csr);
  Rng rng(17);
  const size_t estimate = EstimateDiameter(csr, 8, rng);
  EXPECT_LE(estimate, exact);
  EXPECT_GE(estimate, exact > 0 ? 1u : 0u);
}

TEST(DiameterTest, TinyGraphs) {
  Rng rng(1);
  EXPECT_EQ(EstimateDiameter(CsrGraph::FromGraph(Graph()), 2, rng), 0u);
  Graph one;
  ASSERT_TRUE(one.AddVertex(1).ok());
  EXPECT_EQ(EstimateDiameter(CsrGraph::FromGraph(one), 2, rng), 0u);
  EXPECT_EQ(ExactDiameter(CsrGraph::FromGraph(one)), 0u);
}

}  // namespace
}  // namespace graphtides
