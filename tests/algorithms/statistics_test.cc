#include "algorithms/statistics.h"

#include <gtest/gtest.h>

namespace graphtides {
namespace {

Graph Star(size_t leaves) {
  Graph g;
  EXPECT_TRUE(g.AddVertex(0).ok());
  for (VertexId v = 1; v <= leaves; ++v) {
    EXPECT_TRUE(g.AddVertex(v).ok());
    EXPECT_TRUE(g.AddEdge(0, v).ok());
  }
  return g;
}

TEST(GraphStatisticsTest, EmptyGraph) {
  const GraphStatistics s = ComputeGraphStatistics(CsrGraph::FromGraph(Graph()));
  EXPECT_EQ(s.num_vertices, 0u);
  EXPECT_EQ(s.num_edges, 0u);
  EXPECT_EQ(s.density, 0.0);
}

TEST(GraphStatisticsTest, StarGraph) {
  const CsrGraph csr = CsrGraph::FromGraph(Star(4));
  const GraphStatistics s = ComputeGraphStatistics(csr);
  EXPECT_EQ(s.num_vertices, 5u);
  EXPECT_EQ(s.num_edges, 4u);
  EXPECT_EQ(s.max_out_degree, 4u);
  EXPECT_EQ(s.max_in_degree, 1u);
  EXPECT_DOUBLE_EQ(s.mean_out_degree, 0.8);
  EXPECT_DOUBLE_EQ(s.density, 4.0 / 20.0);
  EXPECT_EQ(s.isolated_vertices, 0u);
  // One vertex holds all out-degree: very unequal.
  EXPECT_GT(s.out_degree_gini, 0.7);
}

TEST(GraphStatisticsTest, IsolatedVerticesCounted) {
  Graph g;
  for (VertexId v : {1, 2, 3}) ASSERT_TRUE(g.AddVertex(v).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  const GraphStatistics s = ComputeGraphStatistics(CsrGraph::FromGraph(g));
  EXPECT_EQ(s.isolated_vertices, 1u);
}

TEST(GraphStatisticsTest, UniformDegreesHaveZeroGini) {
  // Directed cycle: every vertex has out-degree 1.
  Graph g;
  const size_t n = 10;
  for (VertexId v = 0; v < n; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_TRUE(g.AddEdge(v, (v + 1) % n).ok());
  }
  const GraphStatistics s = ComputeGraphStatistics(CsrGraph::FromGraph(g));
  EXPECT_NEAR(s.out_degree_gini, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean_out_degree, 1.0);
}

TEST(DegreeDistributionTest, StarGraph) {
  const CsrGraph csr = CsrGraph::FromGraph(Star(4));
  const auto out = OutDegreeDistribution(csr);
  EXPECT_EQ(out.at(0), 4u);  // 4 leaves with out-degree 0
  EXPECT_EQ(out.at(4), 1u);  // hub
  const auto in = InDegreeDistribution(csr);
  EXPECT_EQ(in.at(1), 4u);
  EXPECT_EQ(in.at(0), 1u);
}

TEST(DegreeDistributionTest, SumsToVertexCount) {
  const CsrGraph csr = CsrGraph::FromGraph(Star(7));
  size_t total = 0;
  for (const auto& [deg, count] : OutDegreeDistribution(csr)) total += count;
  EXPECT_EQ(total, csr.num_vertices());
}

TEST(GraphStatisticsTest, ToStringContainsCoreFields) {
  const GraphStatistics s = ComputeGraphStatistics(CsrGraph::FromGraph(Star(2)));
  const std::string text = s.ToString();
  EXPECT_NE(text.find("n=3"), std::string::npos);
  EXPECT_NE(text.find("m=2"), std::string::npos);
}

}  // namespace
}  // namespace graphtides
