#include "algorithms/coloring.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace graphtides {
namespace {

TEST(ColoringTest, EmptyGraph) {
  const ColoringResult r = GreedyColoring(CsrGraph::FromGraph(Graph()));
  EXPECT_EQ(r.num_colors, 0u);
  EXPECT_TRUE(r.color.empty());
}

TEST(ColoringTest, IsolatedVerticesOneColor) {
  Graph g;
  for (VertexId v = 0; v < 5; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  const ColoringResult r = GreedyColoring(CsrGraph::FromGraph(g));
  EXPECT_EQ(r.num_colors, 1u);
  for (uint32_t c : r.color) EXPECT_EQ(c, 0u);
}

TEST(ColoringTest, BipartiteEvenCycleTwoColors) {
  Graph g;
  const size_t n = 8;
  for (VertexId v = 0; v < n; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_TRUE(g.AddEdge(v, (v + 1) % n).ok());
  }
  const CsrGraph csr = CsrGraph::FromGraph(g);
  const ColoringResult r = GreedyColoring(csr);
  EXPECT_TRUE(IsProperColoring(csr, r.color));
  EXPECT_LE(r.num_colors, 3u);  // greedy may use 3 on cycles, never more
}

TEST(ColoringTest, CompleteGraphNeedsNColors) {
  Graph g;
  const size_t n = 6;
  for (VertexId v = 0; v < n; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (VertexId i = 0; i < n; ++i) {
    for (VertexId j = i + 1; j < n; ++j) ASSERT_TRUE(g.AddEdge(i, j).ok());
  }
  const CsrGraph csr = CsrGraph::FromGraph(g);
  const ColoringResult r = GreedyColoring(csr);
  EXPECT_EQ(r.num_colors, n);
  EXPECT_TRUE(IsProperColoring(csr, r.color));
}

TEST(ColoringTest, StarNeedsTwoColors) {
  Graph g;
  ASSERT_TRUE(g.AddVertex(0).ok());
  for (VertexId v = 1; v <= 10; ++v) {
    ASSERT_TRUE(g.AddVertex(v).ok());
    ASSERT_TRUE(g.AddEdge(0, v).ok());
  }
  const CsrGraph csr = CsrGraph::FromGraph(g);
  const ColoringResult r = GreedyColoring(csr);
  EXPECT_EQ(r.num_colors, 2u);
  EXPECT_TRUE(IsProperColoring(csr, r.color));
}

TEST(IsProperColoringTest, DetectsViolation) {
  Graph g;
  ASSERT_TRUE(g.AddVertex(1).ok());
  ASSERT_TRUE(g.AddVertex(2).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  const CsrGraph csr = CsrGraph::FromGraph(g);
  EXPECT_FALSE(IsProperColoring(csr, {0, 0}));
  EXPECT_TRUE(IsProperColoring(csr, {0, 1}));
  EXPECT_FALSE(IsProperColoring(csr, {0}));  // wrong size
}

class RandomColoringTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomColoringTest, ProperAndBoundedByMaxDegreePlusOne) {
  Rng rng(GetParam());
  Graph g;
  const size_t n = 60;
  for (VertexId v = 0; v < n; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (int i = 0; i < 250; ++i) {
    const VertexId a = rng.NextBounded(n);
    const VertexId b = rng.NextBounded(n);
    if (a != b && !g.HasEdge(a, b)) ASSERT_TRUE(g.AddEdge(a, b).ok());
  }
  const CsrGraph csr = CsrGraph::FromGraph(g);
  const ColoringResult r = GreedyColoring(csr);
  EXPECT_TRUE(IsProperColoring(csr, r.color));
  size_t max_degree = 0;
  for (CsrGraph::Index v = 0; v < n; ++v) {
    max_degree = std::max(max_degree, csr.OutDegree(v) + csr.InDegree(v));
  }
  EXPECT_LE(r.num_colors, max_degree + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomColoringTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace graphtides
