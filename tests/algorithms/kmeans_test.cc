#include "algorithms/kmeans.h"

#include <gtest/gtest.h>

namespace graphtides {
namespace {

TEST(KMeansTest, RejectsDegenerateInputs) {
  Rng rng(1);
  EXPECT_FALSE(KMeans({}, 1, rng).ok());
  EXPECT_FALSE(KMeans({{1.0}}, 0, rng).ok());
  EXPECT_FALSE(KMeans({{1.0}}, 2, rng).ok());
  EXPECT_FALSE(KMeans({{1.0}, {1.0, 2.0}}, 1, rng).ok());  // mixed dims
}

TEST(KMeansTest, SinglePointSingleCluster) {
  Rng rng(2);
  auto r = KMeans({{3.0, 4.0}}, 1, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->assignment[0], 0u);
  EXPECT_DOUBLE_EQ(r->centroids[0][0], 3.0);
  EXPECT_DOUBLE_EQ(r->inertia, 0.0);
}

TEST(KMeansTest, SeparatesTwoObviousClusters) {
  Rng rng(3);
  std::vector<std::vector<double>> points;
  Rng noise(4);
  for (int i = 0; i < 50; ++i) {
    points.push_back({0.0 + noise.NextGaussian() * 0.1,
                      0.0 + noise.NextGaussian() * 0.1});
  }
  for (int i = 0; i < 50; ++i) {
    points.push_back({10.0 + noise.NextGaussian() * 0.1,
                      10.0 + noise.NextGaussian() * 0.1});
  }
  auto r = KMeans(points, 2, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  // All points of each half share a label, and the labels differ.
  for (int i = 1; i < 50; ++i) EXPECT_EQ(r->assignment[i], r->assignment[0]);
  for (int i = 51; i < 100; ++i) {
    EXPECT_EQ(r->assignment[i], r->assignment[50]);
  }
  EXPECT_NE(r->assignment[0], r->assignment[50]);
  // Inertia is tiny relative to the cluster separation.
  EXPECT_LT(r->inertia, 10.0);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  Rng noise(5);
  std::vector<std::vector<double>> points;
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 25; ++i) {
      points.push_back({c * 5.0 + noise.NextGaussian() * 0.2,
                        c * -3.0 + noise.NextGaussian() * 0.2});
    }
  }
  Rng rng1(6);
  Rng rng2(6);
  auto k1 = KMeans(points, 1, rng1);
  auto k4 = KMeans(points, 4, rng2);
  ASSERT_TRUE(k1.ok());
  ASSERT_TRUE(k4.ok());
  EXPECT_LT(k4->inertia, k1->inertia / 10.0);
}

TEST(KMeansTest, KEqualsNPerfectFit) {
  Rng rng(7);
  const std::vector<std::vector<double>> points = {
      {0.0}, {5.0}, {10.0}, {20.0}};
  auto r = KMeans(points, 4, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->inertia, 0.0, 1e-12);
  // All assignments distinct.
  std::set<uint32_t> labels(r->assignment.begin(), r->assignment.end());
  EXPECT_EQ(labels.size(), 4u);
}

TEST(KMeansTest, DuplicatePointsHandled) {
  Rng rng(8);
  const std::vector<std::vector<double>> points(10, {1.0, 1.0});
  auto r = KMeans(points, 3, rng);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->inertia, 0.0, 1e-12);
}

TEST(KMeansTest, DeterministicGivenSeed) {
  std::vector<std::vector<double>> points;
  Rng noise(9);
  for (int i = 0; i < 60; ++i) {
    points.push_back({noise.NextDouble() * 10, noise.NextDouble() * 10});
  }
  Rng rng_a(42);
  Rng rng_b(42);
  auto a = KMeans(points, 3, rng_a);
  auto b = KMeans(points, 3, rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
  EXPECT_DOUBLE_EQ(a->inertia, b->inertia);
}

TEST(VertexStructuralFeaturesTest, HubStandsOut) {
  // Star graph: the hub's feature vector differs strongly from leaves'.
  Graph g;
  ASSERT_TRUE(g.AddVertex(0).ok());
  for (VertexId v = 1; v <= 20; ++v) {
    ASSERT_TRUE(g.AddVertex(v).ok());
    ASSERT_TRUE(g.AddEdge(0, v).ok());
  }
  const CsrGraph csr = CsrGraph::FromGraph(g);
  const auto features = VertexStructuralFeatures(csr);
  ASSERT_EQ(features.size(), 21u);
  CsrGraph::Index hub;
  ASSERT_TRUE(csr.IndexOf(0, &hub));
  // Hub out-degree 20 vs leaves 0.
  EXPECT_GT(features[hub][0], 2.9);
  for (size_t v = 0; v < features.size(); ++v) {
    if (v != hub) EXPECT_DOUBLE_EQ(features[v][0], 0.0);
  }
}

TEST(VertexStructuralFeaturesTest, ClusteringSeparatesHubsFromLeaves) {
  // Two hubs with leaf fans; k-means over structural features should
  // separate hubs from leaves.
  Graph g;
  ASSERT_TRUE(g.AddVertex(100).ok());
  ASSERT_TRUE(g.AddVertex(200).ok());
  for (VertexId v = 0; v < 30; ++v) {
    ASSERT_TRUE(g.AddVertex(v).ok());
    ASSERT_TRUE(g.AddEdge(v < 15 ? 100 : 200, v).ok());
  }
  const CsrGraph csr = CsrGraph::FromGraph(g);
  const auto features = VertexStructuralFeatures(csr);
  Rng rng(11);
  auto r = KMeans(features, 2, rng);
  ASSERT_TRUE(r.ok());
  CsrGraph::Index hub_a;
  CsrGraph::Index hub_b;
  ASSERT_TRUE(csr.IndexOf(100, &hub_a));
  ASSERT_TRUE(csr.IndexOf(200, &hub_b));
  EXPECT_EQ(r->assignment[hub_a], r->assignment[hub_b]);
  CsrGraph::Index leaf;
  ASSERT_TRUE(csr.IndexOf(3, &leaf));
  EXPECT_NE(r->assignment[hub_a], r->assignment[leaf]);
}

}  // namespace
}  // namespace graphtides
