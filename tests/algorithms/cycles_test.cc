#include "algorithms/cycles.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace graphtides {
namespace {

TEST(CyclesTest, EmptyGraphIsAcyclic) {
  const CsrGraph csr = CsrGraph::FromGraph(Graph());
  EXPECT_FALSE(HasCycle(csr));
  EXPECT_FALSE(FindCycle(csr).has_value());
  EXPECT_TRUE(TopologicalSort(csr).has_value());
}

TEST(CyclesTest, ChainIsAcyclic) {
  Graph g;
  for (VertexId v = 0; v < 5; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (VertexId v = 0; v + 1 < 5; ++v) ASSERT_TRUE(g.AddEdge(v, v + 1).ok());
  const CsrGraph csr = CsrGraph::FromGraph(g);
  EXPECT_FALSE(HasCycle(csr));
  const auto order = TopologicalSort(csr);
  ASSERT_TRUE(order.has_value());
  for (size_t i = 0; i < order->size(); ++i) {
    EXPECT_EQ((*order)[i], i);
  }
}

TEST(CyclesTest, SimpleCycleDetected) {
  Graph g;
  for (VertexId v = 0; v < 3; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 0).ok());
  const CsrGraph csr = CsrGraph::FromGraph(g);
  EXPECT_TRUE(HasCycle(csr));
  EXPECT_FALSE(TopologicalSort(csr).has_value());
}

TEST(CyclesTest, ReciprocalEdgesAreACycle) {
  Graph g;
  ASSERT_TRUE(g.AddVertex(1).ok());
  ASSERT_TRUE(g.AddVertex(2).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 1).ok());
  EXPECT_TRUE(HasCycle(CsrGraph::FromGraph(g)));
}

TEST(CyclesTest, UndirectedStyleTreeIsAcyclicDirected) {
  // Directed edges all away from the root: no directed cycle.
  Graph g;
  for (VertexId v = 0; v < 7; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (VertexId v = 1; v < 7; ++v) {
    ASSERT_TRUE(g.AddEdge((v - 1) / 2, v).ok());
  }
  EXPECT_FALSE(HasCycle(CsrGraph::FromGraph(g)));
}

TEST(FindCycleTest, ReturnedCycleIsValid) {
  Graph g;
  for (VertexId v = 0; v < 6; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  ASSERT_TRUE(g.AddEdge(3, 1).ok());  // cycle 1-2-3-1
  ASSERT_TRUE(g.AddEdge(0, 4).ok());
  const CsrGraph csr = CsrGraph::FromGraph(g);
  const auto cycle = FindCycle(csr);
  ASSERT_TRUE(cycle.has_value());
  ASSERT_GE(cycle->size(), 3u);
  EXPECT_EQ(cycle->front(), cycle->back());
  // Every consecutive pair must be a real edge.
  for (size_t i = 0; i + 1 < cycle->size(); ++i) {
    const auto out = csr.OutNeighbors((*cycle)[i]);
    EXPECT_TRUE(std::find(out.begin(), out.end(), (*cycle)[i + 1]) !=
                out.end())
        << "missing edge " << (*cycle)[i] << "->" << (*cycle)[i + 1];
  }
}

TEST(TopologicalSortTest, RespectsAllEdges) {
  Rng rng(41);
  // Random DAG: edges only from lower to higher id.
  Graph g;
  const size_t n = 40;
  for (VertexId v = 0; v < n; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (int i = 0; i < 150; ++i) {
    VertexId a = rng.NextBounded(n);
    VertexId b = rng.NextBounded(n);
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    if (!g.HasEdge(a, b)) ASSERT_TRUE(g.AddEdge(a, b).ok());
  }
  const CsrGraph csr = CsrGraph::FromGraph(g);
  const auto order = TopologicalSort(csr);
  ASSERT_TRUE(order.has_value());
  std::vector<size_t> position(n);
  for (size_t i = 0; i < order->size(); ++i) position[(*order)[i]] = i;
  for (CsrGraph::Index v = 0; v < n; ++v) {
    for (CsrGraph::Index w : csr.OutNeighbors(v)) {
      EXPECT_LT(position[v], position[w]);
    }
  }
}

TEST(FindCycleTest, AgreesWithHasCycleOnRandomGraphs) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    Graph g;
    const size_t n = 25;
    for (VertexId v = 0; v < n; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
    const int edges = static_cast<int>(rng.NextBounded(60));
    for (int i = 0; i < edges; ++i) {
      const VertexId a = rng.NextBounded(n);
      const VertexId b = rng.NextBounded(n);
      if (a != b && !g.HasEdge(a, b)) ASSERT_TRUE(g.AddEdge(a, b).ok());
    }
    const CsrGraph csr = CsrGraph::FromGraph(g);
    EXPECT_EQ(HasCycle(csr), FindCycle(csr).has_value()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace graphtides
