#include "sim/network.h"

#include <gtest/gtest.h>

namespace graphtides {
namespace {

TEST(SimLinkTest, LatencyOnlyDelivery) {
  Simulator sim;
  SimLinkOptions options;
  options.latency = Duration::FromMillis(5);
  options.bandwidth_bps = 0;  // infinite
  SimLink link(&sim, "l", options);
  Timestamp delivered;
  link.Send(1000, [&] { delivered = sim.Now(); });
  sim.RunUntilIdle();
  EXPECT_EQ(delivered.millis(), 5);
}

TEST(SimLinkTest, TransmissionTimeFromBandwidth) {
  Simulator sim;
  SimLinkOptions options;
  options.latency = Duration::Zero();
  options.bandwidth_bps = 1000;  // 1000 bytes/s
  SimLink link(&sim, "l", options);
  Timestamp delivered;
  link.Send(500, [&] { delivered = sim.Now(); });  // 0.5 s tx
  sim.RunUntilIdle();
  EXPECT_EQ(delivered.millis(), 500);
}

TEST(SimLinkTest, TransmissionsSerialized) {
  Simulator sim;
  SimLinkOptions options;
  options.latency = Duration::FromMillis(1);
  options.bandwidth_bps = 1000;
  SimLink link(&sim, "l", options);
  std::vector<int64_t> arrivals;
  // Two 500-byte messages: tx 0.5 s each, serialized, each + 1 ms latency.
  link.Send(500, [&] { arrivals.push_back(sim.Now().millis()); });
  link.Send(500, [&] { arrivals.push_back(sim.Now().millis()); });
  sim.RunUntilIdle();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 501);
  EXPECT_EQ(arrivals[1], 1001);
}

TEST(SimLinkTest, InOrderDelivery) {
  Simulator sim;
  SimLink link(&sim, "l");
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    link.Send(100, [&order, i] { order.push_back(i); });
  }
  sim.RunUntilIdle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimLinkTest, CountersAndBacklog) {
  Simulator sim;
  SimLinkOptions options;
  options.latency = Duration::Zero();
  options.bandwidth_bps = 1000;
  SimLink link(&sim, "l", options);
  link.Send(1000, [] {});
  link.Send(1000, [] {});
  EXPECT_EQ(link.messages_sent(), 2u);
  EXPECT_EQ(link.bytes_sent(), 2000u);
  EXPECT_EQ(link.Backlog().millis(), 2000);
  sim.RunUntilIdle();
  EXPECT_EQ(link.Backlog(), Duration::Zero());
}

TEST(SimLinkTest, GigabitDefaultsAreFast) {
  Simulator sim;
  SimLink link(&sim, "l");  // defaults: 100 us latency, 1 GigE
  Timestamp delivered;
  link.Send(1500, [&] { delivered = sim.Now(); });
  sim.RunUntilIdle();
  // 1500 B / 125 MB/s = 12 us, + 100 us latency.
  EXPECT_EQ(delivered.micros(), 112);
}

}  // namespace
}  // namespace graphtides
