#include "sim/virtual_replayer.h"

#include <gtest/gtest.h>

namespace graphtides {
namespace {

std::vector<Event> VertexStream(size_t n) {
  std::vector<Event> events;
  for (VertexId v = 0; v < n; ++v) events.push_back(Event::AddVertex(v));
  return events;
}

TEST(VirtualReplayerTest, UniformSpacingAtBaseRate) {
  Simulator sim;
  VirtualReplayerOptions options;
  options.base_rate_eps = 1000.0;  // 1 ms apart
  VirtualReplayer replayer(&sim, options);
  std::vector<int64_t> times;
  replayer.Start(VertexStream(5),
                 [&](const Event&, size_t) { times.push_back(sim.Now().micros()); });
  sim.RunUntilIdle();
  EXPECT_EQ(times, (std::vector<int64_t>{0, 1000, 2000, 3000, 4000}));
  EXPECT_TRUE(replayer.finished());
  EXPECT_EQ(replayer.events_delivered(), 5u);
}

TEST(VirtualReplayerTest, PauseShiftsSubsequentEvents) {
  Simulator sim;
  VirtualReplayerOptions options;
  options.base_rate_eps = 1000.0;
  VirtualReplayer replayer(&sim, options);
  std::vector<Event> events = VertexStream(4);
  events.insert(events.begin() + 2, Event::Pause(Duration::FromMillis(100)));
  std::vector<int64_t> times;
  replayer.Start(events,
                 [&](const Event&, size_t) { times.push_back(sim.Now().millis()); });
  sim.RunUntilIdle();
  ASSERT_EQ(times.size(), 4u);
  EXPECT_EQ(times[0], 0);
  EXPECT_EQ(times[1], 1);
  EXPECT_EQ(times[2], 102);
  EXPECT_EQ(times[3], 103);
}

TEST(VirtualReplayerTest, SetRateDoublesThroughput) {
  Simulator sim;
  VirtualReplayerOptions options;
  options.base_rate_eps = 1000.0;
  VirtualReplayer replayer(&sim, options);
  std::vector<Event> events = VertexStream(2);
  events.push_back(Event::SetRate(2.0));
  for (VertexId v = 10; v < 14; ++v) events.push_back(Event::AddVertex(v));
  std::vector<int64_t> times;
  replayer.Start(events,
                 [&](const Event&, size_t) { times.push_back(sim.Now().micros()); });
  sim.RunUntilIdle();
  ASSERT_EQ(times.size(), 6u);
  EXPECT_EQ(times[0], 0);
  EXPECT_EQ(times[1], 1000);
  // After SET_RATE 2.0: 500 us spacing.
  EXPECT_EQ(times[2], 2000);
  EXPECT_EQ(times[3], 2500);
  EXPECT_EQ(times[4], 3000);
  EXPECT_EQ(times[5], 3500);
}

TEST(VirtualReplayerTest, MarkersReportedNotDelivered) {
  Simulator sim;
  VirtualReplayer replayer(&sim, VirtualReplayerOptions{});
  std::vector<Event> events = VertexStream(3);
  events.insert(events.begin() + 1, Event::Marker("M"));
  size_t delivered = 0;
  std::vector<std::string> markers;
  replayer.Start(
      events, [&](const Event& e, size_t) {
        EXPECT_TRUE(IsGraphOp(e.type));
        ++delivered;
      },
      [&](const std::string& label) { markers.push_back(label); });
  sim.RunUntilIdle();
  EXPECT_EQ(delivered, 3u);
  EXPECT_EQ(markers, (std::vector<std::string>{"M"}));
}

TEST(VirtualReplayerTest, ControlsIgnoredWhenDisabled) {
  Simulator sim;
  VirtualReplayerOptions options;
  options.base_rate_eps = 1000.0;
  options.honor_control_events = false;
  VirtualReplayer replayer(&sim, options);
  std::vector<Event> events = VertexStream(2);
  events.insert(events.begin() + 1, Event::Pause(Duration::FromSeconds(60.0)));
  replayer.Start(events, [](const Event&, size_t) {});
  sim.RunUntilIdle();
  EXPECT_LT(sim.Now().millis(), 10);
  EXPECT_TRUE(replayer.finished());
}

TEST(VirtualReplayerTest, DoneCallbackFiresOnce) {
  Simulator sim;
  VirtualReplayer replayer(&sim, VirtualReplayerOptions{});
  int done_calls = 0;
  replayer.Start(VertexStream(10), [](const Event&, size_t) {},
                 nullptr, [&] { ++done_calls; });
  sim.RunUntilIdle();
  EXPECT_EQ(done_calls, 1);
  EXPECT_GT(replayer.finished_at().nanos(), 0);
}

TEST(VirtualReplayerTest, DeliveryTimesRecorded) {
  Simulator sim;
  VirtualReplayerOptions options;
  options.base_rate_eps = 2000.0;
  VirtualReplayer replayer(&sim, options);
  replayer.Start(VertexStream(100), [](const Event&, size_t) {});
  sim.RunUntilIdle();
  const auto& times = replayer.delivery_times();
  ASSERT_EQ(times.size(), 100u);
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_EQ((times[i] - times[i - 1]).micros(), 500);
  }
}

TEST(VirtualReplayerTest, EmptyStreamFinishesImmediately) {
  Simulator sim;
  VirtualReplayer replayer(&sim, VirtualReplayerOptions{});
  bool done = false;
  replayer.Start({}, nullptr, nullptr, [&] { done = true; });
  sim.RunUntilIdle();
  EXPECT_TRUE(done);
  EXPECT_EQ(replayer.events_delivered(), 0u);
}

TEST(VirtualReplayerTest, IndicesMatchStreamOrder) {
  Simulator sim;
  VirtualReplayer replayer(&sim, VirtualReplayerOptions{});
  std::vector<size_t> indices;
  replayer.Start(VertexStream(20),
                 [&](const Event&, size_t index) { indices.push_back(index); });
  sim.RunUntilIdle();
  for (size_t i = 0; i < indices.size(); ++i) EXPECT_EQ(indices[i], i);
}


TEST(VirtualReplayerTest, GateThrottlesEmission) {
  Simulator sim;
  VirtualReplayerOptions options;
  options.base_rate_eps = 1000.0;  // 1 ms spacing
  options.gate_backoff = Duration::FromMillis(5);
  VirtualReplayer replayer(&sim, options);
  // Gate closed until t = 50 ms.
  replayer.SetGate([&sim] { return sim.Now() >= Timestamp::FromMillis(50); });
  std::vector<int64_t> times;
  replayer.Start(VertexStream(5),
                 [&](const Event&, size_t) { times.push_back(sim.Now().millis()); });
  sim.RunUntilIdle();
  ASSERT_EQ(times.size(), 5u);
  EXPECT_GE(times[0], 50);
  // After the gate opens, pacing resumes at the base rate (no burst).
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_EQ(times[i] - times[i - 1], 1);
  }
  EXPECT_GE(replayer.throttled_time().millis(), 45);
  EXPECT_TRUE(replayer.finished());
}

TEST(VirtualReplayerTest, OpenGateIsFree) {
  Simulator sim;
  VirtualReplayerOptions options;
  options.base_rate_eps = 1000.0;
  VirtualReplayer replayer(&sim, options);
  replayer.SetGate([] { return true; });
  replayer.Start(VertexStream(10), [](const Event&, size_t) {});
  sim.RunUntilIdle();
  EXPECT_EQ(replayer.events_delivered(), 10u);
  EXPECT_EQ(replayer.throttled_time(), Duration::Zero());
}

}  // namespace
}  // namespace graphtides
