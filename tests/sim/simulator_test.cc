#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace graphtides {
namespace {

TEST(SimulatorTest, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now().nanos(), 0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, CallbacksRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(Timestamp::FromMillis(30), [&] { order.push_back(3); });
  sim.ScheduleAt(Timestamp::FromMillis(10), [&] { order.push_back(1); });
  sim.ScheduleAt(Timestamp::FromMillis(20), [&] { order.push_back(2); });
  sim.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now().millis(), 30);
}

TEST(SimulatorTest, EqualTimestampsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(Timestamp::FromMillis(5), [&order, i] {
      order.push_back(i);
    });
  }
  sim.RunUntilIdle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, ClockAdvancesToCallbackTime) {
  Simulator sim;
  Timestamp observed;
  sim.ScheduleAt(Timestamp::FromSeconds(2.5), [&] { observed = sim.Now(); });
  sim.RunUntilIdle();
  EXPECT_DOUBLE_EQ(observed.seconds(), 2.5);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  std::vector<int64_t> times;
  sim.ScheduleAt(Timestamp::FromMillis(10), [&] {
    times.push_back(sim.Now().millis());
    sim.ScheduleAfter(Duration::FromMillis(5), [&] {
      times.push_back(sim.Now().millis());
    });
  });
  sim.RunUntilIdle();
  EXPECT_EQ(times, (std::vector<int64_t>{10, 15}));
}

TEST(SimulatorTest, PastSchedulingClampsToNow) {
  Simulator sim;
  sim.ScheduleAt(Timestamp::FromMillis(10), [&] {
    // Scheduling in the past runs "immediately" (at now), not backwards.
    sim.ScheduleAt(Timestamp::FromMillis(1), [&] {
      EXPECT_EQ(sim.Now().millis(), 10);
    });
  });
  sim.RunUntilIdle();
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(Timestamp::FromMillis(10), [&] { ++ran; });
  sim.ScheduleAt(Timestamp::FromMillis(20), [&] { ++ran; });
  sim.ScheduleAt(Timestamp::FromMillis(30), [&] { ++ran; });
  sim.RunUntil(Timestamp::FromMillis(20));
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.Now().millis(), 20);
  EXPECT_EQ(sim.pending(), 1u);
  sim.RunUntilIdle();
  EXPECT_EQ(ran, 3);
}

TEST(SimulatorTest, RunUntilAdvancesClockEvenWithoutWork) {
  Simulator sim;
  sim.RunUntil(Timestamp::FromSeconds(100.0));
  EXPECT_DOUBLE_EQ(sim.Now().seconds(), 100.0);
}

TEST(SimulatorTest, StepExecutesOne) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(Timestamp::FromMillis(1), [&] { ++ran; });
  sim.ScheduleAt(Timestamp::FromMillis(2), [&] { ++ran; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(ran, 2);
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(sim.callbacks_executed(), 2u);
}

TEST(SimulatorTest, CascadingCallbacksAllRun) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) {
      sim.ScheduleAfter(Duration::FromMicros(10), recurse);
    }
  };
  sim.ScheduleAt(Timestamp(), recurse);
  sim.RunUntilIdle();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.Now().micros(), 99 * 10);
}

}  // namespace
}  // namespace graphtides
