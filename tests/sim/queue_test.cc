#include "sim/queue.h"

#include <gtest/gtest.h>

#include <string>

namespace graphtides {
namespace {

TEST(SimQueueTest, FifoSemantics) {
  SimQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(SimQueueTest, UnboundedByDefault) {
  SimQueue<int> q;
  for (int i = 0; i < 100000; ++i) EXPECT_TRUE(q.Push(i));
  EXPECT_EQ(q.size(), 100000u);
  EXPECT_EQ(q.rejected(), 0u);
  EXPECT_FALSE(q.Full());
}

TEST(SimQueueTest, BoundedRejectsWhenFull) {
  SimQueue<int> q(3);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.Push(3));
  EXPECT_TRUE(q.Full());
  EXPECT_FALSE(q.Push(4));
  EXPECT_EQ(q.rejected(), 1u);
  EXPECT_EQ(q.size(), 3u);
  q.Pop();
  EXPECT_FALSE(q.Full());
  EXPECT_TRUE(q.Push(4));
}

TEST(SimQueueTest, PeakTracksHighWaterMark) {
  SimQueue<int> q;
  for (int i = 0; i < 10; ++i) q.Push(i);
  for (int i = 0; i < 8; ++i) q.Pop();
  for (int i = 0; i < 3; ++i) q.Push(i);
  EXPECT_EQ(q.peak_size(), 10u);
  EXPECT_EQ(q.size(), 5u);
}

TEST(SimQueueTest, MoveOnlyPayload) {
  SimQueue<std::unique_ptr<std::string>> q;
  q.Push(std::make_unique<std::string>("x"));
  auto v = q.Pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, "x");
}

}  // namespace
}  // namespace graphtides
