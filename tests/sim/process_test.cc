#include "sim/process.h"

#include <gtest/gtest.h>

namespace graphtides {
namespace {

TEST(SimProcessTest, WorkCompletesAfterCost) {
  Simulator sim;
  SimProcess proc(&sim, "p");
  Timestamp done;
  proc.Submit(Duration::FromMillis(10), [&] { done = sim.Now(); });
  sim.RunUntilIdle();
  EXPECT_EQ(done.millis(), 10);
  EXPECT_EQ(proc.total_busy().millis(), 10);
}

TEST(SimProcessTest, WorkIsSerialized) {
  Simulator sim;
  SimProcess proc(&sim, "p");
  std::vector<int64_t> completions;
  for (int i = 0; i < 3; ++i) {
    proc.Submit(Duration::FromMillis(10),
                [&] { completions.push_back(sim.Now().millis()); });
  }
  sim.RunUntilIdle();
  EXPECT_EQ(completions, (std::vector<int64_t>{10, 20, 30}));
}

TEST(SimProcessTest, BacklogReflectsQueuedWork) {
  Simulator sim;
  SimProcess proc(&sim, "p");
  EXPECT_EQ(proc.Backlog(), Duration::Zero());
  proc.Submit(Duration::FromMillis(10), [] {});
  proc.Submit(Duration::FromMillis(5), [] {});
  EXPECT_EQ(proc.Backlog().millis(), 15);
  sim.RunUntilIdle();
  EXPECT_EQ(proc.Backlog(), Duration::Zero());
}

TEST(SimProcessTest, LaterSubmissionStartsAtNow) {
  Simulator sim;
  SimProcess proc(&sim, "p");
  proc.Submit(Duration::FromMillis(10), [] {});
  sim.RunUntilIdle();
  sim.RunUntil(Timestamp::FromMillis(100));
  Timestamp done;
  proc.Submit(Duration::FromMillis(5), [&] { done = sim.Now(); });
  sim.RunUntilIdle();
  EXPECT_EQ(done.millis(), 105);
  // Idle gap (10..100 ms) is not accounted as busy.
  EXPECT_EQ(proc.total_busy().millis(), 15);
}

TEST(SimProcessTest, UtilizationFullySaturated) {
  Simulator sim;
  SimProcess proc(&sim, "p", Duration::FromSeconds(1.0));
  // 5 seconds of back-to-back work.
  for (int i = 0; i < 5; ++i) {
    proc.Submit(Duration::FromSeconds(1.0), [] {});
  }
  sim.RunUntilIdle();
  const auto series = proc.UtilizationSeries(Timestamp::FromSeconds(5.0));
  ASSERT_EQ(series.size(), 5u);
  for (double u : series) EXPECT_NEAR(u, 1.0, 1e-9);
}

TEST(SimProcessTest, UtilizationPartialLoad) {
  Simulator sim;
  SimProcess proc(&sim, "p", Duration::FromSeconds(1.0));
  // 0.3 s of work at the start of each of 4 seconds.
  for (int s = 0; s < 4; ++s) {
    sim.ScheduleAt(Timestamp::FromSeconds(s), [&] {
      proc.Submit(Duration::FromMillis(300), [] {});
    });
  }
  sim.RunUntilIdle();
  const auto series = proc.UtilizationSeries(Timestamp::FromSeconds(4.0));
  ASSERT_EQ(series.size(), 4u);
  for (double u : series) EXPECT_NEAR(u, 0.3, 1e-9);
}

TEST(SimProcessTest, BusyIntervalSpanningBins) {
  Simulator sim;
  SimProcess proc(&sim, "p", Duration::FromSeconds(1.0));
  sim.ScheduleAt(Timestamp::FromMillis(500), [&] {
    proc.Submit(Duration::FromSeconds(1.0), [] {});  // spans 0.5..1.5 s
  });
  sim.RunUntilIdle();
  const auto series = proc.UtilizationSeries(Timestamp::FromSeconds(2.0));
  ASSERT_EQ(series.size(), 2u);
  EXPECT_NEAR(series[0], 0.5, 1e-9);
  EXPECT_NEAR(series[1], 0.5, 1e-9);
}

TEST(SimProcessTest, UtilizationSeriesEmptyBeforeEpoch) {
  Simulator sim;
  sim.RunUntil(Timestamp::FromSeconds(10.0));
  SimProcess proc(&sim, "p");
  EXPECT_TRUE(proc.UtilizationSeries(Timestamp::FromSeconds(5.0)).empty());
}

TEST(SimProcessTest, CompletionCallbacksInterleaveCorrectly) {
  // Two processes run independently; a third submission chains off a
  // completion.
  Simulator sim;
  SimProcess a(&sim, "a");
  SimProcess b(&sim, "b");
  std::vector<std::string> log;
  a.Submit(Duration::FromMillis(10), [&] {
    log.push_back("a@" + std::to_string(sim.Now().millis()));
    b.Submit(Duration::FromMillis(10), [&] {
      log.push_back("b@" + std::to_string(sim.Now().millis()));
    });
  });
  b.Submit(Duration::FromMillis(4), [&] {
    log.push_back("b0@" + std::to_string(sim.Now().millis()));
  });
  sim.RunUntilIdle();
  EXPECT_EQ(log, (std::vector<std::string>{"b0@4", "a@10", "b@20"}));
}

TEST(SimProcessTest, KillSuppressesInFlightCompletions) {
  Simulator sim;
  SimProcess proc(&sim, "p");
  int completed = 0;
  proc.Submit(Duration::FromMillis(10), [&] { ++completed; });
  proc.Submit(Duration::FromMillis(10), [&] { ++completed; });
  sim.ScheduleAt(Timestamp::FromMillis(5), [&] { proc.Kill(); });
  sim.RunUntilIdle();
  EXPECT_EQ(completed, 0);
  EXPECT_FALSE(proc.alive());
  EXPECT_EQ(proc.kills(), 1u);
}

TEST(SimProcessTest, SubmissionsToDeadProcessAreDropped) {
  Simulator sim;
  SimProcess proc(&sim, "p");
  proc.Kill();
  int completed = 0;
  proc.Submit(Duration::FromMillis(10), [&] { ++completed; });
  proc.Submit(Duration::FromMillis(10), [&] { ++completed; });
  sim.RunUntilIdle();
  EXPECT_EQ(completed, 0);
  EXPECT_EQ(proc.lost_submissions(), 2u);
}

TEST(SimProcessTest, RecoverAcceptsNewWorkWithEmptyQueue) {
  Simulator sim;
  SimProcess proc(&sim, "p");
  // 100ms of queued work, killed at 5ms: the backlog must not delay work
  // submitted after recovery.
  for (int i = 0; i < 10; ++i) proc.Submit(Duration::FromMillis(10), [] {});
  sim.ScheduleAt(Timestamp::FromMillis(5), [&] { proc.Kill(); });
  sim.ScheduleAt(Timestamp::FromMillis(25), [&] { proc.Recover(); });
  Timestamp done;
  sim.ScheduleAt(Timestamp::FromMillis(30), [&] {
    proc.Submit(Duration::FromMillis(10), [&] { done = sim.Now(); });
  });
  sim.RunUntilIdle();
  EXPECT_TRUE(proc.alive());
  EXPECT_EQ(done.millis(), 40);
  EXPECT_EQ(proc.downtime().millis(), 20);
}

TEST(SimProcessTest, KillRollsBackChargedUtilization) {
  Simulator sim;
  SimProcess proc(&sim, "p", Duration::FromSeconds(1.0));
  // 4s of work charged at submit time; killed at 1s — only the first
  // second was actually spent.
  for (int i = 0; i < 4; ++i) proc.Submit(Duration::FromSeconds(1.0), [] {});
  sim.ScheduleAt(Timestamp::FromSeconds(1.0), [&] { proc.Kill(); });
  sim.RunUntilIdle();
  EXPECT_EQ(proc.total_busy().millis(), 1000);
  const auto series = proc.UtilizationSeries(Timestamp::FromSeconds(4.0));
  ASSERT_EQ(series.size(), 4u);
  EXPECT_NEAR(series[0], 1.0, 1e-9);
  EXPECT_NEAR(series[1], 0.0, 1e-9);
  EXPECT_NEAR(series[2], 0.0, 1e-9);
  EXPECT_NEAR(series[3], 0.0, 1e-9);
}

TEST(SimProcessTest, WorkAfterRecoveryCompletesNormally) {
  Simulator sim;
  SimProcess proc(&sim, "p");
  int pre = 0;
  int post = 0;
  proc.Submit(Duration::FromMillis(10), [&] { ++pre; });
  proc.Kill();
  proc.Recover();
  proc.Submit(Duration::FromMillis(10), [&] { ++post; });
  sim.RunUntilIdle();
  // The pre-kill completion was suppressed by the generation bump; the
  // post-recovery one ran.
  EXPECT_EQ(pre, 0);
  EXPECT_EQ(post, 1);
  EXPECT_EQ(proc.lost_submissions(), 0u);
}

TEST(SimProcessTest, KillAndRecoverAreIdempotent) {
  Simulator sim;
  SimProcess proc(&sim, "p");
  proc.Recover();  // no-op while alive
  EXPECT_TRUE(proc.alive());
  proc.Kill();
  proc.Kill();  // no-op while dead
  EXPECT_EQ(proc.kills(), 1u);
  proc.Recover();
  EXPECT_TRUE(proc.alive());
}

}  // namespace
}  // namespace graphtides
