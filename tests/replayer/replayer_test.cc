#include "replayer/replayer.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "stream/stream_file.h"

namespace graphtides {
namespace {

std::vector<Event> VertexStream(size_t n) {
  std::vector<Event> events;
  for (VertexId v = 0; v < n; ++v) events.push_back(Event::AddVertex(v));
  return events;
}

TEST(ReplayerTest, DeliversAllEventsInOrder) {
  ReplayerOptions options;
  options.base_rate_eps = 1e6;
  StreamReplayer replayer(options);
  std::vector<VertexId> seen;
  CallbackSink sink([&](const Event& e) {
    seen.push_back(e.vertex);
    return Status::OK();
  });
  auto stats = replayer.Replay(VertexStream(1000), &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->events_delivered, 1000u);
  ASSERT_EQ(seen.size(), 1000u);
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(ReplayerTest, MarkersLoggedNotDelivered) {
  ReplayerOptions options;
  options.base_rate_eps = 1e6;
  StreamReplayer replayer(options);
  std::vector<Event> events = VertexStream(10);
  events.insert(events.begin() + 5, Event::Marker("HALFWAY"));
  events.push_back(Event::Marker("END"));
  size_t delivered = 0;
  CallbackSink sink([&](const Event& e) {
    EXPECT_NE(e.type, EventType::kMarker);
    ++delivered;
    return Status::OK();
  });
  auto stats = replayer.Replay(events, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(delivered, 10u);
  EXPECT_EQ(stats->markers, 2u);
  ASSERT_EQ(stats->marker_log.size(), 2u);
  EXPECT_EQ(stats->marker_log[0].label, "HALFWAY");
  EXPECT_EQ(stats->marker_log[0].events_before, 5u);
  EXPECT_EQ(stats->marker_log[1].label, "END");
  EXPECT_EQ(stats->marker_log[1].events_before, 10u);
  EXPECT_LE(stats->marker_log[0].time, stats->marker_log[1].time);
}

TEST(ReplayerTest, AchievesTargetRateApproximately) {
  ReplayerOptions options;
  options.base_rate_eps = 20000.0;
  StreamReplayer replayer(options);
  NullSink sink;
  auto stats = replayer.Replay(VertexStream(4000), &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_NEAR(stats->AchievedRateEps(), 20000.0, 3000.0);
}

TEST(ReplayerTest, PauseControlDelaysStream) {
  ReplayerOptions options;
  options.base_rate_eps = 1e6;
  StreamReplayer replayer(options);
  std::vector<Event> events = VertexStream(10);
  events.insert(events.begin() + 5, Event::Pause(Duration::FromMillis(50)));
  NullSink sink;
  auto stats = replayer.Replay(events, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->controls, 1u);
  EXPECT_GE(stats->Elapsed().millis(), 50);
}

TEST(ReplayerTest, SetRateControlChangesThroughput) {
  // 1000 events at 100k eps (10 ms), then SET_RATE 0.1 -> 100 more events
  // at 10k eps (10 ms). Without the control the run would take ~11 ms.
  ReplayerOptions options;
  options.base_rate_eps = 100000.0;
  StreamReplayer replayer(options);
  std::vector<Event> events = VertexStream(1000);
  events.push_back(Event::SetRate(0.1));
  for (VertexId v = 0; v < 100; ++v) {
    events.push_back(Event::AddVertex(10000 + v));
  }
  NullSink sink;
  auto stats = replayer.Replay(events, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->Elapsed().millis(), 18);
}

TEST(ReplayerTest, ControlsIgnoredWhenDisabled) {
  ReplayerOptions options;
  options.base_rate_eps = 1e6;
  options.honor_control_events = false;
  StreamReplayer replayer(options);
  std::vector<Event> events = VertexStream(10);
  events.insert(events.begin() + 2, Event::Pause(Duration::FromSeconds(5.0)));
  NullSink sink;
  auto stats = replayer.Replay(events, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats->Elapsed().millis(), 1000);
  EXPECT_EQ(stats->controls, 1u);  // counted but not honored
}

TEST(ReplayerTest, SinkErrorAbortsRun) {
  ReplayerOptions options;
  options.base_rate_eps = 1e6;
  StreamReplayer replayer(options);
  size_t delivered = 0;
  CallbackSink sink([&](const Event&) -> Status {
    if (++delivered == 50) return Status::IoError("sink broke");
    return Status::OK();
  });
  auto stats = replayer.Replay(VertexStream(100000), &sink);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsIoError());
  EXPECT_EQ(delivered, 50u);
}

TEST(ReplayerTest, RateSeriesAccountsForAllEvents) {
  ReplayerOptions options;
  options.base_rate_eps = 100000.0;
  options.stats_bin = Duration::FromMillis(10);
  StreamReplayer replayer(options);
  NullSink sink;
  auto stats = replayer.Replay(VertexStream(5000), &sink);
  ASSERT_TRUE(stats.ok());
  size_t total = 0;
  for (const RateSample& sample : stats->rate_series) total += sample.events;
  EXPECT_EQ(total, 5000u);
  EXPECT_GE(stats->rate_series.size(), 4u);
}

TEST(ReplayerTest, ReplayFileStreamsFromDisk) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("gt_replay_" + std::to_string(::getpid()) + ".gts"))
          .string();
  std::vector<Event> events = VertexStream(500);
  events.push_back(Event::Marker("EOF_MARK"));
  ASSERT_TRUE(WriteStreamFile(path, events).ok());

  ReplayerOptions options;
  options.base_rate_eps = 1e6;
  StreamReplayer replayer(options);
  size_t delivered = 0;
  CallbackSink sink([&](const Event&) {
    ++delivered;
    return Status::OK();
  });
  auto stats = replayer.ReplayFile(path, &sink);
  std::filesystem::remove(path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(delivered, 500u);
  EXPECT_EQ(stats->markers, 1u);
}

TEST(ReplayerTest, ReplayMissingFileFails) {
  StreamReplayer replayer(ReplayerOptions{});
  NullSink sink;
  auto stats = replayer.ReplayFile("/nonexistent/file.gts", &sink);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsIoError());
}

TEST(ReplayerTest, EmptyStreamFinishesCleanly) {
  StreamReplayer replayer(ReplayerOptions{});
  NullSink sink;
  auto stats = replayer.Replay({}, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->events_delivered, 0u);
}

TEST(ReplayerTest, QueueSmallerThanStreamStillDeliversAll) {
  ReplayerOptions options;
  options.base_rate_eps = 1e6;
  options.queue_capacity = 16;  // force reader/emitter handoff pressure
  StreamReplayer replayer(options);
  size_t delivered = 0;
  CallbackSink sink([&](const Event&) {
    ++delivered;
    return Status::OK();
  });
  auto stats = replayer.Replay(VertexStream(10000), &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(delivered, 10000u);
}

}  // namespace
}  // namespace graphtides
