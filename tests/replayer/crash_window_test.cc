// Crash-window tests: a real fork()ed child runs a replay over file sinks
// with an armed FaultPlan, SIGKILLs itself inside a named crash window,
// and the parent resumes from the last good checkpoint generation —
// truncating each output file to its checkpointed byte offset first. The
// concatenated bytes must equal an uninterrupted golden run: the
// exactly-once contract, proven against an actual process death rather
// than a cooperative stop.
//
// Windows covered:
//   post-delivery          between a sink ack and the accounting update
//   pre-checkpoint-rename  between quiesced-checkpoint write and publish
//   epoch-barrier          inside a cross-shard barrier completion
//
// Note: raw fork(), not gtest death tests — the child must run the real
// replayer (threads and all) and die by SIGKILL, not by exit(). The
// fixture name deliberately avoids the TSan CI job's suite filter; fork
// in an instrumented multi-threaded parent is out of scope there.
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_plan.h"
#include "replayer/checkpoint.h"
#include "replayer/event_sink.h"
#include "replayer/replayer.h"
#include "replayer/sharded_replayer.h"
#include "stream/event.h"
#include "stream/stream_file.h"

namespace graphtides {
namespace {

class CrashWindowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gt_crash_window_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    stream_path_ = Path("stream.gts");
    std::vector<Event> events;
    for (size_t i = 0; i < 2000; ++i) {
      if (i > 0 && i % 400 == 0) {
        events.push_back(Event::Marker("m" + std::to_string(i)));
      }
      events.push_back(Event::AddVertex(static_cast<VertexId>(i),
                                        "p" + std::to_string(i)));
    }
    ASSERT_TRUE(WriteStreamFile(stream_path_, events).ok());
  }
  void TearDown() override {
    FaultPlan::Global().Reset();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static std::string ReadAll(const std::string& path) {
    std::ifstream file(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
  }

  std::string ShardPath(const std::string& prefix, size_t shards,
                        size_t s) const {
    return shards == 1 ? prefix : prefix + ".shard" + std::to_string(s);
  }

  /// Runs one replay over per-shard PipeSink files, in this process.
  /// Returns the replay status.
  Status RunReplay(const std::string& out_prefix, size_t shards,
                   const std::string& checkpoint_path,
                   const ReplayCheckpoint* resume) {
    std::vector<std::FILE*> files;
    std::vector<std::unique_ptr<PipeSink>> sinks;
    std::vector<EventSink*> sink_ptrs;
    for (size_t s = 0; s < shards; ++s) {
      std::FILE* f = std::fopen(ShardPath(out_prefix, shards, s).c_str(),
                                resume != nullptr ? "ab" : "wb");
      if (f == nullptr) return Status::IoError("open " + out_prefix);
      files.push_back(f);
      sinks.push_back(std::make_unique<PipeSink>(f));
      sink_ptrs.push_back(sinks.back().get());
    }
    const bool checkpointing = !checkpoint_path.empty();
    Status status;
    if (shards == 1) {
      ReplayerOptions options;
      options.base_rate_eps = 1e6;
      if (checkpointing) {
        options.checkpoint_path = checkpoint_path;
        options.checkpoint_every = 300;
        options.checkpoint_generations = 3;
        options.record_sink_bytes = true;
      }
      StreamReplayer replayer(options);
      status = replayer.ReplayFile(stream_path_, sink_ptrs[0], resume)
                   .status();
    } else {
      ShardedReplayerOptions options;
      options.shards = shards;
      options.total_rate_eps = 4e6;
      if (checkpointing) {
        options.checkpoint_path = checkpoint_path;
        options.checkpoint_every = 300;
        options.checkpoint_generations = 3;
        options.record_sink_bytes = true;
      }
      ShardedReplayer replayer(options);
      status = replayer.ReplayFile(stream_path_, sink_ptrs, resume).status();
    }
    for (std::FILE* f : files) std::fclose(f);
    return status;
  }

  /// Fork a child that arms `fault_spec` and runs the replay; it must die
  /// by SIGKILL inside the armed window. stdio is not flushed by the kill,
  /// exactly like a real crash.
  void RunCrashingChild(const std::string& fault_spec,
                        const std::string& out_prefix, size_t shards,
                        const std::string& checkpoint_path) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: no gtest reporting, no exit handlers — arm, replay, die.
      if (!FaultPlan::Global().Configure(fault_spec).ok()) ::_exit(3);
      (void)RunReplay(out_prefix, shards, checkpoint_path, nullptr);
      // Reaching here means the crash point never fired.
      ::_exit(4);
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus))
        << "child did not die by signal (status " << wstatus << ")";
    EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);
  }

  /// Load newest good generation, truncate outputs to the checkpointed
  /// byte offsets, resume in-process, and require byte equality with the
  /// golden run for every lane.
  void ResumeAndVerify(const std::string& out_prefix, size_t shards,
                       const std::string& checkpoint_path,
                       const std::string& golden_prefix) {
    auto loaded = CheckpointStore::LoadLatestGood(checkpoint_path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_EQ(loaded->checkpoint.sink_bytes.size(), shards);
    for (size_t s = 0; s < shards; ++s) {
      const std::string path = ShardPath(out_prefix, shards, s);
      struct ::stat file_stat {};
      ASSERT_EQ(::stat(path.c_str(), &file_stat), 0);
      // The crash may have delivered past the checkpoint (and lost tail
      // bytes to the stdio buffer): the file is only guaranteed to hold at
      // least the checkpointed prefix.
      ASSERT_GE(static_cast<uint64_t>(file_stat.st_size),
                loaded->checkpoint.sink_bytes[s]);
      ASSERT_EQ(::truncate(path.c_str(),
                           static_cast<off_t>(
                               loaded->checkpoint.sink_bytes[s])),
                0);
    }
    ASSERT_TRUE(RunReplay(out_prefix, shards, checkpoint_path,
                          &loaded->checkpoint)
                    .ok());
    for (size_t s = 0; s < shards; ++s) {
      EXPECT_EQ(ReadAll(ShardPath(out_prefix, shards, s)),
                ReadAll(ShardPath(golden_prefix, shards, s)))
          << "lane " << s;
    }
  }

  void RunGolden(const std::string& prefix, size_t shards) {
    const Status status = RunReplay(prefix, shards, "", nullptr);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }

  std::filesystem::path dir_;
  std::string stream_path_;
};

TEST_F(CrashWindowTest, SingleShardKilledBetweenSinkAckAndAccounting) {
  RunGolden(Path("golden"), 1);
  // Die after the 1000th delivery was acked but before it was counted:
  // the checkpointed accounting must still be exactly-once on resume.
  RunCrashingChild("crash=post-delivery:1000", Path("out"), 1, Path("cp"));
  ResumeAndVerify(Path("out"), 1, Path("cp"), Path("golden"));
}

TEST_F(CrashWindowTest, SingleShardKilledBeforeCheckpointRename) {
  RunGolden(Path("golden"), 1);
  // Die between the quiesced checkpoint write and its rename publish: the
  // durable state is the *previous* generation, and the resume must not
  // double-deliver anything the unpublished record counted.
  RunCrashingChild("crash=pre-checkpoint-rename:3", Path("out"), 1,
                   Path("cp"));
  ResumeAndVerify(Path("out"), 1, Path("cp"), Path("golden"));
}

TEST_F(CrashWindowTest, ShardedKilledBeforeCheckpointRename) {
  constexpr size_t kShards = 4;
  RunGolden(Path("golden4"), kShards);
  RunCrashingChild("crash=pre-checkpoint-rename:2", Path("out4"), kShards,
                   Path("cp4"));
  ResumeAndVerify(Path("out4"), kShards, Path("cp4"), Path("golden4"));
}

TEST_F(CrashWindowTest, ShardedKilledInsideEpochBarrier) {
  constexpr size_t kShards = 4;
  RunGolden(Path("goldenb"), kShards);
  // Die during a cross-shard barrier completion, all lanes quiesced: the
  // per-lane byte offsets in the last published checkpoint must still
  // reconstruct every lane exactly-once.
  RunCrashingChild("crash=epoch-barrier:3", Path("outb"), kShards,
                   Path("cpb"));
  ResumeAndVerify(Path("outb"), kShards, Path("cpb"), Path("goldenb"));
}

TEST_F(CrashWindowTest, TornCheckpointPublishFallsBackAGeneration) {
  RunGolden(Path("goldent"), 1);
  // The checkpoint being published is torn to a seeded fraction before the
  // kill: resume must reject it and fall back to the intact ancestor.
  RunCrashingChild("torn=pre-checkpoint-rename:3,seed=5", Path("outt"), 1,
                   Path("cpt"));
  auto loaded = CheckpointStore::LoadLatestGood(Path("cpt"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GE(loaded->fallbacks, 1u);
  EXPECT_FALSE(loaded->rejected.empty());
  ResumeAndVerify(Path("outt"), 1, Path("cpt"), Path("goldent"));
}

}  // namespace
}  // namespace graphtides
