#include "replayer/tcp.h"

#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "replayer/replayer.h"
#include "stream/event.h"

namespace graphtides {
namespace {

TEST(TcpTest, SinkDeliversLinesToServer) {
  TcpLineServer server;
  std::mutex mu;
  std::vector<std::string> lines;
  auto port = server.Start([&](std::string_view line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.emplace_back(line);
  });
  ASSERT_TRUE(port.ok());

  TcpSink sink;
  ASSERT_TRUE(sink.Connect("127.0.0.1", *port).ok());
  ASSERT_TRUE(sink.Deliver(Event::AddVertex(1, "a")).ok());
  ASSERT_TRUE(sink.Deliver(Event::AddEdge(1, 2, "b")).ok());
  ASSERT_TRUE(sink.Finish().ok());
  server.Join();

  ASSERT_EQ(server.lines_received(), 2u);
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(lines[0], "CREATE_VERTEX,1,a");
  EXPECT_EQ(lines[1], "CREATE_EDGE,1-2,b");
}

TEST(TcpTest, LinesParseBackToEvents) {
  TcpLineServer server;
  std::mutex mu;
  std::vector<Event> received;
  auto port = server.Start([&](std::string_view line) {
    auto parsed = ParseEventLine(line);
    ASSERT_TRUE(parsed.ok());
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(std::move(parsed).value());
  });
  ASSERT_TRUE(port.ok());

  std::vector<Event> sent;
  for (VertexId v = 0; v < 100; ++v) sent.push_back(Event::AddVertex(v));
  TcpSink sink;
  ASSERT_TRUE(sink.Connect("localhost", *port).ok());
  for (const Event& e : sent) ASSERT_TRUE(sink.Deliver(e).ok());
  ASSERT_TRUE(sink.Finish().ok());
  server.Join();

  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(received, sent);
}

TEST(TcpTest, ReplayerOverTcpEndToEnd) {
  TcpLineServer server;
  auto port = server.Start(nullptr);
  ASSERT_TRUE(port.ok());

  std::vector<Event> events;
  for (VertexId v = 0; v < 5000; ++v) events.push_back(Event::AddVertex(v));

  TcpSink sink;
  ASSERT_TRUE(sink.Connect("127.0.0.1", *port).ok());
  ReplayerOptions options;
  options.base_rate_eps = 200000.0;
  StreamReplayer replayer(options);
  auto stats = replayer.Replay(events, &sink);
  ASSERT_TRUE(stats.ok());
  server.Join();
  EXPECT_EQ(stats->events_delivered, 5000u);
  EXPECT_EQ(server.lines_received(), 5000u);
}

TEST(TcpTest, ConnectToClosedPortFails) {
  TcpSink sink;
  // Port 1 on loopback is essentially never listening.
  const Status st = sink.Connect("127.0.0.1", 1);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(sink.connected());
}

TEST(TcpTest, InvalidAddressRejected) {
  TcpSink sink;
  EXPECT_TRUE(sink.Connect("not-a-host-name", 8080).IsInvalidArgument());
}

TEST(TcpTest, DeliverWithoutConnectFails) {
  TcpSink sink;
  EXPECT_TRUE(sink.Deliver(Event::AddVertex(1)).IsPreconditionFailed());
}

TEST(TcpTest, FinishIdempotent) {
  TcpLineServer server;
  auto port = server.Start(nullptr);
  ASSERT_TRUE(port.ok());
  TcpSink sink;
  ASSERT_TRUE(sink.Connect("127.0.0.1", *port).ok());
  ASSERT_TRUE(sink.Deliver(Event::AddVertex(1)).ok());
  EXPECT_TRUE(sink.Finish().ok());
  EXPECT_TRUE(sink.Finish().ok());
  server.Join();
}

}  // namespace
}  // namespace graphtides
