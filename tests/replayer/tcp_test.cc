#include "replayer/tcp.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "replayer/replayer.h"
#include "stream/event.h"

namespace graphtides {
namespace {

TEST(TcpTest, SinkDeliversLinesToServer) {
  TcpLineServer server;
  std::mutex mu;
  std::vector<std::string> lines;
  auto port = server.Start([&](std::string_view line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.emplace_back(line);
  });
  ASSERT_TRUE(port.ok());

  TcpSink sink;
  ASSERT_TRUE(sink.Connect("127.0.0.1", *port).ok());
  ASSERT_TRUE(sink.Deliver(Event::AddVertex(1, "a")).ok());
  ASSERT_TRUE(sink.Deliver(Event::AddEdge(1, 2, "b")).ok());
  ASSERT_TRUE(sink.Finish().ok());
  server.Join();

  ASSERT_EQ(server.lines_received(), 2u);
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(lines[0], "CREATE_VERTEX,1,a");
  EXPECT_EQ(lines[1], "CREATE_EDGE,1-2,b");
}

TEST(TcpTest, LinesParseBackToEvents) {
  TcpLineServer server;
  std::mutex mu;
  std::vector<Event> received;
  auto port = server.Start([&](std::string_view line) {
    auto parsed = ParseEventLine(line);
    ASSERT_TRUE(parsed.ok());
    std::lock_guard<std::mutex> lock(mu);
    received.push_back(std::move(parsed).value());
  });
  ASSERT_TRUE(port.ok());

  std::vector<Event> sent;
  for (VertexId v = 0; v < 100; ++v) sent.push_back(Event::AddVertex(v));
  TcpSink sink;
  ASSERT_TRUE(sink.Connect("localhost", *port).ok());
  for (const Event& e : sent) ASSERT_TRUE(sink.Deliver(e).ok());
  ASSERT_TRUE(sink.Finish().ok());
  server.Join();

  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(received, sent);
}

TEST(TcpTest, ReplayerOverTcpEndToEnd) {
  TcpLineServer server;
  auto port = server.Start(nullptr);
  ASSERT_TRUE(port.ok());

  std::vector<Event> events;
  for (VertexId v = 0; v < 5000; ++v) events.push_back(Event::AddVertex(v));

  TcpSink sink;
  ASSERT_TRUE(sink.Connect("127.0.0.1", *port).ok());
  ReplayerOptions options;
  options.base_rate_eps = 200000.0;
  StreamReplayer replayer(options);
  auto stats = replayer.Replay(events, &sink);
  ASSERT_TRUE(stats.ok());
  server.Join();
  EXPECT_EQ(stats->events_delivered, 5000u);
  EXPECT_EQ(server.lines_received(), 5000u);
}

TEST(TcpTest, ConnectToClosedPortFails) {
  TcpSink sink;
  // Port 1 on loopback is essentially never listening.
  const Status st = sink.Connect("127.0.0.1", 1);
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(sink.connected());
}

TEST(TcpTest, InvalidAddressRejected) {
  TcpSink sink;
  EXPECT_TRUE(sink.Connect("not-a-host-name", 8080).IsInvalidArgument());
}

TEST(TcpTest, DeliverWithoutConnectFails) {
  TcpSink sink;
  EXPECT_TRUE(sink.Deliver(Event::AddVertex(1)).IsPreconditionFailed());
}

TEST(TcpTest, FinalPartialLineDeliveredAtDisconnect) {
  TcpLineServer server;
  std::mutex mu;
  std::vector<std::string> lines;
  auto port = server.Start([&](std::string_view line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.emplace_back(line);
  });
  ASSERT_TRUE(port.ok());

  // Raw client: the last line has no trailing newline before the peer
  // closes — it must still be delivered.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(*port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string payload = "first line\nsecond line\nlast-line-no-newline";
  ASSERT_EQ(::send(fd, payload.data(), payload.size(), 0),
            static_cast<ssize_t>(payload.size()));
  ::close(fd);
  server.Join();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "first line");
  EXPECT_EQ(lines[1], "second line");
  EXPECT_EQ(lines[2], "last-line-no-newline");
  EXPECT_EQ(server.lines_received(), 3u);
}

TEST(TcpTest, PeerDeathSurfacesAsStatusNotSigpipe) {
  // Regression: the server kills the connection mid-replay. Without
  // MSG_NOSIGNAL the process would die of SIGPIPE on the next send; with
  // it, the replayer must return an error Status and the test must still
  // be running to observe it.
  TcpLineServer server;
  server.set_close_after_lines(10);
  auto port = server.Start(nullptr);
  ASSERT_TRUE(port.ok());

  TcpSink sink;
  ASSERT_TRUE(sink.Connect("127.0.0.1", *port).ok());

  std::vector<Event> events;
  for (VertexId v = 0; v < 100000; ++v) {
    events.push_back(Event::AddVertex(v));
  }
  ReplayerOptions options;
  options.base_rate_eps = 5e6;
  StreamReplayer replayer(options);
  auto stats = replayer.Replay(events, &sink);

  EXPECT_FALSE(stats.ok());  // the run aborted, the process survived
  server.Join();
  // The trigger is checked per read chunk, so at least 10 lines arrived but
  // far from all of them.
  EXPECT_GE(server.lines_received(), 10u);
  EXPECT_LT(server.lines_received(), 100000u);
}

TEST(TcpTest, ReconnectResumesDeliveryAndKeepsBufferedLines) {
  TcpLineServer server;
  server.set_max_connections(2);
  std::mutex mu;
  std::vector<std::string> lines;
  auto port = server.Start([&](std::string_view line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.emplace_back(line);
  });
  ASSERT_TRUE(port.ok());

  TcpSink sink;
  ASSERT_TRUE(sink.Connect("127.0.0.1", *port).ok());
  ASSERT_TRUE(sink.Deliver(Event::AddVertex(1)).ok());

  // Sever before the (buffered) line was flushed: the line must survive
  // the reconnect and arrive over the second connection.
  sink.Sever();
  EXPECT_FALSE(sink.connected());
  EXPECT_FALSE(sink.Deliver(Event::AddVertex(2)).ok());
  ASSERT_TRUE(sink.Reconnect().ok());
  EXPECT_TRUE(sink.connected());
  EXPECT_EQ(sink.reconnects(), 1u);
  ASSERT_TRUE(sink.Deliver(Event::AddVertex(3)).ok());
  ASSERT_TRUE(sink.Finish().ok());
  server.Join();

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "CREATE_VERTEX,1,");
  EXPECT_EQ(lines[1], "CREATE_VERTEX,3,");
  EXPECT_EQ(server.connections_served(), 2u);
}

TEST(TcpTest, ReconnectWithoutConnectFails) {
  TcpSink sink;
  EXPECT_TRUE(sink.Reconnect().IsPreconditionFailed());
}

TEST(TcpTest, StopUnblocksServerBlockedInAccept) {
  TcpLineServer server;
  auto port = server.Start(nullptr);
  ASSERT_TRUE(port.ok());
  // No client ever connects: the server thread is blocked in accept().
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto start = std::chrono::steady_clock::now();
  server.Stop();
  server.Join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);
}

TEST(TcpTest, StopUnblocksServerBlockedInRead) {
  // Regression: a client connects and then goes silent, leaving the server
  // thread blocked in read() on the connection. Stop must shut that
  // connection down too — not just wake the accept loop — or a watchdog
  // abort leaves the thread wedged forever.
  TcpLineServer server;
  auto port = server.Start(nullptr);
  ASSERT_TRUE(port.ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(*port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  // Let the server accept and park in read().
  while (server.connections_served() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  const auto start = std::chrono::steady_clock::now();
  server.Stop();
  server.Join();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);
  ::close(fd);
}

TEST(TcpTest, AbortUnblocksSinkBlockedInSend) {
  // Regression: the peer accepts but never reads, so the sink eventually
  // blocks in send() once both socket buffers fill. A supervisor thread
  // calling Abort() must unblock it with an error instead of leaving the
  // emitter thread stuck past a watchdog cancel.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                          &addr_len),
            0);

  TcpSink sink;
  ASSERT_TRUE(sink.Connect("127.0.0.1", ntohs(addr.sin_port)).ok());
  const int conn = ::accept(listen_fd, nullptr, nullptr);
  ASSERT_GE(conn, 0);

  // Flood the never-reading peer until Deliver errors out. Without Abort
  // this loop would block indefinitely once the buffers fill.
  std::atomic<bool> errored{false};
  std::thread emitter([&] {
    const Event e = Event::AddVertex(1, std::string(1024, 'x'));
    for (int i = 0; i < 1000000; ++i) {
      if (!sink.Deliver(e).ok()) {
        errored = true;
        return;
      }
    }
  });
  // Give the emitter time to wedge in send(), then abort from this thread.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  sink.Abort();
  emitter.join();
  EXPECT_TRUE(errored);

  ::close(conn);
  ::close(listen_fd);
}

TEST(TcpTest, FinishIdempotent) {
  TcpLineServer server;
  auto port = server.Start(nullptr);
  ASSERT_TRUE(port.ok());
  TcpSink sink;
  ASSERT_TRUE(sink.Connect("127.0.0.1", *port).ok());
  ASSERT_TRUE(sink.Deliver(Event::AddVertex(1)).ok());
  EXPECT_TRUE(sink.Finish().ok());
  EXPECT_TRUE(sink.Finish().ok());
  server.Join();
}

}  // namespace
}  // namespace graphtides
