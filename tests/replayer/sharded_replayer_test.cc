// Golden determinism for the sharded replay pipeline: replaying the same
// stream with --shards 1 and --shards N into per-shard capture sinks and
// merging the captures by global sequence number must reproduce the exact
// single-lane event order and identical marker epochs; each lane's output
// must be an order-preserving subsequence of the stream.
#include "replayer/sharded_replayer.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "replayer/replayer.h"

namespace graphtides {
namespace {

// A stream that exercises every routing rule: interleaved vertex and edge
// ops over a small entity set (so per-entity order is genuinely at risk),
// a marker every `marker_every` events, and a SET_RATE change mid-stream.
std::vector<Event> MixedStream(size_t graph_events, size_t marker_every) {
  std::vector<Event> events;
  events.reserve(graph_events + graph_events / marker_every + 2);
  size_t emitted = 0;
  uint64_t next_vertex = 0;
  while (emitted < graph_events) {
    const uint64_t v = next_vertex++;
    events.push_back(Event::AddVertex(v, "s" + std::to_string(v)));
    ++emitted;
    if (v >= 2 && emitted < graph_events) {
      events.push_back(Event::AddEdge(v, v / 2, "w" + std::to_string(v)));
      ++emitted;
    }
    if (v >= 4 && v % 3 == 0 && emitted < graph_events) {
      events.push_back(Event::UpdateVertex(v - 2, "u" + std::to_string(v)));
      ++emitted;
    }
    if (v >= 6 && v % 5 == 0 && emitted < graph_events) {
      events.push_back(Event::RemoveEdge(v - 2, (v - 2) / 2));
      ++emitted;
    }
    if (emitted % marker_every == 0) {
      events.push_back(Event::Marker("m" + std::to_string(emitted)));
    }
    if (emitted == graph_events / 2) {
      events.push_back(Event::SetRate(2.0));
    }
  }
  return events;
}

/// Captures (global sequence number, canonical line) pairs per shard.
class SequencedCaptureSink final : public EventSink {
 public:
  Status Deliver(const Event& event) override {
    return DeliverSequenced(event, 0);
  }
  Status DeliverSequenced(const Event& event, uint64_t seq) override {
    captured_.emplace_back(seq, event.ToCsvLine());
    return Status::OK();
  }

  const std::vector<std::pair<uint64_t, std::string>>& captured() const {
    return captured_;
  }

 private:
  std::vector<std::pair<uint64_t, std::string>> captured_;
};

struct ShardedRun {
  ShardedReplayStats stats;
  std::vector<std::vector<std::pair<uint64_t, std::string>>> per_shard;
  /// All captures merged back into global sequence order.
  std::vector<std::pair<uint64_t, std::string>> merged;
};

ShardedRun RunSharded(const std::vector<Event>& events, size_t shards) {
  ShardedReplayerOptions options;
  options.shards = shards;
  options.total_rate_eps = 4e6;  // fast enough that pacing is a no-op
  ShardedReplayer replayer(options);
  std::vector<std::unique_ptr<SequencedCaptureSink>> sinks;
  std::vector<EventSink*> sink_ptrs;
  for (size_t s = 0; s < shards; ++s) {
    sinks.push_back(std::make_unique<SequencedCaptureSink>());
    sink_ptrs.push_back(sinks.back().get());
  }
  Result<ShardedReplayStats> stats = replayer.Replay(events, sink_ptrs);
  EXPECT_TRUE(stats.ok()) << stats.status();
  ShardedRun run;
  if (stats.ok()) run.stats = std::move(*stats);
  for (const auto& sink : sinks) {
    run.per_shard.push_back(sink->captured());
    run.merged.insert(run.merged.end(), sink->captured().begin(),
                      sink->captured().end());
  }
  std::sort(run.merged.begin(), run.merged.end());
  return run;
}

TEST(ShardOfEventTest, EdgeOpsFollowTheirSourceVertex) {
  for (uint64_t v = 0; v < 200; ++v) {
    const size_t vertex_shard =
        ShardOfEvent(EventType::kAddVertex, v, {}, 4);
    const size_t edge_shard =
        ShardOfEvent(EventType::kAddEdge, 0, {v, v + 7}, 4);
    EXPECT_EQ(edge_shard, vertex_shard) << "source vertex " << v;
    EXPECT_LT(vertex_shard, 4u);
  }
}

TEST(ShardOfEventTest, SingleShardAlwaysRoutesToLaneZero) {
  for (uint64_t v = 0; v < 50; ++v) {
    EXPECT_EQ(ShardOfVertex(v, 1), 0u);
  }
}

TEST(ShardOfEventTest, HashSpreadsSequentialIdsAcrossLanes) {
  std::map<size_t, size_t> counts;
  const size_t shards = 4;
  for (uint64_t v = 0; v < 4000; ++v) ++counts[ShardOfVertex(v, shards)];
  ASSERT_EQ(counts.size(), shards);
  for (const auto& [shard, count] : counts) {
    EXPECT_GT(count, 4000u / shards / 2) << "shard " << shard;
  }
}

TEST(ShardedReplayerTest, GoldenDeterminismAcrossShardCounts) {
  const std::vector<Event> events = MixedStream(4000, 500);
  const ShardedRun one = RunSharded(events, 1);
  const ShardedRun four = RunSharded(events, 4);

  // Merged by sequence number, the four-lane replay reproduces the
  // single-lane event order exactly.
  ASSERT_EQ(one.merged.size(), four.merged.size());
  EXPECT_EQ(one.merged, four.merged);

  // Sequence numbers are the contiguous global order 0..N-1.
  for (size_t i = 0; i < four.merged.size(); ++i) {
    ASSERT_EQ(four.merged[i].first, i);
  }

  // Identical marker epochs: same labels, same events-delivered-before, in
  // the same order.
  ASSERT_EQ(one.stats.aggregate.marker_log.size(),
            four.stats.aggregate.marker_log.size());
  for (size_t i = 0; i < one.stats.aggregate.marker_log.size(); ++i) {
    EXPECT_EQ(one.stats.aggregate.marker_log[i].label,
              four.stats.aggregate.marker_log[i].label);
    EXPECT_EQ(one.stats.aggregate.marker_log[i].events_before,
              four.stats.aggregate.marker_log[i].events_before);
  }
  EXPECT_EQ(one.stats.aggregate.events_delivered,
            four.stats.aggregate.events_delivered);
  EXPECT_EQ(four.stats.aggregate.markers, one.stats.aggregate.markers);
  EXPECT_EQ(four.stats.aggregate.controls, one.stats.aggregate.controls);
}

TEST(ShardedReplayerTest, MatchesSingleThreadedStreamReplayerOrder) {
  const std::vector<Event> events = MixedStream(2000, 500);
  std::vector<std::string> reference;
  CallbackSink reference_sink([&](const Event& e) {
    reference.push_back(e.ToCsvLine());
    return Status::OK();
  });
  ReplayerOptions reference_options;
  reference_options.base_rate_eps = 4e6;
  StreamReplayer reference_replayer(reference_options);
  ASSERT_TRUE(reference_replayer.Replay(events, &reference_sink).ok());

  const ShardedRun four = RunSharded(events, 4);
  ASSERT_EQ(four.merged.size(), reference.size());
  for (size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(four.merged[i].second, reference[i]) << "position " << i;
  }
}

TEST(ShardedReplayerTest, LaneOutputsAreOrderPreservingSubsequences) {
  const std::vector<Event> events = MixedStream(3000, 1000);
  const ShardedRun four = RunSharded(events, 4);
  size_t total = 0;
  for (size_t s = 0; s < four.per_shard.size(); ++s) {
    const auto& lane = four.per_shard[s];
    total += lane.size();
    for (size_t i = 1; i < lane.size(); ++i) {
      ASSERT_LT(lane[i - 1].first, lane[i].first)
          << "lane " << s << " emitted out of stream order at " << i;
    }
  }
  EXPECT_EQ(total, four.stats.aggregate.events_delivered);
  // With the splitmix hash over thousands of entities, no lane may sit
  // empty — all four were genuinely exercised.
  for (size_t s = 0; s < four.per_shard.size(); ++s) {
    EXPECT_FALSE(four.per_shard[s].empty()) << "lane " << s;
  }
}

TEST(ShardedReplayerTest, ReplayFileMatchesInMemoryReplay) {
  const std::vector<Event> events = MixedStream(1500, 400);
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("gt_sharded_" + std::to_string(::getpid()) + ".stream");
  {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good());
    out << "# golden determinism fixture\n\n";
    for (const Event& e : events) out << e.ToCsvLine() << '\n';
  }

  ShardedReplayerOptions options;
  options.shards = 4;
  options.total_rate_eps = 4e6;
  ShardedReplayer replayer(options);
  std::vector<std::unique_ptr<SequencedCaptureSink>> sinks;
  std::vector<EventSink*> sink_ptrs;
  for (size_t s = 0; s < 4; ++s) {
    sinks.push_back(std::make_unique<SequencedCaptureSink>());
    sink_ptrs.push_back(sinks.back().get());
  }
  const Result<ShardedReplayStats> stats =
      replayer.ReplayFile(path.string(), sink_ptrs);
  std::filesystem::remove(path);
  ASSERT_TRUE(stats.ok()) << stats.status();

  std::vector<std::pair<uint64_t, std::string>> merged;
  for (const auto& sink : sinks) {
    merged.insert(merged.end(), sink->captured().begin(),
                  sink->captured().end());
  }
  std::sort(merged.begin(), merged.end());

  const ShardedRun in_memory = RunSharded(events, 4);
  EXPECT_EQ(merged, in_memory.merged);
  EXPECT_EQ(stats->aggregate.entries_consumed,
            in_memory.stats.aggregate.entries_consumed);
}

TEST(ShardedReplayerTest, StopAfterEventsStopsExactly) {
  const std::vector<Event> events = MixedStream(2000, 500);
  ShardedReplayerOptions options;
  options.shards = 4;
  options.total_rate_eps = 4e6;
  options.stop_after_events = 777;
  ShardedReplayer replayer(options);
  std::vector<std::unique_ptr<SequencedCaptureSink>> sinks;
  std::vector<EventSink*> sink_ptrs;
  for (size_t s = 0; s < 4; ++s) {
    sinks.push_back(std::make_unique<SequencedCaptureSink>());
    sink_ptrs.push_back(sinks.back().get());
  }
  const Result<ShardedReplayStats> stats = replayer.Replay(events, sink_ptrs);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_TRUE(stats->aggregate.stopped_early);
  EXPECT_EQ(stats->aggregate.events_delivered, 777u);
  size_t total = 0;
  for (const auto& sink : sinks) total += sink->captured().size();
  EXPECT_EQ(total, 777u);
}

TEST(ShardedReplayerTest, SinkFailurePropagatesWithoutHanging) {
  const std::vector<Event> events = MixedStream(2000, 500);
  ShardedReplayerOptions options;
  options.shards = 3;
  options.total_rate_eps = 4e6;
  ShardedReplayer replayer(options);
  SequencedCaptureSink ok_a;
  SequencedCaptureSink ok_b;
  size_t delivered_to_bad = 0;
  CallbackSink bad([&](const Event&) {
    if (++delivered_to_bad > 50) return Status::IoError("injected failure");
    return Status::OK();
  });
  const std::vector<EventSink*> sink_ptrs = {&ok_a, &bad, &ok_b};
  const Result<ShardedReplayStats> stats = replayer.Replay(events, sink_ptrs);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsIoError()) << stats.status();
}

TEST(ShardedReplayerTest, RejectsSinkCountMismatch) {
  ShardedReplayerOptions options;
  options.shards = 2;
  ShardedReplayer replayer(options);
  SequencedCaptureSink only;
  const Result<ShardedReplayStats> stats =
      replayer.Replay({Event::AddVertex(1)}, {&only});
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsInvalidArgument());
}

TEST(ShardedReplayerTest, ProgressReflectsDeliveries) {
  const std::vector<Event> events = MixedStream(1000, 500);
  ShardedReplayerOptions options;
  options.shards = 2;
  options.total_rate_eps = 4e6;
  ShardedReplayer replayer(options);
  SequencedCaptureSink a;
  SequencedCaptureSink b;
  ASSERT_TRUE(replayer.Replay(events, {&a, &b}).ok());
  EXPECT_EQ(replayer.progress(), a.captured().size() + b.captured().size());
}

}  // namespace
}  // namespace graphtides
