#include "replayer/rate_controller.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace graphtides {
namespace {

// NextDeadline against a virtual clock exercises the scheduling math
// without wall-clock flakiness.
TEST(RateControllerTest, DeadlinesUniformAtBaseRate) {
  VirtualClock clock;
  RateController rate(1000.0, &clock);  // 1 ms interval
  const Timestamp first = rate.NextDeadline();
  EXPECT_EQ(first.nanos(), 0);
  for (int i = 1; i <= 10; ++i) {
    EXPECT_EQ(rate.NextDeadline().nanos(), i * 1000000);
  }
}

TEST(RateControllerTest, FactorScalesInterval) {
  VirtualClock clock;
  RateController rate(1000.0, &clock);
  rate.NextDeadline();  // t=0
  rate.SetFactor(2.0);  // 0.5 ms interval
  EXPECT_EQ(rate.NextDeadline().nanos(), 500000);
  EXPECT_EQ(rate.NextDeadline().nanos(), 1000000);
  rate.SetFactor(0.5);  // 2 ms interval
  EXPECT_EQ(rate.NextDeadline().nanos(), 3000000);
  EXPECT_DOUBLE_EQ(rate.current_rate_eps(), 500.0);
}

TEST(RateControllerTest, InvalidFactorIgnored) {
  VirtualClock clock;
  RateController rate(1000.0, &clock);
  rate.SetFactor(0.0);
  EXPECT_DOUBLE_EQ(rate.factor(), 1.0);
  rate.SetFactor(-2.0);
  EXPECT_DOUBLE_EQ(rate.factor(), 1.0);
}

TEST(RateControllerTest, DeferPushesSchedule) {
  VirtualClock clock;
  RateController rate(1000.0, &clock);
  rate.NextDeadline();  // 0; next = 1ms
  rate.Defer(Duration::FromMillis(20));
  EXPECT_EQ(rate.NextDeadline().nanos(), 21000000);
}

TEST(RateControllerTest, DeferBeforeStartAnchorsToNow) {
  VirtualClock clock;
  clock.Advance(Duration::FromMillis(5));
  RateController rate(1000.0, &clock);
  rate.Defer(Duration::FromMillis(10));
  EXPECT_EQ(rate.NextDeadline().nanos(), 15000000);
}

TEST(RateControllerTest, LagMeasuredAgainstSchedule) {
  VirtualClock clock;
  RateController rate(1000.0, &clock);
  EXPECT_EQ(rate.Lag(), Duration::Zero());
  rate.NextDeadline();  // next deadline = 1 ms
  clock.Advance(Duration::FromMillis(5));
  EXPECT_EQ(rate.Lag().millis(), 4);
}

// Drift audit: with a fractional interval (1e9 / rate not an integer
// nanosecond count), the schedule must stay anchored to k * interval
// instead of accumulating a per-event truncation error. Repeatedly adding
// a truncated integer interval would drift by ~1/3 ns per event here —
// several microseconds over the run — while the anchored schedule stays
// within rounding (±0.5 ns) of the ideal for any k.
TEST(RateControllerTest, NoCumulativeDriftOnFractionalIntervals) {
  VirtualClock clock;
  RateController rate(1000.0, &clock);
  rate.NextDeadline();      // t = 0 anchors the schedule
  rate.SetFactor(3.0);      // 333333.33... ns interval
  const int events = 10000;
  Timestamp last;
  for (int i = 0; i < events; ++i) last = rate.NextDeadline();
  const double ideal_nanos = events * (1e9 / 3000.0);
  EXPECT_NEAR(static_cast<double>(last.nanos()), ideal_nanos, 1.0)
      << "cumulative drift " << (ideal_nanos - last.nanos()) << " ns";
}

TEST(RateControllerTest, NoCumulativeDriftAtHighRate) {
  // 3 MHz schedule: a 333.33 ns interval truncated to 333 ns would lose
  // 33 us over 100k events; the anchored schedule must not.
  VirtualClock clock;
  RateController rate(3.0e6, &clock);
  const int events = 100000;
  Timestamp last;
  for (int i = 0; i < events; ++i) last = rate.NextDeadline();
  const double ideal_nanos = (events - 1) * (1e9 / 3.0e6);
  EXPECT_NEAR(static_cast<double>(last.nanos()), ideal_nanos, 1.0)
      << "cumulative drift " << (ideal_nanos - last.nanos()) << " ns";
}

TEST(RateControllerTest, FactorChangesKeepScheduleExact) {
  // Re-anchoring at SetFactor must not inherit drift from the previous
  // segment nor introduce a discontinuity beyond rounding.
  VirtualClock clock;
  RateController rate(1000.0, &clock);
  rate.NextDeadline();  // t = 0
  Timestamp last;
  double ideal = 0.0;
  const double factors[] = {3.0, 7.0, 1.0, 0.3};
  for (const double factor : factors) {
    rate.SetFactor(factor);
    for (int i = 0; i < 1000; ++i) last = rate.NextDeadline();
    ideal += 1000 * (1e9 / (1000.0 * factor));
    EXPECT_NEAR(static_cast<double>(last.nanos()), ideal, 2.0)
        << "after factor " << factor;
    // Re-sync the ideal to the rounded actual so per-segment rounding
    // (sub-ns) does not accumulate into the comparison itself.
    ideal = static_cast<double>(last.nanos());
  }
}

TEST(RateControllerTest, WallClockWaitHitsTargetRate) {
  MonotonicClock clock;
  RateController rate(20000.0, &clock);  // 50 us interval
  const Timestamp start = clock.Now();
  const int events = 2000;
  for (int i = 0; i < events; ++i) rate.WaitForNextSlot();
  const double elapsed = (clock.Now() - start).seconds();
  const double achieved = events / elapsed;
  // Within 15% of the 20k target on a loaded CI machine.
  EXPECT_NEAR(achieved, 20000.0, 3000.0);
}

TEST(RateControllerTest, WaitNeverReturnsEarly) {
  MonotonicClock clock;
  RateController rate(50000.0, &clock);
  for (int i = 0; i < 100; ++i) {
    const Timestamp deadline = rate.WaitForNextSlot();
    EXPECT_GE(clock.Now(), deadline);
  }
}

// ---------------------------------------------------------------------------
// Clock-jump properties. The schedule is anchor + k*interval, consulted
// against the clock only inside the wait loop — so a clock that leaps
// forward must cause bounded catch-up (not drift), and one that leaps
// backward must cause a longer wait (never a livelock, never a deadline
// that recedes, never a "negative sleep" where the controller tries to
// schedule into the past).
// ---------------------------------------------------------------------------

// A settable clock for jump tests. Each Now() also ticks time forward a
// little, the way a real clock advances while the wait loop polls it —
// without the tick, WaitForNextSlot against a frozen clock would spin
// forever after a backward jump.
class JumpClock final : public Clock {
 public:
  explicit JumpClock(Duration tick) : tick_(tick) {}

  Timestamp Now() const override {
    now_ = now_ + tick_;
    ++reads_;
    return now_;
  }

  /// Moves the clock by `d`, forward or backward.
  void Jump(Duration d) { now_ = now_ + d; }
  uint64_t reads() const { return reads_; }

 private:
  Duration tick_;
  mutable Timestamp now_;
  mutable uint64_t reads_ = 0;
};

TEST(RateControllerTest, ForwardClockJumpCatchesUpWithoutScheduleDrift) {
  JumpClock clock(Duration::FromNanos(200));
  RateController rate(100000.0, &clock);  // 10 us interval
  const Timestamp first = rate.WaitForNextSlot();

  Timestamp prev = first;
  for (int i = 1; i <= 200; ++i) {
    if (i == 50) clock.Jump(Duration::FromSeconds(5.0));
    const Timestamp deadline = rate.WaitForNextSlot();
    // Deadlines never recede, and the slot spacing stays exactly one
    // interval: the jump makes the controller late, not the schedule fast.
    EXPECT_GE(deadline, prev) << "slot " << i;
    prev = deadline;
    EXPECT_NEAR(static_cast<double>((deadline - first).nanos()),
                i * 10000.0, 1.0)
        << "slot " << i;
  }

  // Catch-up after the jump is immediate: a deadline already in the past
  // needs exactly one clock read to release, no sleeping toward it.
  const uint64_t before = clock.reads();
  rate.WaitForNextSlot();
  EXPECT_LE(clock.reads() - before, 2u);
}

TEST(RateControllerTest, BackwardClockJumpWaitsLongerButNeverLivelocks) {
  JumpClock clock(Duration::FromMicros(1));
  RateController rate(1000.0, &clock);  // 1 ms interval
  const Timestamp first = rate.WaitForNextSlot();
  rate.WaitForNextSlot();

  // The clock leaps 5 ms into the past; the next deadline is now ~7 ms of
  // clock-reads away. The wait must cover the gap by polling forward —
  // if the controller instead recomputed the schedule from Now() or
  // attempted a negative sleep, the spacing or ordering would break.
  clock.Jump(Duration::FromMillis(-5));
  const Timestamp third = rate.WaitForNextSlot();
  EXPECT_NEAR(static_cast<double>((third - first).nanos()), 2.0e6, 1.0);

  Timestamp prev = third;
  for (int i = 3; i <= 10; ++i) {
    const Timestamp deadline = rate.WaitForNextSlot();
    EXPECT_GE(deadline, prev);
    EXPECT_GE(clock.Now(), deadline);  // released at/after its slot
    prev = deadline;
  }
  // Slots 0..10 released: ten intervals separate the last from the first.
  EXPECT_NEAR(static_cast<double>((prev - first).nanos()), 10.0e6, 1.0);
}

// ---------------------------------------------------------------------------
// Retarget properties (capacity search drives this live). A retarget must
// keep the anchored-deadline schedule: ahead-of-schedule it splices the
// new interval seamlessly at the previous deadline; behind schedule it
// resumes from the last observed time — never a burst of past deadlines.
// ---------------------------------------------------------------------------

TEST(RateControllerTest, RetargetOnScheduleSplicesSeamlessly) {
  VirtualClock clock;
  RateController rate(1000.0, &clock);  // 1 ms interval
  rate.NextDeadline();                  // t = 0
  rate.NextDeadline();                  // 1 ms
  const Timestamp prev = rate.NextDeadline();  // 2 ms
  rate.Retarget(2000.0);                       // 0.5 ms interval
  EXPECT_DOUBLE_EQ(rate.current_rate_eps(), 2000.0);
  // New-rate deadlines continue from the previous deadline, exactly like
  // SetFactor: no gap, no overlap.
  EXPECT_EQ(rate.NextDeadline().nanos(), prev.nanos() + 500000);
  EXPECT_EQ(rate.NextDeadline().nanos(), prev.nanos() + 1000000);
}

TEST(RateControllerTest, RetargetResetsControlFactor) {
  VirtualClock clock;
  RateController rate(1000.0, &clock);
  rate.NextDeadline();
  rate.SetFactor(4.0);
  rate.Retarget(2000.0);
  // The factor scales the NEW base, not a leftover of the old one.
  EXPECT_DOUBLE_EQ(rate.factor(), 1.0);
  EXPECT_DOUBLE_EQ(rate.current_rate_eps(), 2000.0);
}

TEST(RateControllerTest, RetargetWhileLaggingDoesNotBurstCatchUp) {
  VirtualClock clock;
  RateController rate(1000.0, &clock);  // 1 ms interval
  rate.WaitForNextSlot();               // t = 0, schedule anchored

  // Emission stalls: the clock runs 10 ms ahead of the schedule. The next
  // wait observes now = 10 ms against a 1 ms deadline (released late).
  clock.Advance(Duration::FromMillis(10));
  rate.WaitForNextSlot();

  // Retargeting mid-lag must resume from the observed now, not from the
  // stale 1 ms deadline — anchoring there would put the whole new-rate
  // schedule in the past and release an unpaced catch-up burst.
  rate.Retarget(500.0);  // 2 ms interval
  const Timestamp now = clock.Now();
  const Timestamp first = rate.NextDeadline();
  EXPECT_GE(first, now);  // strictly in the future: no burst
  EXPECT_EQ(first.nanos(), now.nanos() + 2000000);
  EXPECT_EQ(rate.NextDeadline().nanos(), now.nanos() + 4000000);
}

TEST(RateControllerTest, RetargetInvalidRateIgnored) {
  VirtualClock clock;
  RateController rate(1000.0, &clock);
  rate.NextDeadline();  // t = 0
  rate.Retarget(0.0);
  rate.Retarget(-100.0);
  EXPECT_DOUBLE_EQ(rate.current_rate_eps(), 1000.0);
  EXPECT_EQ(rate.NextDeadline().nanos(), 1000000);  // schedule untouched
}

TEST(RateControllerTest, RetargetSequencePreservesExactSchedule) {
  // Drift audit across many retargets while on schedule: every segment
  // stays anchor + k * interval; truncation errors never accumulate.
  VirtualClock clock;
  RateController rate(1000.0, &clock);
  rate.NextDeadline();  // t = 0
  Timestamp last;
  double ideal = 0.0;
  const double rates[] = {3000.0, 7000.0, 1000.0, 300.0};
  for (const double r : rates) {
    rate.Retarget(r);
    for (int i = 0; i < 1000; ++i) last = rate.NextDeadline();
    ideal += 1000 * (1e9 / r);
    EXPECT_NEAR(static_cast<double>(last.nanos()), ideal, 2.0)
        << "after retarget to " << r;
    ideal = static_cast<double>(last.nanos());
  }
}

TEST(RateControllerTest, RandomJumpSequencePreservesExactScheduleSpan) {
  // Property sweep: whatever sequence of forward/backward leaps the clock
  // takes between slots, the emitted schedule stays anchor + k*interval —
  // monotone, no cumulative drift, span independent of every jump.
  Rng rng(42);
  VirtualClock clock;
  clock.Advance(Duration::FromSeconds(1.0));
  RateController rate(250000.0, &clock);  // 4 us interval
  const Timestamp first = rate.NextDeadline();

  Timestamp prev = first;
  for (int i = 1; i <= 5000; ++i) {
    // Jumps up to ±1 ms between slots (250x the interval).
    const int64_t jump_nanos =
        static_cast<int64_t>(rng.NextU64() % 2000001) - 1000000;
    clock.Advance(Duration::FromNanos(jump_nanos));
    const Timestamp deadline = rate.NextDeadline();
    ASSERT_GE(deadline, prev) << "slot " << i;
    prev = deadline;
  }
  EXPECT_NEAR(static_cast<double>((prev - first).nanos()), 5000 * 4000.0, 1.0);
}

}  // namespace
}  // namespace graphtides
