#include "replayer/spsc_queue.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace graphtides {
namespace {

TEST(SpscQueueTest, CapacityRoundedToPowerOfTwo) {
  SpscQueue<int> q(10);
  EXPECT_EQ(q.capacity(), 16u);
  SpscQueue<int> q2(16);
  EXPECT_EQ(q2.capacity(), 16u);
  SpscQueue<int> q3(1);
  EXPECT_EQ(q3.capacity(), 1u);
}

TEST(SpscQueueTest, FifoOrder) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.TryPush(i));
  for (int i = 0; i < 5; ++i) {
    auto v = q.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(SpscQueueTest, FullQueueRejectsPush) {
  SpscQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99));
  EXPECT_EQ(q.SizeApprox(), 4u);
  ASSERT_TRUE(q.TryPop().has_value());
  EXPECT_TRUE(q.TryPush(99));
}

TEST(SpscQueueTest, InterleavedPushPop) {
  SpscQueue<int> q(2);
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 100; ++round) {
    while (q.TryPush(next_push)) ++next_push;
    while (auto v = q.TryPop()) {
      EXPECT_EQ(*v, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_push, next_pop);
}

TEST(SpscQueueTest, MoveOnlyPayload) {
  SpscQueue<std::unique_ptr<int>> q(4);
  EXPECT_TRUE(q.TryPush(std::make_unique<int>(7)));
  auto v = q.TryPop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 7);
}

TEST(SpscQueueTest, TwoThreadStressPreservesSequence) {
  constexpr int kCount = 200000;
  SpscQueue<int> q(1024);
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      while (!q.TryPush(i)) std::this_thread::yield();
    }
  });
  int expected = 0;
  while (expected < kCount) {
    auto v = q.TryPop();
    if (!v.has_value()) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(*v, expected);
    ++expected;
  }
  producer.join();
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(SpscQueueTest, TwoThreadStressStrings) {
  constexpr int kCount = 50000;
  SpscQueue<std::string> q(256);
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      std::string payload = "event-" + std::to_string(i);
      while (!q.TryPush(payload)) std::this_thread::yield();
    }
  });
  for (int i = 0; i < kCount;) {
    auto v = q.TryPop();
    if (!v.has_value()) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(*v, "event-" + std::to_string(i));
    ++i;
  }
  producer.join();
}

}  // namespace
}  // namespace graphtides
