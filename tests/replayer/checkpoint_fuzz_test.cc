// Corruption fuzzing for the durable checkpoint format and the rotated
// generation store: any byte-level damage to a version-2 record — torn
// tails, bit flips, garbage — must surface as ParseError, never as a
// silently wrong resume position, and LoadLatestGood must fall back past
// damaged generations instead of aborting the resume.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "replayer/checkpoint.h"

namespace graphtides {
namespace {

class CheckpointFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gt_checkpoint_fuzz_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static void WriteRaw(const std::string& path, const std::string& bytes) {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::filesystem::path dir_;
};

ReplayCheckpoint SampleCheckpoint(uint64_t entries) {
  ReplayCheckpoint cp;
  cp.entries_consumed = entries;
  cp.events_delivered = entries > 2 ? entries - 2 : 0;
  cp.markers = entries > 2 ? 1 : 0;
  cp.controls = entries > 2 ? 1 : 0;
  cp.rate_factor = 1.5;
  cp.rng_state = {11, 22, 33, 44};
  cp.sink_bytes = {1000, 2000};
  return cp;
}

TEST_F(CheckpointFuzzTest, TruncationAtEveryByteOffsetIsRejected) {
  const std::string text = SampleCheckpoint(500).ToText();
  ASSERT_GT(text.size(), 100u);
  for (size_t len = 0; len < text.size(); ++len) {
    auto parsed = ReplayCheckpoint::FromText(text.substr(0, len));
    ASSERT_FALSE(parsed.ok()) << "prefix of " << len << " bytes parsed";
    EXPECT_TRUE(parsed.status().IsParseError()) << "prefix of " << len;
  }
  // Sanity: the untruncated record still round-trips.
  ASSERT_TRUE(ReplayCheckpoint::FromText(text).ok());
}

TEST_F(CheckpointFuzzTest, EverySingleBitFlipIsRejected) {
  const std::string text = SampleCheckpoint(500).ToText();
  for (size_t i = 0; i < text.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = text;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      auto parsed = ReplayCheckpoint::FromText(flipped);
      EXPECT_FALSE(parsed.ok())
          << "flip of bit " << bit << " at offset " << i << " parsed";
    }
  }
}

TEST_F(CheckpointFuzzTest, GarbageInputsAreParseErrors) {
  const std::vector<std::string> garbage = {
      "",
      "\n",
      "\0\0\0\0",
      "not a checkpoint at all",
      "# graphtides replay checkpoint\n",          // header only
      "# graphtides replay checkpoint\nversion=2\n",  // v2 without crc
      std::string(4096, 'A'),
      std::string("\xff\xfe\x00\x01", 4),
  };
  for (size_t i = 0; i < garbage.size(); ++i) {
    auto parsed = ReplayCheckpoint::FromText(garbage[i]);
    ASSERT_FALSE(parsed.ok()) << "garbage case " << i << " parsed";
    EXPECT_TRUE(parsed.status().IsParseError()) << "garbage case " << i;
  }
}

TEST_F(CheckpointFuzzTest, ContentAfterCrcFooterIsRejected) {
  std::string text = SampleCheckpoint(100).ToText();
  auto parsed = ReplayCheckpoint::FromText(text + "trailing=1\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsParseError());
}

TEST_F(CheckpointFuzzTest, VersionOneWithoutCrcIsStillReadable) {
  // Records written before the crc footer existed must keep loading.
  std::string v1 =
      "# graphtides replay checkpoint\n"
      "version=1\n"
      "entries_consumed=10\n"
      "events_delivered=8\n"
      "markers=1\n"
      "controls=1\n";
  auto parsed = ReplayCheckpoint::FromText(v1);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->version, 1u);
  EXPECT_EQ(parsed->entries_consumed, 10u);
  EXPECT_EQ(parsed->events_delivered, 8u);
}

TEST_F(CheckpointFuzzTest, SinkBytesRoundTripThroughText) {
  ReplayCheckpoint cp = SampleCheckpoint(300);
  cp.sink_bytes = {0, 123456789, 42};
  auto parsed = ReplayCheckpoint::FromText(cp.ToText());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->sink_bytes, cp.sink_bytes);
}

// ---------------------------------------------------------------------------
// Generation store: rotation, fallback, and total-loss behavior.
// ---------------------------------------------------------------------------

TEST_F(CheckpointFuzzTest, StoreRotationKeepsConfiguredGenerations) {
  const std::string path = Path("cp");
  const CheckpointStore store({path, 3});
  for (uint64_t n = 1; n <= 5; ++n) {
    ASSERT_TRUE(store.Save(SampleCheckpoint(n * 100)).ok());
  }
  // Newest three survive: 500, 400, 300; older generations were shifted
  // off the end.
  auto g0 =
      ReplayCheckpoint::LoadFrom(CheckpointStore::GenerationPath(path, 0));
  auto g1 =
      ReplayCheckpoint::LoadFrom(CheckpointStore::GenerationPath(path, 1));
  auto g2 =
      ReplayCheckpoint::LoadFrom(CheckpointStore::GenerationPath(path, 2));
  ASSERT_TRUE(g0.ok());
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g0->entries_consumed, 500u);
  EXPECT_EQ(g1->entries_consumed, 400u);
  EXPECT_EQ(g2->entries_consumed, 300u);
  EXPECT_FALSE(
      std::filesystem::exists(CheckpointStore::GenerationPath(path, 3)));
}

TEST_F(CheckpointFuzzTest, LoadFallsBackPastTornNewestGeneration) {
  const std::string path = Path("cp");
  const CheckpointStore store({path, 3});
  ASSERT_TRUE(store.Save(SampleCheckpoint(100)).ok());
  ASSERT_TRUE(store.Save(SampleCheckpoint(200)).ok());

  // Tear the newest record the way a mid-publish power loss would.
  const std::string newest = SampleCheckpoint(300).ToText();
  WriteRaw(path, newest.substr(0, newest.size() / 2));

  auto loaded = CheckpointStore::LoadLatestGood(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->checkpoint.entries_consumed, 100u);
  EXPECT_EQ(loaded->generation, 1u);
  EXPECT_EQ(loaded->fallbacks, 1u);
  ASSERT_EQ(loaded->rejected.size(), 1u);
}

TEST_F(CheckpointFuzzTest, LoadFallsBackPastMultipleBadGenerations) {
  const std::string path = Path("cp");
  ASSERT_TRUE(
      SampleCheckpoint(100).SaveTo(CheckpointStore::GenerationPath(path, 2))
          .ok());
  WriteRaw(CheckpointStore::GenerationPath(path, 1), "garbage generation");
  const std::string newest = SampleCheckpoint(300).ToText();
  WriteRaw(path, newest.substr(0, 40));

  auto loaded = CheckpointStore::LoadLatestGood(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->checkpoint.entries_consumed, 100u);
  EXPECT_EQ(loaded->generation, 2u);
  EXPECT_EQ(loaded->fallbacks, 2u);
  EXPECT_EQ(loaded->rejected.size(), 2u);
}

TEST_F(CheckpointFuzzTest, LoadSkipsMissingMiddleGeneration) {
  const std::string path = Path("cp");
  // Only generation 2 exists (0 and 1 were never published or were
  // cleaned up): the scan must reach it without counting phantom rejects.
  ASSERT_TRUE(
      SampleCheckpoint(700).SaveTo(CheckpointStore::GenerationPath(path, 2))
          .ok());
  auto loaded = CheckpointStore::LoadLatestGood(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->checkpoint.entries_consumed, 700u);
  EXPECT_EQ(loaded->generation, 2u);
  EXPECT_TRUE(loaded->rejected.empty());
}

TEST_F(CheckpointFuzzTest, NoGenerationAtAllIsNotFound) {
  auto loaded = CheckpointStore::LoadLatestGood(Path("never_written"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound());
}

TEST_F(CheckpointFuzzTest, AllGenerationsCorruptIsAnError) {
  const std::string path = Path("cp");
  WriteRaw(path, "torn");
  WriteRaw(CheckpointStore::GenerationPath(path, 1), "also torn");
  auto loaded = CheckpointStore::LoadLatestGood(path, 2);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsParseError());
}

TEST_F(CheckpointFuzzTest, TornFileOnDiskNeverLoads) {
  // Same property as the in-memory truncation sweep, but through the file
  // loader: every proper prefix written to disk is rejected.
  const std::string text = SampleCheckpoint(250).ToText();
  const std::string path = Path("torn");
  for (size_t len = 0; len < text.size(); len += 7) {
    WriteRaw(path, text.substr(0, len));
    auto loaded = ReplayCheckpoint::LoadFrom(path);
    ASSERT_FALSE(loaded.ok()) << "prefix of " << len << " bytes loaded";
  }
}

}  // namespace
}  // namespace graphtides
