#include "replayer/checkpoint.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/crc32.h"
#include "common/random.h"
#include "harness/run_watchdog.h"
#include "replayer/event_sink.h"
#include "replayer/replayer.h"
#include "replayer/sharded_replayer.h"
#include "stream/event.h"

namespace graphtides {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gt_checkpoint_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

ReplayCheckpoint SampleCheckpoint() {
  ReplayCheckpoint cp;
  cp.entries_consumed = 1234;
  cp.events_delivered = 1200;
  cp.markers = 30;
  cp.controls = 4;
  cp.rate_factor = 2.5;
  cp.rng_state = {1, 2, 3, 0x123456789abcdef0ULL};
  cp.telemetry.retries = 7;
  cp.telemetry.reconnects = 2;
  cp.telemetry.drops_after_retry = 1;
  cp.telemetry.giveups = 1;
  cp.telemetry.backoff_s = 0.125;
  cp.telemetry.injected_failures = 9;
  cp.telemetry.injected_disconnects = 3;
  cp.telemetry.injected_stalls = 2;
  cp.telemetry.injected_latency_spikes = 5;
  cp.telemetry.stall_s = 1.5;
  return cp;
}

TEST_F(CheckpointTest, TextRoundTripPreservesEveryField) {
  const ReplayCheckpoint cp = SampleCheckpoint();
  auto parsed = ReplayCheckpoint::FromText(cp.ToText());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, cp);
}

TEST_F(CheckpointTest, SaveLoadRoundTrip) {
  const ReplayCheckpoint cp = SampleCheckpoint();
  const std::string path = Path("cp.txt");
  ASSERT_TRUE(cp.SaveTo(path).ok());
  // The atomic-rename temp file must not linger.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  auto loaded = ReplayCheckpoint::LoadFrom(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, cp);
}

TEST_F(CheckpointTest, SaveReplacesExistingFileAtomically) {
  ReplayCheckpoint first = SampleCheckpoint();
  const std::string path = Path("cp.txt");
  ASSERT_TRUE(first.SaveTo(path).ok());
  ReplayCheckpoint second = SampleCheckpoint();
  second.entries_consumed = 9999;
  second.events_delivered = 9000;
  ASSERT_TRUE(second.SaveTo(path).ok());
  auto loaded = ReplayCheckpoint::LoadFrom(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->entries_consumed, 9999u);
}

TEST_F(CheckpointTest, RejectsMissingHeader) {
  auto parsed = ReplayCheckpoint::FromText("version=1\nentries_consumed=0\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsParseError());
}

TEST_F(CheckpointTest, RejectsUnsupportedVersion) {
  ReplayCheckpoint cp = SampleCheckpoint();
  cp.version = 99;
  auto parsed = ReplayCheckpoint::FromText(cp.ToText());
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsParseError());
}

TEST_F(CheckpointTest, RejectsCountsExceedingEntriesConsumed) {
  ReplayCheckpoint cp;
  cp.entries_consumed = 5;
  cp.events_delivered = 4;
  cp.markers = 1;
  cp.controls = 1;  // 4 + 1 + 1 > 5
  auto parsed = ReplayCheckpoint::FromText(cp.ToText());
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsParseError());
}

TEST_F(CheckpointTest, RejectsNonNumericValueWithKeyContext) {
  auto parsed = ReplayCheckpoint::FromText(
      "# graphtides replay checkpoint\nversion=1\nentries_consumed=abc\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("entries_consumed"),
            std::string::npos);
}

TEST_F(CheckpointTest, SkipsUnknownKeysForForwardCompatibility) {
  // A newer writer adds its keys *before* the crc footer and checksums
  // them like everything else; this reader verifies, then skips them.
  ReplayCheckpoint cp = SampleCheckpoint();
  std::string text = cp.ToText();
  const size_t crc_line = text.rfind("crc32=");
  ASSERT_NE(crc_line, std::string::npos);
  std::string body = text.substr(0, crc_line) + "future_field=42\n";
  char footer[32];
  std::snprintf(footer, sizeof(footer), "crc32=%08x", Crc32(body));
  auto parsed = ReplayCheckpoint::FromText(body + footer + "\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, cp);
}

TEST_F(CheckpointTest, LoadMissingFileIsIoError) {
  auto loaded = ReplayCheckpoint::LoadFrom(Path("missing.txt"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIoError());
}

// ---------------------------------------------------------------------------
// Resume property tests: a run interrupted at a checkpoint and resumed must
// be indistinguishable from an uninterrupted run — same delivered sequence,
// same final counters.
// ---------------------------------------------------------------------------

std::vector<Event> SyntheticStream(size_t graph_events) {
  std::vector<Event> events;
  for (size_t i = 0; i < graph_events; ++i) {
    if (i > 0 && i % 500 == 0) {
      events.push_back(Event::Marker("m" + std::to_string(i)));
    }
    if (i == graph_events / 4) events.push_back(Event::SetRate(2.0));
    if (i == 3 * graph_events / 4) events.push_back(Event::SetRate(4.0));
    events.push_back(Event::AddVertex(static_cast<VertexId>(i),
                                      "p" + std::to_string(i)));
  }
  return events;
}

ReplayerOptions FastOptions() {
  ReplayerOptions options;
  options.base_rate_eps = 1e6;
  return options;
}

struct Collected {
  std::vector<std::string> lines;
  CallbackSink sink;

  Collected()
      : sink([this](const Event& e) {
          lines.push_back(e.ToCsvLine());
          return Status::OK();
        }) {}
};

TEST_F(CheckpointTest, ResumeMatchesUninterruptedRunAtManyBoundaries) {
  const std::vector<Event> events = SyntheticStream(10000);

  Collected baseline;
  StreamReplayer full(FastOptions());
  auto full_stats = full.Replay(events, &baseline.sink);
  ASSERT_TRUE(full_stats.ok());
  ASSERT_EQ(full_stats->events_delivered, 10000u);
  ASSERT_GT(full_stats->markers, 0u);
  ASSERT_EQ(full_stats->controls, 2u);

  // Stop points straddle marker and control boundaries.
  for (const uint64_t stop : {1ul, 499ul, 500ul, 2500ul, 2501ul, 5000ul,
                              7500ul, 9999ul}) {
    SCOPED_TRACE("stop_after_events=" + std::to_string(stop));
    const std::string cp_path = Path("resume_" + std::to_string(stop));

    Collected part1;
    ReplayerOptions opts1 = FastOptions();
    opts1.stop_after_events = stop;
    opts1.checkpoint_path = cp_path;
    StreamReplayer replayer1(opts1);
    auto stats1 = replayer1.Replay(events, &part1.sink);
    ASSERT_TRUE(stats1.ok());
    EXPECT_TRUE(stats1->stopped_early);
    EXPECT_EQ(stats1->events_delivered, stop);
    EXPECT_GE(stats1->checkpoints_written, 1u);

    auto cp = ReplayCheckpoint::LoadFrom(cp_path);
    ASSERT_TRUE(cp.ok());
    EXPECT_EQ(cp->events_delivered, stop);

    Collected part2;
    StreamReplayer replayer2(FastOptions());
    auto stats2 = replayer2.Replay(events, &part2.sink, &*cp);
    ASSERT_TRUE(stats2.ok());

    // Resumed counters continue from the checkpoint: final totals match the
    // uninterrupted run.
    EXPECT_EQ(stats2->events_delivered, full_stats->events_delivered);
    EXPECT_EQ(stats2->markers, full_stats->markers);
    EXPECT_EQ(stats2->controls, full_stats->controls);
    EXPECT_EQ(stats2->entries_consumed, full_stats->entries_consumed);

    // The applied-event set is exactly-once: concatenating both segments
    // reproduces the baseline byte for byte.
    std::vector<std::string> combined = part1.lines;
    combined.insert(combined.end(), part2.lines.begin(), part2.lines.end());
    EXPECT_EQ(combined, baseline.lines);
  }
}

TEST_F(CheckpointTest, PeriodicCheckpointsLeaveResumableFinalRecord) {
  const std::vector<Event> events = SyntheticStream(1000);
  const std::string cp_path = Path("periodic");

  Collected collected;
  ReplayerOptions opts = FastOptions();
  opts.checkpoint_every = 100;
  opts.checkpoint_path = cp_path;
  StreamReplayer replayer(opts);
  auto stats = replayer.Replay(events, &collected.sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->checkpoints_written, 10u);

  auto cp = ReplayCheckpoint::LoadFrom(cp_path);
  ASSERT_TRUE(cp.ok());
  // The last periodic checkpoint covers the whole run.
  EXPECT_EQ(cp->events_delivered, 1000u);
  EXPECT_EQ(cp->entries_consumed, stats->entries_consumed);
}

TEST_F(CheckpointTest, WatchdogCancelLeavesResumableCheckpoint) {
  const std::vector<Event> events = SyntheticStream(2000);

  Collected baseline;
  StreamReplayer full(FastOptions());
  ASSERT_TRUE(full.Replay(events, &baseline.sink).ok());

  // The sink wedges at the 500th delivery: it stops returning until the
  // watchdog notices the frozen progress counter and fires the token.
  CancellationToken token;
  const std::string cp_path = Path("hung");
  std::vector<std::string> part1;
  CallbackSink stalling([&](const Event& e) {
    part1.push_back(e.ToCsvLine());
    if (part1.size() == 500) {
      while (!token.cancelled()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return Status::OK();
  });

  ReplayerOptions opts = FastOptions();
  opts.cancel = &token;
  opts.checkpoint_path = cp_path;
  StreamReplayer replayer(opts);

  WatchdogOptions wd_opts;
  wd_opts.stall_deadline = Duration::FromMillis(100);
  wd_opts.poll_interval = Duration::FromMillis(5);
  RunWatchdog watchdog(wd_opts);
  watchdog.Arm([&] { return replayer.progress(); },
               [&](uint64_t, Duration) {
                 token.RequestCancel("watchdog: no progress");
               });

  auto stats = replayer.Replay(events, &stalling);
  watchdog.Disarm();
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsCancelled());
  EXPECT_TRUE(watchdog.fired());

  // The abort flushed a checkpoint; resuming from it completes the stream
  // and reproduces the baseline sequence exactly once.
  auto cp = ReplayCheckpoint::LoadFrom(cp_path);
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(cp->events_delivered, part1.size());

  Collected part2;
  StreamReplayer resumed(FastOptions());
  auto stats2 = resumed.Replay(events, &part2.sink, &*cp);
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(stats2->events_delivered, 2000u);

  std::vector<std::string> combined = part1;
  combined.insert(combined.end(), part2.lines.begin(), part2.lines.end());
  EXPECT_EQ(combined, baseline.lines);
}

TEST_F(CheckpointTest, TelemetryBaselineCarriesAcrossResume) {
  const std::vector<Event> events = SyntheticStream(100);
  ReplayCheckpoint cp;  // resume from the very start, with prior telemetry
  cp.telemetry.retries = 5;
  cp.telemetry.backoff_s = 1.5;

  Collected collected;
  StreamReplayer replayer(FastOptions());
  auto stats = replayer.Replay(events, &collected.sink, &cp);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->telemetry.retries, 5u);
  EXPECT_DOUBLE_EQ(stats->telemetry.backoff_s, 1.5);
}

TEST_F(CheckpointTest, CheckpointRngStateRestoredOnResume) {
  const std::vector<Event> events = SyntheticStream(100);
  const std::string cp_path = Path("rng");

  Rng original(7);
  Collected part1;
  ReplayerOptions opts1 = FastOptions();
  opts1.stop_after_events = 10;
  opts1.checkpoint_path = cp_path;
  opts1.checkpoint_rng = &original;
  StreamReplayer replayer1(opts1);
  ASSERT_TRUE(replayer1.Replay(events, &part1.sink).ok());

  auto cp = ReplayCheckpoint::LoadFrom(cp_path);
  ASSERT_TRUE(cp.ok());

  // A differently seeded RNG handed to the resumed run must be overwritten
  // with the checkpointed state.
  Rng restored(99);
  Collected part2;
  ReplayerOptions opts2 = FastOptions();
  opts2.checkpoint_rng = &restored;
  StreamReplayer replayer2(opts2);
  ASSERT_TRUE(replayer2.Replay(events, &part2.sink, &*cp).ok());

  Rng reference(7);
  EXPECT_EQ(restored.NextU64(), reference.NextU64());
}

TEST_F(CheckpointTest, ResumeBeyondEndOfStreamIsInvalidArgument) {
  const std::vector<Event> events = SyntheticStream(50);
  ReplayCheckpoint cp;
  cp.entries_consumed = 1000;
  cp.events_delivered = 1000;

  Collected collected;
  StreamReplayer replayer(FastOptions());
  auto stats = replayer.Replay(events, &collected.sink, &cp);
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Sharded checkpoint/resume: the hash partition is deterministic, so a
// sharded run interrupted mid-epoch and resumed with fresh sinks must
// concatenate byte-identically with the uninterrupted sharded run in every
// lane, and the final counters must match.
// ---------------------------------------------------------------------------

struct ShardedCollected {
  std::vector<std::vector<std::string>> lane_lines;
  std::vector<std::unique_ptr<CallbackSink>> sinks;
  std::vector<EventSink*> sink_ptrs;

  explicit ShardedCollected(size_t shards) : lane_lines(shards) {
    for (size_t s = 0; s < shards; ++s) {
      sinks.push_back(std::make_unique<CallbackSink>([this, s](const Event& e) {
        lane_lines[s].push_back(e.ToCsvLine());
        return Status::OK();
      }));
      sink_ptrs.push_back(sinks.back().get());
    }
  }
};

ShardedReplayerOptions FastShardedOptions(size_t shards) {
  ShardedReplayerOptions options;
  options.shards = shards;
  options.total_rate_eps = 4e6;
  return options;
}

TEST_F(CheckpointTest, ShardedResumeConcatenatesByteIdenticallyPerLane) {
  constexpr size_t kShards = 4;
  const std::vector<Event> events = SyntheticStream(4000);

  ShardedCollected baseline(kShards);
  ShardedReplayer full(FastShardedOptions(kShards));
  auto full_stats = full.Replay(events, baseline.sink_ptrs);
  ASSERT_TRUE(full_stats.ok()) << full_stats.status();
  ASSERT_EQ(full_stats->aggregate.events_delivered, 4000u);

  // Stop points deliberately straddle marker/control epochs and batch
  // boundaries (1777 is mid-epoch and mid-batch).
  for (const uint64_t stop : {1ul, 500ul, 1777ul, 3500ul}) {
    SCOPED_TRACE("stop_after_events=" + std::to_string(stop));
    const std::string cp_path = Path("sharded_resume_" + std::to_string(stop));

    ShardedCollected part1(kShards);
    ShardedReplayerOptions opts1 = FastShardedOptions(kShards);
    opts1.stop_after_events = stop;
    opts1.checkpoint_path = cp_path;
    ShardedReplayer replayer1(opts1);
    auto stats1 = replayer1.Replay(events, part1.sink_ptrs);
    ASSERT_TRUE(stats1.ok()) << stats1.status();
    EXPECT_TRUE(stats1->aggregate.stopped_early);
    EXPECT_EQ(stats1->aggregate.events_delivered, stop);

    auto cp = ReplayCheckpoint::LoadFrom(cp_path);
    ASSERT_TRUE(cp.ok()) << cp.status();
    EXPECT_EQ(cp->events_delivered, stop);

    ShardedCollected part2(kShards);
    ShardedReplayer replayer2(FastShardedOptions(kShards));
    auto stats2 = replayer2.Replay(events, part2.sink_ptrs, &*cp);
    ASSERT_TRUE(stats2.ok()) << stats2.status();

    EXPECT_EQ(stats2->aggregate.events_delivered,
              full_stats->aggregate.events_delivered);
    EXPECT_EQ(stats2->aggregate.markers, full_stats->aggregate.markers);
    EXPECT_EQ(stats2->aggregate.controls, full_stats->aggregate.controls);
    EXPECT_EQ(stats2->aggregate.entries_consumed,
              full_stats->aggregate.entries_consumed);

    for (size_t s = 0; s < kShards; ++s) {
      std::vector<std::string> combined = part1.lane_lines[s];
      combined.insert(combined.end(), part2.lane_lines[s].begin(),
                      part2.lane_lines[s].end());
      EXPECT_EQ(combined, baseline.lane_lines[s]) << "lane " << s;
    }
  }
}

TEST_F(CheckpointTest, ShardedPeriodicCheckpointsAreQuiescedAndFinal) {
  constexpr size_t kShards = 4;
  const std::vector<Event> events = SyntheticStream(2000);
  const std::string cp_path = Path("sharded_periodic");

  ShardedCollected collected(kShards);
  ShardedReplayerOptions opts = FastShardedOptions(kShards);
  opts.checkpoint_every = 250;
  opts.checkpoint_path = cp_path;
  ShardedReplayer replayer(opts);
  auto stats = replayer.Replay(events, collected.sink_ptrs);
  ASSERT_TRUE(stats.ok()) << stats.status();
  // 8 periodic barrier checkpoints plus the final record.
  EXPECT_GE(stats->aggregate.checkpoints_written, 9u);

  auto cp = ReplayCheckpoint::LoadFrom(cp_path);
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(cp->events_delivered, 2000u);
  EXPECT_EQ(cp->entries_consumed, stats->aggregate.entries_consumed);
}

// ---------------------------------------------------------------------------
// Generation-rotation boundaries. The randomized torn/corrupt fallback
// sweeps live in checkpoint_fuzz_test.cc; these pin the exact edges: the
// very first save into an empty store, saving at exactly the configured
// generation count, and a middle generation that exists but cannot be
// read at all (as opposed to parsing badly).
// ---------------------------------------------------------------------------

TEST_F(CheckpointTest, FirstSaveIntoEmptyStoreCreatesOnlyGenerationZero) {
  const std::string base = Path("gen_first");
  CheckpointStore store({base, /*generations=*/3});
  ReplayCheckpoint cp = SampleCheckpoint();
  ASSERT_TRUE(store.Save(cp).ok());

  // Rotating zero prior generations must not conjure phantom slots.
  EXPECT_TRUE(std::filesystem::exists(CheckpointStore::GenerationPath(base, 0)));
  EXPECT_FALSE(
      std::filesystem::exists(CheckpointStore::GenerationPath(base, 1)));
  EXPECT_FALSE(
      std::filesystem::exists(CheckpointStore::GenerationPath(base, 2)));

  auto loaded = CheckpointStore::LoadLatestGood(base);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->checkpoint, cp);
  EXPECT_EQ(loaded->generation, 0u);
  EXPECT_EQ(loaded->fallbacks, 0u);
  EXPECT_TRUE(loaded->rejected.empty());
}

TEST_F(CheckpointTest, SingleGenerationStoreOverwritesInPlace) {
  const std::string base = Path("gen_single");
  CheckpointStore store({base, /*generations=*/1});
  for (const uint64_t n : {100u, 200u, 300u}) {
    ReplayCheckpoint cp;
    cp.entries_consumed = n;
    ASSERT_TRUE(store.Save(cp).ok());
  }
  // Classic single-file behavior: no ".1" sibling ever appears.
  EXPECT_FALSE(
      std::filesystem::exists(CheckpointStore::GenerationPath(base, 1)));
  auto loaded = CheckpointStore::LoadLatestGood(base);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->checkpoint.entries_consumed, 300u);
}

TEST_F(CheckpointTest, RotationAtExactlyMaxGenerationsDropsOldest) {
  const std::string base = Path("gen_max");
  CheckpointStore store({base, /*generations=*/3});
  auto save = [&](uint64_t n) {
    ReplayCheckpoint cp;
    cp.entries_consumed = n;
    ASSERT_TRUE(store.Save(cp).ok());
  };
  auto slot = [&](size_t g) {
    auto cp = ReplayCheckpoint::LoadFrom(CheckpointStore::GenerationPath(base, g));
    EXPECT_TRUE(cp.ok()) << "generation " << g << ": " << cp.status();
    return cp.ok() ? cp->entries_consumed : 0u;
  };

  // The third save fills the store to exactly its configured capacity.
  save(100);
  save(200);
  save(300);
  EXPECT_EQ(slot(0), 300u);
  EXPECT_EQ(slot(1), 200u);
  EXPECT_EQ(slot(2), 100u);
  EXPECT_FALSE(
      std::filesystem::exists(CheckpointStore::GenerationPath(base, 3)));

  // The save after the boundary discards the oldest; capacity never grows.
  save(400);
  EXPECT_EQ(slot(0), 400u);
  EXPECT_EQ(slot(1), 300u);
  EXPECT_EQ(slot(2), 200u);
  EXPECT_FALSE(
      std::filesystem::exists(CheckpointStore::GenerationPath(base, 3)));
}

TEST_F(CheckpointTest, UnreadableMiddleGenerationFallsBackToOlder) {
  const std::string base = Path("gen_unreadable");
  CheckpointStore store({base, /*generations=*/3});
  ReplayCheckpoint oldest;
  oldest.entries_consumed = 100;
  ReplayCheckpoint middle;
  middle.entries_consumed = 200;
  ReplayCheckpoint newest;
  newest.entries_consumed = 300;
  ASSERT_TRUE(store.Save(oldest).ok());
  ASSERT_TRUE(store.Save(middle).ok());
  ASSERT_TRUE(store.Save(newest).ok());

  // Generation 0 is torn; generation 1 exists but cannot be read (a
  // directory stands in for an unreadable file — permission bits are no
  // barrier when tests run as root). The loader must fall back past BOTH
  // failure kinds to the intact generation 2.
  {
    std::ofstream torn(CheckpointStore::GenerationPath(base, 0),
                       std::ios::binary | std::ios::trunc);
    torn << "# graphtides replay checkpoint\nversion=2\nentries_cons";
  }
  const std::string mid_path = CheckpointStore::GenerationPath(base, 1);
  std::filesystem::remove(mid_path);
  std::filesystem::create_directory(mid_path);

  auto loaded = CheckpointStore::LoadLatestGood(base);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->checkpoint.entries_consumed, 100u);
  EXPECT_EQ(loaded->generation, 2u);
  EXPECT_EQ(loaded->fallbacks, 2u);
  EXPECT_EQ(loaded->rejected.size(), 2u);
}

TEST_F(CheckpointTest, ShardedCheckpointRecordsMidStreamRateFactor) {
  constexpr size_t kShards = 2;
  // SyntheticStream raises the factor to 2.0 at the quarter mark, so a
  // checkpoint taken past it must carry factor 2.0 for the resumed lanes.
  const std::vector<Event> events = SyntheticStream(2000);
  const std::string cp_path = Path("sharded_factor");

  ShardedCollected collected(kShards);
  ShardedReplayerOptions opts = FastShardedOptions(kShards);
  opts.stop_after_events = 1200;
  opts.checkpoint_path = cp_path;
  ShardedReplayer replayer(opts);
  ASSERT_TRUE(replayer.Replay(events, collected.sink_ptrs).ok());

  auto cp = ReplayCheckpoint::LoadFrom(cp_path);
  ASSERT_TRUE(cp.ok());
  EXPECT_DOUBLE_EQ(cp->rate_factor, 2.0);
}

}  // namespace
}  // namespace graphtides
