#include "replayer/resilient_sink.h"

#include <gtest/gtest.h>

#include <vector>

#include "faults/chaos_sink.h"
#include "replayer/replayer.h"
#include "replayer/tcp.h"
#include "stream/event.h"

namespace graphtides {
namespace {

// Inner sink that fails a scripted number of times per delivery before
// succeeding, with a configurable error code.
class FlakySink final : public EventSink {
 public:
  explicit FlakySink(uint32_t failures_per_delivery,
                     StatusCode code = StatusCode::kUnavailable)
      : failures_per_delivery_(failures_per_delivery), code_(code) {}

  Status Deliver(const Event&) override {
    ++attempts;
    if (fails_so_far_ < failures_per_delivery_) {
      ++fails_so_far_;
      return Status(code_, "flaky");
    }
    fails_so_far_ = 0;
    ++delivered;
    return Status::OK();
  }
  Status Finish() override { return Status::OK(); }

  uint64_t attempts = 0;
  uint64_t delivered = 0;

 private:
  uint32_t failures_per_delivery_;
  StatusCode code_;
  uint32_t fails_so_far_ = 0;
};

TEST(ResilientSinkTest, RetriesTransientFailuresUntilSuccess) {
  FlakySink inner(3);
  ResilientSinkOptions options;
  options.retry_budget = 5;
  ResilientSink sink(&inner, options);
  sink.set_sleep_fn([](Duration) {});

  ASSERT_TRUE(sink.Deliver(Event::AddVertex(1)).ok());
  EXPECT_EQ(inner.attempts, 4u);
  EXPECT_EQ(inner.delivered, 1u);
  EXPECT_EQ(sink.stats().retries, 3u);
  EXPECT_EQ(sink.stats().giveups, 0u);
}

TEST(ResilientSinkTest, NonRetryableErrorReturnsImmediately) {
  FlakySink inner(100, StatusCode::kInvalidArgument);
  ResilientSink sink(&inner, ResilientSinkOptions{});
  sink.set_sleep_fn([](Duration) {});
  EXPECT_TRUE(sink.Deliver(Event::AddVertex(1)).IsInvalidArgument());
  EXPECT_EQ(inner.attempts, 1u);
  EXPECT_EQ(sink.stats().retries, 0u);
  EXPECT_EQ(sink.stats().giveups, 1u);
}

TEST(ResilientSinkTest, BackoffGrowsExponentiallyAndIsCapped) {
  FlakySink inner(6);
  ResilientSinkOptions options;
  options.retry_budget = 10;
  options.initial_backoff = Duration::FromMillis(1);
  options.backoff_multiplier = 2.0;
  options.max_backoff = Duration::FromMillis(4);
  options.jitter = 0.0;  // deterministic durations for this test
  ResilientSink sink(&inner, options);
  std::vector<int64_t> sleeps_ms;
  sink.set_sleep_fn([&](Duration d) { sleeps_ms.push_back(d.millis()); });

  ASSERT_TRUE(sink.Deliver(Event::AddVertex(1)).ok());
  // 1, 2, 4, then capped at 4.
  ASSERT_EQ(sleeps_ms.size(), 6u);
  EXPECT_EQ(sleeps_ms[0], 1);
  EXPECT_EQ(sleeps_ms[1], 2);
  EXPECT_EQ(sleeps_ms[2], 4);
  EXPECT_EQ(sleeps_ms[3], 4);
  EXPECT_EQ(sleeps_ms[5], 4);
}

TEST(ResilientSinkTest, JitterStaysWithinConfiguredFraction) {
  FlakySink inner(1);
  ResilientSinkOptions options;
  options.retry_budget = 2;
  options.initial_backoff = Duration::FromMillis(10);
  options.jitter = 0.2;
  ResilientSink sink(&inner, options);
  std::vector<int64_t> sleeps;
  sink.set_sleep_fn([&](Duration d) { sleeps.push_back(d.nanos()); });
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(sink.Deliver(Event::AddVertex(1)).ok());
  }
  const int64_t base = Duration::FromMillis(10).nanos();
  for (int64_t ns : sleeps) {
    EXPECT_GE(ns, static_cast<int64_t>(base * 0.8 - 1));
    EXPECT_LE(ns, static_cast<int64_t>(base * 1.2 + 1));
  }
}

TEST(ResilientSinkTest, FailFastReturnsErrorAfterBudgetExhausted) {
  FlakySink inner(100);
  ResilientSinkOptions options;
  options.retry_budget = 3;
  options.policy = DegradationPolicy::kFailFast;
  ResilientSink sink(&inner, options);
  sink.set_sleep_fn([](Duration) {});

  const Status st = sink.Deliver(Event::AddVertex(1));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(inner.attempts, 4u);  // initial + 3 retries
  EXPECT_EQ(sink.stats().retries, 3u);
  EXPECT_EQ(sink.stats().giveups, 1u);
  EXPECT_EQ(sink.stats().drops, 0u);
}

TEST(ResilientSinkTest, DropAndCountReportsSuccessAndCountsTheDrop) {
  FlakySink inner(100);
  ResilientSinkOptions options;
  options.retry_budget = 2;
  options.policy = DegradationPolicy::kDropAndCount;
  ResilientSink sink(&inner, options);
  sink.set_sleep_fn([](Duration) {});

  EXPECT_TRUE(sink.Deliver(Event::AddVertex(1)).ok());
  EXPECT_EQ(sink.stats().drops, 1u);
  EXPECT_EQ(sink.stats().giveups, 0u);
  EXPECT_EQ(inner.delivered, 0u);
}

TEST(ResilientSinkTest, BlockPolicyRetriesPastTheBudget) {
  FlakySink inner(50);  // far beyond the nominal budget
  ResilientSinkOptions options;
  options.retry_budget = 3;
  options.policy = DegradationPolicy::kBlock;
  ResilientSink sink(&inner, options);
  sink.set_sleep_fn([](Duration) {});

  EXPECT_TRUE(sink.Deliver(Event::AddVertex(1)).ok());
  EXPECT_EQ(inner.attempts, 51u);
  EXPECT_EQ(sink.stats().retries, 50u);
}

TEST(ResilientSinkTest, DeliverTimeoutIsTerminalEvenUnderBlock) {
  FlakySink inner(1000000);
  ResilientSinkOptions options;
  options.policy = DegradationPolicy::kBlock;
  options.deliver_timeout = Duration::FromMillis(10);
  ResilientSink sink(&inner, options);
  VirtualClock clock;
  sink.set_clock(&clock);
  // Each backoff advances the virtual clock, so the timeout fires after a
  // bounded number of attempts.
  sink.set_sleep_fn([&](Duration d) { clock.Advance(d); });

  const Status st = sink.Deliver(Event::AddVertex(1));
  EXPECT_TRUE(st.IsTimeout()) << st.ToString();
  EXPECT_GT(inner.attempts, 1u);
  EXPECT_LT(inner.attempts, 100u);
}

TEST(ResilientSinkTest, ReconnectsOnIoError) {
  FlakySink inner(2, StatusCode::kIoError);
  ResilientSinkOptions options;
  options.retry_budget = 5;
  int reconnects = 0;
  ResilientSink sink(&inner, options, [&] {
    ++reconnects;
    return Status::OK();
  });
  sink.set_sleep_fn([](Duration) {});

  ASSERT_TRUE(sink.Deliver(Event::AddVertex(1)).ok());
  EXPECT_EQ(reconnects, 2);
  EXPECT_EQ(sink.stats().reconnects, 2u);
}

TEST(ResilientSinkTest, FailedReconnectIsCountedAndRetried) {
  FlakySink inner(2, StatusCode::kIoError);
  ResilientSinkOptions options;
  options.retry_budget = 5;
  int calls = 0;
  ResilientSink sink(&inner, options, [&]() -> Status {
    ++calls;
    if (calls == 1) return Status::IoError("reconnect refused");
    return Status::OK();
  });
  sink.set_sleep_fn([](Duration) {});

  ASSERT_TRUE(sink.Deliver(Event::AddVertex(1)).ok());
  EXPECT_EQ(sink.stats().failed_reconnects, 1u);
  EXPECT_EQ(sink.stats().reconnects, 1u);
}

TEST(ResilientSinkTest, PreconditionFailedRetryableOnlyWithReconnectHook) {
  {
    FlakySink inner(1, StatusCode::kPreconditionFailed);
    ResilientSink sink(&inner, ResilientSinkOptions{});
    sink.set_sleep_fn([](Duration) {});
    EXPECT_TRUE(sink.Deliver(Event::AddVertex(1)).IsPreconditionFailed());
  }
  {
    FlakySink inner(1, StatusCode::kPreconditionFailed);
    ResilientSink sink(&inner, ResilientSinkOptions{},
                       [] { return Status::OK(); });
    sink.set_sleep_fn([](Duration) {});
    EXPECT_TRUE(sink.Deliver(Event::AddVertex(1)).ok());
  }
}

TEST(ResilientSinkTest, ParseDegradationPolicyVocabulary) {
  EXPECT_EQ(*ParseDegradationPolicy("fail"), DegradationPolicy::kFailFast);
  EXPECT_EQ(*ParseDegradationPolicy("failfast"), DegradationPolicy::kFailFast);
  EXPECT_EQ(*ParseDegradationPolicy("drop"), DegradationPolicy::kDropAndCount);
  EXPECT_EQ(*ParseDegradationPolicy("block"), DegradationPolicy::kBlock);
  EXPECT_FALSE(ParseDegradationPolicy("explode").ok());
}

TEST(ResilientSinkTest, TelemetryReconcilesWithChaosSchedule) {
  // ResilientSink(ChaosSink(counting sink)): every injected fault must be
  // absorbed by a retry, and the merged telemetry must reconcile exactly.
  class CountingSink final : public EventSink {
   public:
    Status Deliver(const Event&) override {
      ++delivered;
      return Status::OK();
    }
    Status Finish() override { return Status::OK(); }
    uint64_t delivered = 0;
  };

  CountingSink bottom;
  ChaosOptions chaos_options;
  chaos_options.seed = 99;
  chaos_options.fail_probability = 0.02;
  ChaosSink chaos(&bottom, chaos_options);
  ResilientSinkOptions resilient_options;
  resilient_options.retry_budget = 50;  // ample: nothing gets dropped
  ResilientSink sink(&chaos, resilient_options);
  sink.set_sleep_fn([](Duration) {});

  const size_t kEvents = 10000;
  for (size_t i = 0; i < kEvents; ++i) {
    ASSERT_TRUE(sink.Deliver(Event::AddVertex(i)).ok());
  }

  EXPECT_EQ(bottom.delivered, kEvents);
  EXPECT_EQ(chaos.stats().forwarded, kEvents);
  EXPECT_GT(chaos.stats().injected_failures, 0u);
  // Every failed attempt was retried; no giveups, no drops.
  EXPECT_EQ(sink.stats().retries, chaos.stats().injected_failures);
  EXPECT_EQ(sink.stats().giveups, 0u);
  EXPECT_EQ(sink.stats().drops, 0u);
  const SinkTelemetry t = sink.Telemetry();
  EXPECT_EQ(t.retries, sink.stats().retries);
  EXPECT_EQ(t.injected_failures, chaos.stats().injected_failures);
}

// The acceptance e2e: 50k events through ResilientSink(ChaosSink(TcpSink))
// with injected disconnects and stalls. Must complete with zero process
// crashes, seed-stable fault counts, and exactly reconciling telemetry.
struct E2eOutcome {
  uint64_t injected_failures = 0;
  uint64_t injected_disconnects = 0;
  uint64_t stalls = 0;
  uint64_t retries = 0;
  uint64_t reconnects = 0;
  uint64_t lines = 0;
  uint64_t connections = 0;
};

E2eOutcome RunChaoticTcpReplay() {
  constexpr size_t kEvents = 50000;

  TcpLineServer server;
  server.set_max_connections(1000);
  auto port = server.Start(nullptr);
  EXPECT_TRUE(port.ok());

  TcpSink tcp;
  EXPECT_TRUE(tcp.Connect("127.0.0.1", *port).ok());

  ChaosOptions chaos_options;
  chaos_options.seed = 1234;
  chaos_options.fail_probability = 0.0005;
  chaos_options.disconnect_probability = 0.0002;
  chaos_options.stall_probability = 0.0005;
  chaos_options.stall = Duration::FromMicros(50);
  ChaosSink chaos(&tcp, chaos_options, [&tcp] { tcp.Sever(); });

  ResilientSinkOptions resilient_options;
  resilient_options.retry_budget = 100;
  resilient_options.initial_backoff = Duration::FromMicros(10);
  resilient_options.max_backoff = Duration::FromMillis(1);
  ResilientSink sink(&chaos, resilient_options,
                     [&tcp] { return tcp.Reconnect(); });

  std::vector<Event> events;
  events.reserve(kEvents);
  for (VertexId v = 0; v < kEvents; ++v) events.push_back(Event::AddVertex(v));

  ReplayerOptions replay_options;
  replay_options.base_rate_eps = 1e6;
  StreamReplayer replayer(replay_options);
  auto stats = replayer.Replay(events, &sink);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  server.Stop();
  server.Join();

  E2eOutcome out;
  out.injected_failures = chaos.stats().injected_failures;
  out.injected_disconnects = chaos.stats().injected_disconnects;
  out.stalls = chaos.stats().stalls;
  out.retries = sink.stats().retries;
  out.reconnects = sink.stats().reconnects;
  out.lines = server.lines_received();
  out.connections = server.connections_served();

  if (stats.ok()) {
    EXPECT_EQ(stats->events_delivered, kEvents);
    // Replayer-visible telemetry reconciles with both layers' counters.
    EXPECT_EQ(stats->telemetry.retries, out.retries);
    EXPECT_EQ(stats->telemetry.reconnects, out.reconnects);
    EXPECT_EQ(stats->telemetry.injected_failures, out.injected_failures);
    EXPECT_EQ(stats->telemetry.injected_disconnects,
              out.injected_disconnects);
  }
  return out;
}

TEST(ResilientSinkE2eTest, ChaoticTcpReplayCompletesAndReconciles) {
  const E2eOutcome out = RunChaoticTcpReplay();

  // Chaos actually happened.
  EXPECT_GT(out.injected_failures, 0u);
  EXPECT_GT(out.injected_disconnects, 0u);
  EXPECT_GT(out.stalls, 0u);

  // Exact reconciliation: every chaos fault became exactly one retry; every
  // forced disconnect forced exactly one reconnect (budget was ample).
  EXPECT_EQ(out.retries, out.injected_failures + out.injected_disconnects);
  EXPECT_EQ(out.reconnects, out.injected_disconnects);
  EXPECT_EQ(out.connections, 1u + out.injected_disconnects);

  // Chaos fails *before* forwarding and the TcpSink buffer survives
  // Sever/Reconnect, so the server saw every event exactly once.
  EXPECT_EQ(out.lines, 50000u);
}

TEST(ResilientSinkE2eTest, ChaoticTcpReplayFaultCountsAreSeedStable) {
  const E2eOutcome a = RunChaoticTcpReplay();
  const E2eOutcome b = RunChaoticTcpReplay();
  EXPECT_EQ(a.injected_failures, b.injected_failures);
  EXPECT_EQ(a.injected_disconnects, b.injected_disconnects);
  EXPECT_EQ(a.stalls, b.stalls);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.reconnects, b.reconnects);
  EXPECT_EQ(a.lines, b.lines);
}

}  // namespace
}  // namespace graphtides
