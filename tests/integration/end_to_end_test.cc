// End-to-end pipeline tests: generator -> stream file -> replayer ->
// in-process SUT (graph + online computations) -> harness loggers ->
// collector -> marker correlation and analysis. This mirrors the full
// GraphTides evaluation cycle (Fig. 2) in a single process.
#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "algorithms/online_pagerank.h"
#include "algorithms/pagerank.h"
#include "faults/fault_injector.h"
#include "generator/models/social_network_model.h"
#include "generator/stream_generator.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "harness/log_collector.h"
#include "harness/experiment.h"
#include "harness/marker_correlator.h"
#include "harness/metrics_logger.h"
#include "replayer/replayer.h"
#include "stream/stream_file.h"
#include "stream/validator.h"

namespace graphtides {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gt_e2e_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TEST_F(EndToEndTest, GenerateWriteReplayComputeAnalyze) {
  // 1. Generate a social-network stream with periodic markers.
  SocialNetworkModel model;
  StreamGeneratorOptions gen_options;
  gen_options.rounds = 5000;
  gen_options.seed = 12;
  gen_options.marker_interval = 1000;
  auto generated = StreamGenerator(&model, gen_options).Generate();
  ASSERT_TRUE(generated.ok());

  // 2. Round-trip through the stream file format.
  ASSERT_TRUE(WriteStreamFile(Path("social.gts"), generated->events).ok());

  // 3. Replay from disk into an in-process SUT: the reference graph plus
  //    an online PageRank, with loggers capturing markers and progress.
  WallClock wall;
  MetricsLogger replayer_log("replayer", &wall);
  MetricsLogger sut_log("sut", &wall);

  Graph graph;
  OnlinePageRank rank;
  size_t applied = 0;
  CallbackSink sink([&](const Event& e) {
    GT_RETURN_NOT_OK(graph.Apply(e));
    rank.OnEventApplied(e);
    rank.ProcessPending(64);  // interleave computation with ingestion
    if (++applied % 1000 == 0) {
      sut_log.Log("vertices", static_cast<double>(graph.num_vertices()));
    }
    return Status::OK();
  });

  ReplayerOptions replay_options;
  replay_options.base_rate_eps = 500000.0;
  StreamReplayer replayer(replay_options);
  auto stats = replayer.ReplayFile(Path("social.gts"), &sink);
  ASSERT_TRUE(stats.ok());

  // Marker log: forward into the harness logger, simulating the paper's
  // watermark flow; the SUT "observes" each marker when its preceding
  // events are applied (same thread here, so latency ~ 0 but the plumbing
  // is exercised end to end).
  for (const MarkerRecord& m : stats->marker_log) {
    replayer_log.LogAt(m.time, "marker_sent", 1.0, m.label);
    sut_log.LogAt(m.time, "marker_seen", 1.0, m.label);
  }

  // 4. Collect and analyze.
  LogCollector collector;
  collector.AddLogger(&replayer_log);
  collector.AddLogger(&sut_log);
  const ResultLog log = collector.Collect();
  ASSERT_TRUE(log.WriteCsv(Path("result.csv")).ok());
  auto reloaded = ResultLog::ReadCsv(Path("result.csv"));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->size(), log.size());

  const auto report =
      CorrelateMarkers(*reloaded, "marker_sent", "marker_seen");
  EXPECT_EQ(report.matched.size(), stats->marker_log.size());
  EXPECT_TRUE(report.unmatched.empty());

  // 5. The online computation result approximates the batch reference.
  for (int i = 0; i < 1000 && rank.HasPendingWork(); ++i) {
    rank.ProcessPending(10000);
  }
  const CsrGraph csr = CsrGraph::FromGraph(graph);
  const PageRankResult exact = PageRank(csr);
  const auto online = rank.NormalizedRanks();
  std::vector<double> approx(csr.num_vertices(), 0.0);
  for (CsrGraph::Index v = 0; v < csr.num_vertices(); ++v) {
    auto it = online.find(csr.IdOf(v));
    if (it != online.end()) approx[v] = it->second;
  }
  EXPECT_LT(MedianRelativeError(approx, exact.ranks), 0.15);

  // Sanity: the stream really drove the graph.
  EXPECT_EQ(stats->events_delivered, applied);
  EXPECT_EQ(graph.num_vertices(), generated->final_vertices);
  EXPECT_EQ(graph.num_edges(), generated->final_edges);
}

TEST_F(EndToEndTest, FaultInjectedReplayDegradesGracefully) {
  SocialNetworkModel model;
  StreamGeneratorOptions gen_options;
  gen_options.rounds = 3000;
  gen_options.seed = 13;
  auto generated = StreamGenerator(&model, gen_options).Generate();
  ASSERT_TRUE(generated.ok());

  FaultOptions fault_options;
  fault_options.drop_probability = 0.02;
  fault_options.duplicate_probability = 0.02;
  fault_options.reorder_probability = 0.05;
  fault_options.seed = 99;
  FaultReport fault_report;
  const auto faulty =
      InjectFaults(generated->events, fault_options, &fault_report);
  EXPECT_GT(fault_report.dropped, 0u);

  // A robust consumer rejects precondition-violating events and keeps
  // going: the graph stays internally consistent.
  Graph graph;
  size_t rejected = 0;
  CallbackSink sink([&](const Event& e) {
    if (!graph.Apply(e).ok()) ++rejected;
    return Status::OK();
  });
  ReplayerOptions replay_options;
  replay_options.base_rate_eps = 500000.0;
  StreamReplayer replayer(replay_options);
  auto stats = replayer.Replay(faulty, &sink);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(rejected, 0u);

  // The surviving graph matches an offline validation of the same faulty
  // stream.
  const StreamValidationReport validation = ValidateStream(faulty);
  EXPECT_EQ(graph.num_vertices(), validation.final_vertices);
  EXPECT_EQ(graph.num_edges(), validation.final_edges);
  EXPECT_EQ(rejected, validation.violations.size());
}

TEST_F(EndToEndTest, TwoConfigurationsComparedWithConfidenceIntervals) {
  // Methodology (§4.5) smoke test on a real component: replayer achieved
  // rate at two target rates, n runs each, compared via CI95.
  auto measure = [&](double rate, uint64_t seed) {
    std::vector<Event> events;
    for (VertexId v = 0; v < 2000; ++v) {
      events.push_back(Event::AddVertex(v + seed * 100000));
    }
    ReplayerOptions options;
    options.base_rate_eps = rate;
    StreamReplayer replayer(options);
    NullSink sink;
    auto stats = replayer.Replay(events, &sink);
    EXPECT_TRUE(stats.ok());
    return stats->AchievedRateEps();
  };
  std::vector<double> slow;
  std::vector<double> fast;
  for (uint64_t r = 0; r < 5; ++r) {
    slow.push_back(measure(50000.0, r));
    fast.push_back(measure(200000.0, r));
  }
  const Comparison cmp = CompareByConfidenceIntervals(slow, fast);
  EXPECT_TRUE(cmp.significant);
  EXPECT_GT(cmp.mean_difference, 100000.0);
}

}  // namespace
}  // namespace graphtides
