#include "harness/run_watchdog.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace graphtides {
namespace {

WatchdogOptions FastOptions(double deadline_ms) {
  WatchdogOptions options;
  options.stall_deadline = Duration::FromMillis(static_cast<int64_t>(deadline_ms));
  options.poll_interval = Duration::FromMillis(2);
  return options;
}

TEST(RunWatchdogTest, FiresOnceOnStalledProgress) {
  RunWatchdog watchdog(FastOptions(40));
  std::atomic<int> fires{0};
  std::atomic<uint64_t> reported_progress{0};
  watchdog.Arm([] { return 123u; },  // constant: never advances
               [&](uint64_t last, Duration stalled) {
                 ++fires;
                 reported_progress = last;
                 EXPECT_GE(stalled.seconds(), 0.04);
               });
  // Wait well past several deadlines: the hang action must fire exactly once.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  EXPECT_TRUE(watchdog.fired());
  EXPECT_EQ(fires.load(), 1);
  EXPECT_EQ(reported_progress.load(), 123u);
  EXPECT_EQ(watchdog.last_progress(), 123u);
  watchdog.Disarm();
}

TEST(RunWatchdogTest, DoesNotFireWhileProgressAdvances) {
  RunWatchdog watchdog(FastOptions(50));
  std::atomic<uint64_t> counter{0};
  std::atomic<bool> running{true};
  std::thread worker([&] {
    while (running) {
      ++counter;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  watchdog.Arm([&] { return counter.load(); },
               [](uint64_t, Duration) { FAIL() << "watchdog fired on a live run"; });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_FALSE(watchdog.fired());
  watchdog.Disarm();
  running = false;
  worker.join();
}

TEST(RunWatchdogTest, DisarmReturnsPromptlyWithLongDeadline) {
  RunWatchdog watchdog(FastOptions(30000));
  watchdog.Arm([] { return 0u; }, [](uint64_t, Duration) {});
  const auto start = std::chrono::steady_clock::now();
  watchdog.Disarm();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Disarm must not wait out the 30s deadline (or even one poll tick's
  // worth of slack beyond scheduling noise).
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);
  EXPECT_FALSE(watchdog.fired());
}

TEST(RunWatchdogTest, DisarmIsIdempotent) {
  RunWatchdog watchdog(FastOptions(40));
  watchdog.Arm([] { return 0u; }, [](uint64_t, Duration) {});
  watchdog.Disarm();
  watchdog.Disarm();  // no crash, no hang
}

TEST(RunWatchdogTest, ReusableAcrossRuns) {
  RunWatchdog watchdog(FastOptions(40));

  // First run hangs.
  std::atomic<int> fires{0};
  watchdog.Arm([] { return 7u; }, [&](uint64_t, Duration) { ++fires; });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  watchdog.Disarm();
  EXPECT_TRUE(watchdog.fired());
  EXPECT_EQ(fires.load(), 1);

  // Second run is live: re-arming resets the fired flag.
  std::atomic<uint64_t> counter{0};
  std::atomic<bool> running{true};
  std::thread worker([&] {
    while (running) {
      ++counter;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  watchdog.Arm([&] { return counter.load(); }, [&](uint64_t, Duration) { ++fires; });
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_FALSE(watchdog.fired());
  watchdog.Disarm();
  running = false;
  worker.join();
  EXPECT_EQ(fires.load(), 1);
}

TEST(RunWatchdogTest, DestructorDisarms) {
  std::atomic<int> fires{0};
  {
    RunWatchdog watchdog(FastOptions(30000));
    watchdog.Arm([] { return 0u; }, [&](uint64_t, Duration) { ++fires; });
    // Falling out of scope must join the thread without firing.
  }
  EXPECT_EQ(fires.load(), 0);
}

}  // namespace
}  // namespace graphtides
