#include "harness/campaign.h"

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "sim/process.h"
#include "sim/simulator.h"

namespace graphtides {
namespace {

CampaignOptions FastOptions(size_t repetitions) {
  CampaignOptions options;
  options.experiment.repetitions = repetitions;
  options.experiment.base_seed = 42;
  options.watchdog.stall_deadline = Duration::FromMillis(60);
  options.watchdog.poll_interval = Duration::FromMillis(5);
  return options;
}

// A cooperative hang: freeze the heartbeat and wait for the watchdog.
Status SpinUntilCancelled(const RunContext& ctx) {
  if (ctx.report_progress) ctx.report_progress(1);
  while (ctx.cancel == nullptr || !ctx.cancel->cancelled()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Status::Cancelled(ctx.cancel->reason());
}

TEST(CampaignSeedTest, AttemptZeroMatchesExperimentRunnerSchedule) {
  const uint64_t base = 42;
  for (size_t c : {0u, 1u, 3u}) {
    for (size_t r : {0u, 1u, 29u}) {
      EXPECT_EQ(CampaignSeed(base, c, r, 0), base + c * 1000003ULL + r);
    }
  }
}

TEST(CampaignSeedTest, RetriesGetFreshDistinctSeeds) {
  std::set<uint64_t> seeds;
  for (size_t attempt = 0; attempt < 5; ++attempt) {
    seeds.insert(CampaignSeed(42, 0, 0, attempt));
  }
  EXPECT_EQ(seeds.size(), 5u);
  // A different slot's retry schedule is also distinct.
  EXPECT_NE(CampaignSeed(42, 0, 0, 1), CampaignSeed(42, 0, 1, 1));
}

TEST(CampaignTest, FaultFreeCampaignCompletesWithFirstAttemptSeeds) {
  std::vector<uint64_t> seeds;
  CampaignSupervisor supervisor({}, FastOptions(5));
  auto report = supervisor.Run(
      [&](const ExperimentConfig&, const RunContext& ctx) -> Result<RunOutcome> {
        seeds.push_back(ctx.seed);
        if (ctx.report_progress) ctx.report_progress(ctx.run_index + 1);
        RunOutcome out;
        out["value"] = static_cast<double>(ctx.run_index);
        return out;
      });
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->total_completed, 5u);
  EXPECT_EQ(report->total_failed, 0u);
  EXPECT_EQ(report->total_hung, 0u);
  EXPECT_EQ(report->total_retried, 0u);
  ASSERT_EQ(seeds.size(), 5u);
  for (size_t r = 0; r < 5; ++r) {
    EXPECT_EQ(seeds[r], 42u + r);  // ExperimentRunner's schedule, config 0
  }
  ASSERT_EQ(report->results.size(), 1u);
  EXPECT_EQ(report->results[0].accounting.effective_n(), 5u);
}

TEST(CampaignTest, HungRunsAreDetectedRetriedAndBackfilled) {
  // The acceptance scenario: 10 runs, slots 3 and 7 wedge on their first
  // attempt. The watchdog must cancel both; retries must complete the
  // campaign at effective n = 10.
  const std::set<size_t> hang_runs = {3, 7};  // 1-based
  CampaignSupervisor supervisor({}, FastOptions(10));
  auto report = supervisor.Run(
      [&](const ExperimentConfig&, const RunContext& ctx) -> Result<RunOutcome> {
        if (hang_runs.count(ctx.run_index + 1) > 0 && ctx.attempt == 0) {
          return SpinUntilCancelled(ctx);
        }
        if (ctx.report_progress) ctx.report_progress(1);
        RunOutcome out;
        out["value"] = static_cast<double>(ctx.run_index);
        return out;
      });
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->total_completed, 10u);
  EXPECT_EQ(report->total_hung, 2u);
  EXPECT_EQ(report->total_retried, 2u);
  EXPECT_EQ(report->total_failed, 0u);
  EXPECT_EQ(report->quarantined_configs, 0u);

  ASSERT_EQ(report->results.size(), 1u);
  const ConfigResult& result = report->results[0];
  EXPECT_EQ(result.accounting.completed, 10u);
  EXPECT_EQ(result.accounting.hung, 2u);
  EXPECT_EQ(result.accounting.retried, 2u);
  EXPECT_FALSE(result.accounting.quarantined);

  // Aggregation covers all ten completed runs.
  const MetricAggregate& value = result.metrics.at("value");
  EXPECT_EQ(value.effective_n(), 10u);
  EXPECT_DOUBLE_EQ(value.stats.mean(), 4.5);

  // The journal records both hung attempts and their retries with fresh
  // derived seeds.
  size_t hung_records = 0;
  for (const AttemptRecord& a : report->attempts) {
    if (a.outcome != AttemptOutcome::kHung) continue;
    ++hung_records;
    EXPECT_TRUE(hang_runs.count(a.run_index + 1) > 0);
    EXPECT_EQ(a.attempt, 0u);
    const uint64_t retry_seed = CampaignSeed(42, 0, a.run_index, 1);
    EXPECT_NE(retry_seed, a.seed);
  }
  EXPECT_EQ(hung_records, 2u);
}

TEST(CampaignTest, FailedRunsAreRetriedWithFreshSeeds) {
  std::vector<uint64_t> attempt_seeds;
  CampaignSupervisor supervisor({}, FastOptions(3));
  auto report = supervisor.Run(
      [&](const ExperimentConfig&, const RunContext& ctx) -> Result<RunOutcome> {
        if (ctx.report_progress) ctx.report_progress(1);
        if (ctx.run_index == 1 && ctx.attempt == 0) {
          attempt_seeds.push_back(ctx.seed);
          return Status::IoError("simulated SUT crash");
        }
        if (ctx.run_index == 1) attempt_seeds.push_back(ctx.seed);
        RunOutcome out;
        out["value"] = 1.0;
        return out;
      });
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->total_completed, 3u);
  EXPECT_EQ(report->total_failed, 1u);
  EXPECT_EQ(report->total_hung, 0u);
  EXPECT_EQ(report->total_retried, 1u);
  ASSERT_EQ(attempt_seeds.size(), 2u);
  EXPECT_NE(attempt_seeds[0], attempt_seeds[1]);
  // The failed attempt's detail survives in the journal.
  bool found = false;
  for (const AttemptRecord& a : report->attempts) {
    if (a.outcome == AttemptOutcome::kFailed) {
      found = true;
      EXPECT_NE(a.detail.find("simulated SUT crash"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(CampaignTest, RepeatedlyFailingConfigIsQuarantined) {
  std::vector<Factor> factors = {{"rate", {1.0, 2.0}}};
  CampaignOptions options = FastOptions(4);
  options.retry_budget = 1;
  options.quarantine_after = 1;
  CampaignSupervisor supervisor(factors, options);
  size_t poison_attempts = 0;
  auto report = supervisor.Run(
      [&](const ExperimentConfig& config,
          const RunContext& ctx) -> Result<RunOutcome> {
        if (ctx.report_progress) ctx.report_progress(1);
        if (config.at("rate") == 2.0) {
          ++poison_attempts;
          return Status::IoError("always broken at rate 2");
        }
        RunOutcome out;
        out["value"] = 1.0;
        return out;
      });
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->quarantined_configs, 1u);
  ASSERT_EQ(report->results.size(), 2u);

  const ConfigResult& healthy = report->results[0];
  EXPECT_EQ(healthy.accounting.completed, 4u);
  EXPECT_FALSE(healthy.accounting.quarantined);

  const ConfigResult& poisoned = report->results[1];
  EXPECT_TRUE(poisoned.accounting.quarantined);
  EXPECT_EQ(poisoned.accounting.completed, 0u);
  // Quarantine kicked in after the first slot exhausted its budget: the
  // three remaining slots were skipped, not attempted.
  EXPECT_EQ(poison_attempts, 2u);  // first try + one retry
}

TEST(CampaignTest, AggregatesOverCompletedRunsOnly) {
  // Slot 2 never completes, but with quarantine disabled the campaign keeps
  // going; the CI must cover only the runs that finished.
  CampaignOptions options = FastOptions(4);
  options.retry_budget = 1;
  options.quarantine_after = 99;
  CampaignSupervisor supervisor({}, options);
  auto report = supervisor.Run(
      [&](const ExperimentConfig&, const RunContext& ctx) -> Result<RunOutcome> {
        if (ctx.report_progress) ctx.report_progress(1);
        if (ctx.run_index == 2) return Status::IoError("permanently broken");
        RunOutcome out;
        out["value"] = 10.0;
        return out;
      });
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->total_completed, 3u);
  EXPECT_EQ(report->total_failed, 2u);  // first try + retry
  ASSERT_EQ(report->results.size(), 1u);
  const ConfigResult& result = report->results[0];
  EXPECT_EQ(result.repetitions, 4u);
  EXPECT_EQ(result.accounting.effective_n(), 3u);
  const MetricAggregate& value = result.metrics.at("value");
  EXPECT_EQ(value.effective_n(), 3u);
  EXPECT_DOUBLE_EQ(value.stats.mean(), 10.0);
  EXPECT_EQ(value.ci.n, 3u);
}

TEST(CampaignTest, SimProcessStallingAfterNEventsIsDeclaredHung) {
  // Satellite scenario: a simulated SUT applies N events and then stops
  // completing work. Driven from the wall clock, its heartbeat freezes and
  // the watchdog must cancel the attempt; the retry (which does not wedge)
  // completes the campaign.
  constexpr uint64_t kEvents = 50;
  CampaignSupervisor supervisor({}, FastOptions(1));
  auto report = supervisor.Run(
      [&](const ExperimentConfig&, const RunContext& ctx) -> Result<RunOutcome> {
        Simulator sim;
        SimProcess sut(&sim, "sut");
        Rng rng(ctx.seed);
        const bool wedge = ctx.attempt == 0;
        uint64_t applied = 0;
        std::function<void()> submit_next = [&] {
          sut.Submit(Duration::FromMillis(1), [&] {
            ++applied;
            if (wedge && applied >= kEvents / 2) {
              sut.Kill();  // stalls after N/2 events
              return;
            }
            if (applied < kEvents) submit_next();
          });
        };
        submit_next();
        while (applied < kEvents) {
          if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
            return Status::Cancelled(ctx.cancel->reason());
          }
          if (!sim.Step()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          if (ctx.report_progress) ctx.report_progress(applied);
        }
        RunOutcome out;
        out["virtual_s"] = sim.Now().seconds();
        return out;
      });
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->total_completed, 1u);
  EXPECT_EQ(report->total_hung, 1u);
  EXPECT_EQ(report->total_retried, 1u);
  ASSERT_EQ(report->attempts.size(), 2u);
  EXPECT_EQ(report->attempts[0].outcome, AttemptOutcome::kHung);
  EXPECT_EQ(report->attempts[1].outcome, AttemptOutcome::kCompleted);
}

TEST(CampaignTest, AutoResumeKeepsSeedAndCountsRecovery) {
  CampaignOptions options = FastOptions(3);
  options.auto_resume = true;
  CampaignSupervisor supervisor({}, options);
  // Slot 1 crashes once mid-run, leaving a "checkpoint" (the applied
  // count); the resumed attempt must observe the same seed and the resume
  // flag, and the report must count the recovery with its downtime.
  uint64_t crash_attempt_seed = 0;
  uint64_t resume_attempt_seed = 0;
  uint64_t resumed_from = 0;
  uint64_t checkpoint = 0;
  auto report = supervisor.Run(
      [&](const ExperimentConfig&, const RunContext& ctx) -> Result<RunOutcome> {
        if (ctx.report_progress) ctx.report_progress(1);
        if (ctx.run_index == 1 && ctx.attempt == 0) {
          crash_attempt_seed = ctx.seed;
          checkpoint = 50;
          return Status::IoError("simulated crash at event 50");
        }
        if (ctx.resume) {
          resume_attempt_seed = ctx.seed;
          resumed_from = checkpoint;
        }
        RunOutcome out;
        out["value"] = 1.0;
        return out;
      });
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->total_completed, 3u);
  EXPECT_EQ(report->total_resumed, 1u);
  EXPECT_EQ(report->total_recoveries, 1u);
  EXPECT_GE(report->total_downtime_s, 0.0);
  EXPECT_EQ(resumed_from, 50u);
  // Resume continues the same logical run: the attempt-0 seed, not a fresh
  // derived retry seed.
  EXPECT_EQ(resume_attempt_seed, crash_attempt_seed);
  bool saw_resume_record = false;
  for (const AttemptRecord& a : report->attempts) {
    if (a.resume) {
      saw_resume_record = true;
      EXPECT_EQ(a.seed, crash_attempt_seed);
      EXPECT_EQ(a.outcome, AttemptOutcome::kCompleted);
    }
  }
  EXPECT_TRUE(saw_resume_record);
  const std::string text = FormatCampaignReport(*report);
  EXPECT_NE(text.find("resumed"), std::string::npos);
  EXPECT_NE(text.find("mttr s"), std::string::npos);
  EXPECT_NE(text.find("recoveries: 1"), std::string::npos);
}

TEST(CampaignTest, WithoutAutoResumeRetriesUseFreshSeeds) {
  CampaignOptions options = FastOptions(1);
  CampaignSupervisor supervisor({}, options);
  std::vector<uint64_t> seeds;
  std::vector<bool> resumes;
  auto report = supervisor.Run(
      [&](const ExperimentConfig&, const RunContext& ctx) -> Result<RunOutcome> {
        if (ctx.report_progress) ctx.report_progress(1);
        seeds.push_back(ctx.seed);
        resumes.push_back(ctx.resume);
        if (ctx.attempt == 0) return Status::IoError("crash");
        RunOutcome out;
        out["value"] = 1.0;
        return out;
      });
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_NE(seeds[0], seeds[1]);
  EXPECT_FALSE(resumes[1]);
  EXPECT_EQ(report->total_resumed, 0u);
  EXPECT_EQ(report->total_recoveries, 0u);
}

TEST(CampaignTest, FormatReportShowsEffectiveN) {
  CampaignSupervisor supervisor({}, FastOptions(3));
  auto report = supervisor.Run(
      [&](const ExperimentConfig&, const RunContext& ctx) -> Result<RunOutcome> {
        if (ctx.report_progress) ctx.report_progress(1);
        if (ctx.run_index == 0 && ctx.attempt == 0) {
          return SpinUntilCancelled(ctx);
        }
        RunOutcome out;
        out["value"] = 2.0;
        return out;
      });
  ASSERT_TRUE(report.ok());
  const std::string text = FormatCampaignReport(*report);
  EXPECT_NE(text.find("n eff"), std::string::npos);
  EXPECT_NE(text.find("value"), std::string::npos);
}

}  // namespace
}  // namespace graphtides
