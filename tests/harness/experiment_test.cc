#include "harness/experiment.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace graphtides {
namespace {

TEST(ExperimentRunnerTest, EnumeratesFullFactorial) {
  ExperimentRunner runner(
      {{"rate", {100, 1000, 10000}}, {"batch", {1, 10}}},
      ExperimentOptions{});
  const auto configs = runner.EnumerateConfigs();
  ASSERT_EQ(configs.size(), 6u);
  // Every combination appears once.
  std::set<std::pair<double, double>> seen;
  for (const auto& c : configs) {
    seen.emplace(c.at("rate"), c.at("batch"));
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(ExperimentRunnerTest, NoFactorsIsSingleEmptyConfig) {
  ExperimentRunner runner({}, ExperimentOptions{});
  EXPECT_EQ(runner.EnumerateConfigs().size(), 1u);
}

TEST(ExperimentRunnerTest, RunsConfiguredRepetitions) {
  ExperimentOptions options;
  options.repetitions = 5;
  ExperimentRunner runner({{"x", {1, 2}}}, options);
  size_t calls = 0;
  auto results = runner.Run(
      [&](const ExperimentConfig& config, uint64_t) -> Result<RunOutcome> {
        ++calls;
        return RunOutcome{{"y", config.at("x") * 2}};
      });
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(calls, 10u);
  ASSERT_EQ(results->size(), 2u);
  for (const ConfigResult& r : *results) {
    const MetricAggregate& agg = r.metrics.at("y");
    EXPECT_EQ(agg.samples.size(), 5u);
    EXPECT_DOUBLE_EQ(agg.stats.mean(), r.config.at("x") * 2);
    EXPECT_DOUBLE_EQ(agg.ci.mean, r.config.at("x") * 2);
  }
}

TEST(ExperimentRunnerTest, SeedsUniquePerRun) {
  ExperimentOptions options;
  options.repetitions = 10;
  ExperimentRunner runner({{"x", {1, 2, 3}}}, options);
  std::set<uint64_t> seeds;
  auto results = runner.Run(
      [&](const ExperimentConfig&, uint64_t seed) -> Result<RunOutcome> {
        seeds.insert(seed);
        return RunOutcome{{"y", 0.0}};
      });
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(seeds.size(), 30u);
}

TEST(ExperimentRunnerTest, ErrorAborts) {
  ExperimentRunner runner({{"x", {1}}}, ExperimentOptions{});
  auto results = runner.Run(
      [](const ExperimentConfig&, uint64_t) -> Result<RunOutcome> {
        return Status::Internal("run crashed");
      });
  ASSERT_FALSE(results.ok());
  EXPECT_TRUE(results.status().IsInternal());
}

TEST(ExperimentRunnerTest, CiShrinkWithVariance) {
  // Noisy metric: CI must straddle the true mean.
  ExperimentOptions options;
  options.repetitions = 30;  // §4.5 minimum
  ExperimentRunner runner({{"x", {5}}}, options);
  auto results = runner.Run(
      [](const ExperimentConfig& config, uint64_t seed) -> Result<RunOutcome> {
        Rng rng(seed);
        return RunOutcome{
            {"y", config.at("x") + rng.NextGaussian() * 0.5}};
      });
  ASSERT_TRUE(results.ok());
  const MetricAggregate& agg = (*results)[0].metrics.at("y");
  EXPECT_EQ(agg.ci.n, 30u);
  EXPECT_LT(agg.ci.lower, 5.1);
  EXPECT_GT(agg.ci.upper, 4.9);
  EXPECT_LT(agg.ci.upper - agg.ci.lower, 1.0);
}

TEST(CompareByConfidenceIntervalsTest, ClearDifferenceSignificant) {
  std::vector<double> a;
  std::vector<double> b;
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    a.push_back(10.0 + rng.NextGaussian() * 0.1);
    b.push_back(20.0 + rng.NextGaussian() * 0.1);
  }
  const Comparison cmp = CompareByConfidenceIntervals(a, b);
  EXPECT_TRUE(cmp.significant);
  EXPECT_NEAR(cmp.mean_difference, 10.0, 0.2);
}

TEST(CompareByConfidenceIntervalsTest, OverlapNotSignificant) {
  std::vector<double> a;
  std::vector<double> b;
  Rng rng(2);
  for (int i = 0; i < 30; ++i) {
    a.push_back(10.0 + rng.NextGaussian() * 5.0);
    b.push_back(10.5 + rng.NextGaussian() * 5.0);
  }
  const Comparison cmp = CompareByConfidenceIntervals(a, b);
  EXPECT_FALSE(cmp.significant);
}

}  // namespace
}  // namespace graphtides
