#include "harness/capacity/frontier.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "harness/capacity/capacity_search.h"
#include "harness/capacity/frontier_sweep.h"

namespace graphtides {
namespace {

FrontierPoint MakePoint(double offered, double p99, bool violated) {
  FrontierPoint p;
  p.offered_rate_eps = offered;
  p.achieved_rate_eps = violated ? offered * 0.7 : offered;
  p.p50_ms = p99 / 4.0;
  p.p99_ms = p99;
  p.p99_ci_lo_ms = p99 * 0.9;
  p.p99_ci_hi_ms = p99 * 1.1;
  p.n = 3;
  p.violated = violated;
  return p;
}

FrontierArtifact MakeArtifact() {
  FrontierArtifact a;
  a.sut = "weaverlite";
  a.workload = "social";
  a.slo_p99_ms = 100.0;
  a.seed = 42;
  a.resolution = 0.05;
  a.complete = true;
  a.points = {MakePoint(1000, 2.0, false), MakePoint(2000, 10.0, false),
              MakePoint(4000, 400.0, true)};
  a.step_schedule = {1000, 2000, 4000};
  a.sustainable_rate_eps = 1990.0;
  a.sustainable_ci_lo_eps = 1950.0;
  a.sustainable_ci_hi_eps = 2030.0;
  a.sustainable_offered_eps = 2000.0;
  return a;
}

TEST(CapacityFrontierTest, JsonRoundTripPreservesEveryField) {
  const FrontierArtifact a = MakeArtifact();
  const auto b = FrontierArtifact::FromJson(a.ToJson());
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(b->sut, a.sut);
  EXPECT_EQ(b->workload, a.workload);
  EXPECT_DOUBLE_EQ(b->slo_p99_ms, a.slo_p99_ms);
  EXPECT_EQ(b->seed, a.seed);
  EXPECT_DOUBLE_EQ(b->resolution, a.resolution);
  EXPECT_EQ(b->complete, a.complete);
  EXPECT_DOUBLE_EQ(b->sustainable_rate_eps, a.sustainable_rate_eps);
  EXPECT_DOUBLE_EQ(b->sustainable_ci_lo_eps, a.sustainable_ci_lo_eps);
  EXPECT_DOUBLE_EQ(b->sustainable_ci_hi_eps, a.sustainable_ci_hi_eps);
  EXPECT_DOUBLE_EQ(b->sustainable_offered_eps, a.sustainable_offered_eps);
  EXPECT_EQ(b->step_schedule, a.step_schedule);
  ASSERT_EQ(b->points.size(), a.points.size());
  for (size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(b->points[i].offered_rate_eps,
                     a.points[i].offered_rate_eps);
    EXPECT_DOUBLE_EQ(b->points[i].achieved_rate_eps,
                     a.points[i].achieved_rate_eps);
    EXPECT_DOUBLE_EQ(b->points[i].p50_ms, a.points[i].p50_ms);
    EXPECT_DOUBLE_EQ(b->points[i].p99_ms, a.points[i].p99_ms);
    EXPECT_DOUBLE_EQ(b->points[i].p99_ci_lo_ms, a.points[i].p99_ci_lo_ms);
    EXPECT_DOUBLE_EQ(b->points[i].p99_ci_hi_ms, a.points[i].p99_ci_hi_ms);
    EXPECT_EQ(b->points[i].n, a.points[i].n);
    EXPECT_EQ(b->points[i].violated, a.points[i].violated);
  }
  // The round-tripped artifact serializes identically: a stable JSON form
  // is what lets the CI reproducibility check compare files byte-for-byte.
  EXPECT_EQ(b->ToJson(), a.ToJson());
}

TEST(CapacityFrontierTest, MalformedJsonRejected) {
  EXPECT_FALSE(FrontierArtifact::FromJson("").ok());
  EXPECT_FALSE(FrontierArtifact::FromJson("{").ok());
  EXPECT_FALSE(FrontierArtifact::FromJson("[1,2,3]").ok());
  EXPECT_FALSE(FrontierArtifact::FromJson("\"gt-frontier-v1\"").ok());
  // Right shape, wrong schema tag.
  std::string wrong = MakeArtifact().ToJson();
  wrong.replace(wrong.find("gt-frontier-v1"), 14, "gt-frontier-v9");
  EXPECT_FALSE(FrontierArtifact::FromJson(wrong).ok());
  // Schema tag alone is not an artifact: required fields are missing.
  EXPECT_FALSE(FrontierArtifact::FromJson(
                   "{\"schema\":\"gt-frontier-v1\"}")
                   .ok());
  // Structurally valid JSON with a type error inside a point.
  std::string bad_type = MakeArtifact().ToJson();
  bad_type.replace(bad_type.find("\"p99_ms\":2"), 10, "\"p99_ms\":\"x\"");
  EXPECT_FALSE(FrontierArtifact::FromJson(bad_type).ok());
}

TEST(CapacityFrontierTest, ValidateAcceptsWellFormedArtifact) {
  EXPECT_TRUE(ValidateFrontier(MakeArtifact()).ok());
}

TEST(CapacityFrontierTest, ValidateRejectsUnsortedRates) {
  FrontierArtifact a = MakeArtifact();
  std::swap(a.points[0], a.points[1]);
  EXPECT_FALSE(ValidateFrontier(a).ok());
}

TEST(CapacityFrontierTest, ValidateRejectsCiNotBracketingMean) {
  FrontierArtifact a = MakeArtifact();
  a.points[1].p99_ci_lo_ms = a.points[1].p99_ms + 5.0;
  EXPECT_FALSE(ValidateFrontier(a).ok());
}

TEST(CapacityFrontierTest, ValidateRejectsNearSloLatencyDip) {
  // 60 ms then 40 ms with a 100 ms SLO: the higher rate's p99 dips 33%
  // while within reach of the SLO — not physical, must fail.
  FrontierArtifact a = MakeArtifact();
  a.points = {MakePoint(1000, 60.0, false), MakePoint(2000, 40.0, false),
              MakePoint(4000, 400.0, true)};
  EXPECT_FALSE(ValidateFrontier(a).ok());
}

TEST(CapacityFrontierTest, ValidateAllowsDeepBelowSloDip) {
  // 30 ms then 10 ms, both under half the 100 ms SLO: rate-dependent
  // floors (batch fill time) legitimately shrink as the rate rises.
  FrontierArtifact a = MakeArtifact();
  a.points = {MakePoint(1000, 30.0, false), MakePoint(2000, 10.0, false),
              MakePoint(4000, 400.0, true)};
  EXPECT_TRUE(ValidateFrontier(a).ok());
}

TEST(CapacityFrontierTest, ValidateRejectsSustainableOutsideOwnBand) {
  FrontierArtifact a = MakeArtifact();
  a.sustainable_rate_eps = 3000.0;  // band stays [1950, 2030]
  EXPECT_FALSE(ValidateFrontier(a).ok());
}

TEST(CapacityFrontierTest, CompareIdenticalArtifactsPasses) {
  const FrontierArtifact a = MakeArtifact();
  EXPECT_TRUE(CompareFrontiers(a, a).ok());
}

TEST(CapacityFrontierTest, CompareRejectsDivergedSchedule) {
  const FrontierArtifact a = MakeArtifact();
  FrontierArtifact b = MakeArtifact();
  b.step_schedule[1] = 2500.0;
  EXPECT_FALSE(CompareFrontiers(a, b).ok());
  FrontierArtifact c = MakeArtifact();
  c.step_schedule.push_back(3000.0);
  EXPECT_FALSE(CompareFrontiers(a, c).ok());
}

TEST(CapacityFrontierTest, CompareRejectsRateOutsideBothBands) {
  const FrontierArtifact a = MakeArtifact();
  FrontierArtifact b = MakeArtifact();
  b.sustainable_rate_eps = 2500.0;
  b.sustainable_ci_lo_eps = 2450.0;
  b.sustainable_ci_hi_eps = 2550.0;
  EXPECT_FALSE(CompareFrontiers(a, b).ok());
}

TEST(CapacityFrontierTest, CompareWidensDegenerateBandsToResolution) {
  // Single-rep artifacts carry lo == hi == mean; mutual containment must
  // then tolerate up to resolution * mean of spread.
  FrontierArtifact a = MakeArtifact();
  a.sustainable_ci_lo_eps = a.sustainable_ci_hi_eps = a.sustainable_rate_eps;
  FrontierArtifact b = a;
  b.sustainable_rate_eps = a.sustainable_rate_eps * 1.03;  // inside 5%
  b.sustainable_ci_lo_eps = b.sustainable_ci_hi_eps = b.sustainable_rate_eps;
  EXPECT_TRUE(CompareFrontiers(a, b).ok());
  b.sustainable_rate_eps = a.sustainable_rate_eps * 1.12;  // outside 5%
  b.sustainable_ci_lo_eps = b.sustainable_ci_hi_eps = b.sustainable_rate_eps;
  EXPECT_FALSE(CompareFrontiers(a, b).ok());
}

TEST(CapacityFrontierTest, FromSearchBuildsOnePointPerStep) {
  CapacitySearchOptions opt;
  opt.slo_p99_ms = 100.0;
  opt.start_rate_eps = 1000.0;
  opt.max_rate_eps = 1e6;
  opt.windows_per_step = 1;
  opt.confirm_violations = 1;
  CapacitySearch search(opt);
  const double capacity = 5000.0;
  while (!search.done()) {
    CapacityWindow w;
    w.samples = 50;
    const double rate = search.current_rate_eps();
    w.p50_ms = rate <= capacity ? 1.0 : 300.0;
    w.p99_ms = rate <= capacity ? 2.0 : 600.0;
    w.achieved_rate_eps = rate <= capacity ? rate : capacity;
    search.ReportWindow(w);
  }

  const FrontierArtifact artifact =
      FrontierFromSearch(search, "tcp:localhost:7171", "stream.gts");
  EXPECT_EQ(artifact.sut, "tcp:localhost:7171");
  EXPECT_EQ(artifact.workload, "stream.gts");
  EXPECT_EQ(artifact.points.size(), search.steps().size());
  EXPECT_EQ(artifact.step_schedule, search.StepSchedule());
  EXPECT_TRUE(artifact.complete);
  EXPECT_DOUBLE_EQ(artifact.sustainable_offered_eps,
                   search.sustainable_rate_eps());
  // Live-lane points are single measurements: degenerate CI bands.
  for (const FrontierPoint& p : artifact.points) {
    EXPECT_EQ(p.n, 1u);
    EXPECT_DOUBLE_EQ(p.p99_ci_lo_ms, p.p99_ms);
    EXPECT_DOUBLE_EQ(p.p99_ci_hi_ms, p.p99_ms);
  }
  // The synthetic artifact passes the same gate CI applies to real ones.
  EXPECT_TRUE(ValidateFrontier(artifact).ok())
      << ValidateFrontier(artifact).ToString();
  EXPECT_TRUE(CompareFrontiers(artifact, artifact).ok());
}

TEST(CapacityFrontierTest, SweepSeedDerivationIsStableAndCollisionFree) {
  // The sweep derives every per-run workload seed from (base, a, b); the
  // function must be deterministic (reproducibility across runs) and
  // spread distinct coordinates to distinct seeds (independent workloads).
  EXPECT_EQ(DeriveSweepSeed(42, 1, 2), DeriveSweepSeed(42, 1, 2));
  std::set<uint64_t> seen;
  for (uint64_t a = 0; a < 32; ++a) {
    for (uint64_t b = 0; b < 32; ++b) {
      seen.insert(DeriveSweepSeed(42, a, b));
    }
  }
  EXPECT_EQ(seen.size(), 32u * 32u);
  EXPECT_NE(DeriveSweepSeed(42, 1, 2), DeriveSweepSeed(43, 1, 2));
}

}  // namespace
}  // namespace graphtides
