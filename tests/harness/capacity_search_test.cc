#include "harness/capacity/capacity_search.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "harness/capacity/window_probe.h"
#include "harness/telemetry/run_telemetry.h"

namespace graphtides {
namespace {

// Synthetic SUT with a hard capacity knee: below `capacity` the latency is
// flat and comfortable; above it the p99 blows past the SLO. Driving the
// search against this model makes every decision deterministic.
CapacityWindow SimWindow(double rate, double capacity, double slo_ms) {
  CapacityWindow w;
  w.samples = 100;
  if (rate <= capacity) {
    w.p50_ms = 1.0;
    w.p99_ms = 2.0;
  } else {
    w.p50_ms = slo_ms * 2.0;
    w.p99_ms = slo_ms * 4.0;
  }
  w.achieved_rate_eps = std::min(rate, capacity);
  return w;
}

std::vector<double> Drive(CapacitySearch& search, double capacity) {
  while (!search.done()) {
    search.ReportWindow(SimWindow(search.current_rate_eps(), capacity,
                                  search.options().slo_p99_ms));
  }
  return search.StepSchedule();
}

TEST(CapacitySearchTest, BracketingRampsGeometricallyToSustainedCap) {
  CapacitySearchOptions opt;
  opt.start_rate_eps = 1000.0;
  opt.growth = 2.0;
  opt.max_rate_eps = 16000.0;
  opt.windows_per_step = 1;
  opt.confirm_violations = 1;
  CapacitySearch search(opt);
  const std::vector<double> schedule = Drive(search, 1e9);

  const std::vector<double> expected = {1000, 2000, 4000, 8000, 16000};
  EXPECT_EQ(schedule, expected);
  EXPECT_TRUE(search.converged());
  EXPECT_DOUBLE_EQ(search.sustainable_rate_eps(), 16000.0);
  for (const CapacityStep& step : search.steps()) {
    EXPECT_EQ(step.phase, CapacityPhase::kBracketing);
    EXPECT_FALSE(step.violated);
  }
}

TEST(CapacitySearchTest, BisectionConvergesWithinResolution) {
  CapacitySearchOptions opt;
  opt.start_rate_eps = 1000.0;
  opt.growth = 2.0;
  opt.max_rate_eps = 1e6;
  opt.resolution = 0.05;
  opt.windows_per_step = 1;
  opt.confirm_violations = 1;
  CapacitySearch search(opt);
  const double capacity = 5000.0;
  Drive(search, capacity);

  ASSERT_TRUE(search.done());
  EXPECT_TRUE(search.converged());
  // The bracket straddles the true knee and is at most resolution wide.
  EXPECT_LE(search.sustainable_rate_eps(), capacity);
  EXPECT_GT(search.first_violating_rate_eps(), capacity);
  EXPECT_LE(search.first_violating_rate_eps() - search.sustainable_rate_eps(),
            opt.resolution * search.first_violating_rate_eps());
  // Phases transition bracketing -> refining exactly once.
  bool refining_seen = false;
  for (const CapacityStep& step : search.steps()) {
    if (step.phase == CapacityPhase::kRefining) refining_seen = true;
    if (refining_seen) EXPECT_EQ(step.phase, CapacityPhase::kRefining);
  }
  EXPECT_TRUE(refining_seen);
}

TEST(CapacitySearchTest, RefinementFindsCapacityFarBelowStartRate) {
  // Capacity two orders of magnitude under the start rate: the first step
  // violates, and refinement halves its way down until it brackets the
  // knee — the search still converges, it never needs a sustained
  // bracketing step first.
  CapacitySearchOptions opt;
  opt.start_rate_eps = 1000.0;
  opt.windows_per_step = 1;
  opt.confirm_violations = 1;
  CapacitySearch search(opt);
  Drive(search, 10.0);

  ASSERT_TRUE(search.done());
  EXPECT_TRUE(search.converged());
  EXPECT_GT(search.sustainable_rate_eps(), 0.0);
  EXPECT_LE(search.sustainable_rate_eps(), 10.0);
  EXPECT_GT(search.first_violating_rate_eps(), 10.0);
}

TEST(CapacitySearchTest, NothingSustainedStopsOnStepBudget) {
  // A SUT that violates at every positive rate: lo_ never moves off zero,
  // the relative stop width can never be met, and the max_steps budget
  // ends the search unconverged with sustainable 0.
  CapacitySearchOptions opt;
  opt.start_rate_eps = 1000.0;
  opt.windows_per_step = 1;
  opt.confirm_violations = 1;
  opt.max_steps = 16;
  CapacitySearch search(opt);
  Drive(search, 0.0);

  ASSERT_TRUE(search.done());
  EXPECT_FALSE(search.converged());
  EXPECT_DOUBLE_EQ(search.sustainable_rate_eps(), 0.0);
  EXPECT_EQ(search.steps().size(), 16u);
}

TEST(CapacitySearchTest, HysteresisOneNoisyWindowDoesNotFlipStep) {
  CapacitySearchOptions opt;
  opt.slo_p99_ms = 100.0;
  opt.windows_per_step = 3;
  opt.confirm_violations = 2;
  CapacitySearch search(opt);
  const double rate = search.current_rate_eps();

  CapacityWindow bad;
  bad.samples = 10;
  bad.p99_ms = 500.0;
  CapacityWindow good;
  good.samples = 10;
  good.p99_ms = 5.0;

  EXPECT_FALSE(search.ReportWindow(bad));
  EXPECT_FALSE(search.ReportWindow(good));
  EXPECT_TRUE(search.ReportWindow(good));  // step concludes on window 3
  ASSERT_EQ(search.steps().size(), 1u);
  EXPECT_FALSE(search.steps()[0].violated);
  EXPECT_EQ(search.steps()[0].violations, 1);
  EXPECT_GT(search.current_rate_eps(), rate);  // ramp continued
}

TEST(CapacitySearchTest, EarlyConclusionOnceViolationConfirmed) {
  CapacitySearchOptions opt;
  opt.slo_p99_ms = 100.0;
  opt.windows_per_step = 3;
  opt.confirm_violations = 2;
  CapacitySearch search(opt);

  CapacityWindow bad;
  bad.samples = 10;
  bad.p99_ms = 500.0;
  EXPECT_FALSE(search.ReportWindow(bad));
  // Second violation confirms; the third window is never demanded.
  EXPECT_TRUE(search.ReportWindow(bad));
  ASSERT_EQ(search.steps().size(), 1u);
  EXPECT_TRUE(search.steps()[0].violated);
  EXPECT_EQ(search.steps()[0].windows, 2);
  EXPECT_EQ(search.phase(), CapacityPhase::kRefining);
}

TEST(CapacitySearchTest, EarlyConclusionWhenConfirmationImpossible) {
  CapacitySearchOptions opt;
  opt.windows_per_step = 5;
  opt.confirm_violations = 3;
  CapacitySearch search(opt);

  CapacityWindow good;
  good.samples = 10;
  good.p99_ms = 1.0;
  EXPECT_FALSE(search.ReportWindow(good));
  EXPECT_FALSE(search.ReportWindow(good));
  // After 3 clean windows only 2 remain: 3 violations can never accrue.
  EXPECT_TRUE(search.ReportWindow(good));
  ASSERT_EQ(search.steps().size(), 1u);
  EXPECT_FALSE(search.steps()[0].violated);
  EXPECT_EQ(search.steps()[0].windows, 3);
}

TEST(CapacitySearchTest, ZeroSampleWindowCountsWithinSlo) {
  CapacitySearchOptions opt;
  opt.windows_per_step = 1;
  opt.confirm_violations = 1;
  CapacitySearch search(opt);

  CapacityWindow idle;
  idle.samples = 0;
  idle.p99_ms = 1e9;  // must be ignored: no signal means no violation
  EXPECT_TRUE(search.ReportWindow(idle));
  ASSERT_EQ(search.steps().size(), 1u);
  EXPECT_FALSE(search.steps()[0].violated);
  EXPECT_DOUBLE_EQ(search.steps()[0].mean_p99_ms, 0.0);
}

TEST(CapacitySearchTest, StepScheduleDeterministicAcrossRuns) {
  CapacitySearchOptions opt;
  opt.start_rate_eps = 1000.0;
  opt.windows_per_step = 2;
  opt.confirm_violations = 1;
  CapacitySearch a(opt);
  CapacitySearch b(opt);
  const std::vector<double> sa = Drive(a, 7300.0);
  const std::vector<double> sb = Drive(b, 7300.0);
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa[i], sb[i]) << "step " << i;
  }
}

TEST(CapacitySearchTest, ConstructorClampsDegenerateOptions) {
  CapacitySearchOptions opt;
  opt.slo_p99_ms = -1.0;
  opt.start_rate_eps = -5.0;
  opt.growth = 0.5;
  opt.max_rate_eps = -100.0;
  opt.resolution = -1.0;
  opt.windows_per_step = 0;
  opt.confirm_violations = 9;
  opt.max_steps = 0;
  CapacitySearch search(opt);
  const CapacitySearchOptions& c = search.options();
  EXPECT_GT(c.slo_p99_ms, 0.0);
  EXPECT_GT(c.start_rate_eps, 0.0);
  EXPECT_GT(c.growth, 1.0);
  EXPECT_GE(c.max_rate_eps, c.start_rate_eps);
  EXPECT_GT(c.resolution, 0.0);
  EXPECT_GE(c.windows_per_step, 1);
  EXPECT_LE(c.confirm_violations, c.windows_per_step);
  EXPECT_GE(c.max_steps, 1);
}

// ---------------------------------------------------------------------------
// CapacityProbe: windowed deltas over the cumulative telemetry hub.
// ---------------------------------------------------------------------------

TEST(CapacityProbeTest, WindowDeltaIsolatesWindowRecords) {
  RunTelemetryOptions topt;
  topt.sample_every = 1;
  RunTelemetry hub(topt);
  VirtualClock clock;

  // Pre-window noise the delta must exclude.
  for (int i = 0; i < 10; ++i) {
    hub.RecordStage(0, ReplayStage::kDeliver, Duration::FromMillis(1));
  }
  hub.AddDelivered(0, 10);

  CapacityProbe probe(&hub, CapacityProbe::Signal::kDeliver, &clock);
  probe.BeginWindow();
  for (int i = 0; i < 5; ++i) {
    hub.RecordStage(0, ReplayStage::kDeliver, Duration::FromMillis(10));
  }
  hub.AddDelivered(0, 500);
  clock.Advance(Duration::FromSeconds(1.0));
  const CapacityWindow w = probe.EndWindow();

  EXPECT_EQ(w.samples, 5u);
  // Log-bucketed histogram: quantiles land on bucket upper bounds.
  EXPECT_NEAR(w.p99_ms, 10.0, 2.0);
  EXPECT_NEAR(w.achieved_rate_eps, 500.0, 1e-6);

  // EndWindow re-baselined: an idle follow-up window carries no signal.
  clock.Advance(Duration::FromSeconds(1.0));
  const CapacityWindow idle = probe.EndWindow();
  EXPECT_EQ(idle.samples, 0u);
  EXPECT_DOUBLE_EQ(idle.achieved_rate_eps, 0.0);
}

TEST(CapacityProbeTest, AutoSignalPrefersMarkersWhenMatched) {
  RunTelemetryOptions topt;
  topt.sample_every = 1;
  RunTelemetry hub(topt);
  VirtualClock clock;

  CapacityProbe probe(&hub, CapacityProbe::Signal::kAuto, &clock);
  probe.BeginWindow();
  const Timestamp t0 = Timestamp::FromMillis(1000);
  hub.markers().MarkerSent("m1", t0);
  hub.markers().MarkerObserved("m1", t0 + Duration::FromMillis(50));
  hub.RecordStage(0, ReplayStage::kDeliver, Duration::FromMillis(1));
  clock.Advance(Duration::FromSeconds(1.0));
  const CapacityWindow w = probe.EndWindow();
  ASSERT_GT(w.samples, 0u);
  EXPECT_NEAR(w.p99_ms, 50.0, 8.0);  // marker latency, not the 1 ms span

  // With no marker matched in the window, auto falls back to deliver.
  probe.BeginWindow();
  hub.RecordStage(0, ReplayStage::kDeliver, Duration::FromMillis(1));
  clock.Advance(Duration::FromSeconds(1.0));
  const CapacityWindow fallback = probe.EndWindow();
  ASSERT_GT(fallback.samples, 0u);
  EXPECT_LT(fallback.p99_ms, 5.0);
}

// TSan target (the CI race job's -R filter matches "Capacity"): the probe
// thread reads LatencySnapshot / MergedStageHistograms / TotalDelivered
// while lane threads record — exactly the concurrent-snapshot-reader path
// the capacity controller runs in gt_replay.
TEST(CapacityTsanTest, ConcurrentHubWritersAndProbeReader) {
  RunTelemetryOptions topt;
  topt.shards = 2;
  topt.sample_every = 1;
  RunTelemetry hub(topt);
  MonotonicClock clock;

  constexpr int kEventsPerLane = 4000;
  std::vector<std::thread> lanes;
  for (size_t shard = 0; shard < 2; ++shard) {
    lanes.emplace_back([&hub, shard] {
      for (int i = 0; i < kEventsPerLane; ++i) {
        hub.RecordStage(shard, ReplayStage::kDeliver,
                        Duration::FromMicros(10 + i % 90));
        hub.AddDelivered(shard, 1);
        if (i % 100 == 0) {
          const std::string label =
              "m" + std::to_string(shard) + "-" + std::to_string(i);
          const Timestamp t = Timestamp::FromMillis(i);
          hub.markers().MarkerSent(label, t);
          hub.markers().MarkerObserved(label, t + Duration::FromMillis(2));
        }
      }
    });
  }

  CapacitySearchOptions sopt;
  sopt.windows_per_step = 1;
  sopt.confirm_violations = 1;
  sopt.max_steps = 64;
  CapacitySearch search(sopt);
  CapacityProbe probe(&hub, CapacityProbe::Signal::kAuto, &clock);
  for (int i = 0; i < 50 && !search.done(); ++i) {
    probe.BeginWindow();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    search.ReportWindow(probe.EndWindow());
  }

  for (std::thread& t : lanes) t.join();
  EXPECT_EQ(hub.TotalDelivered(), 2u * kEventsPerLane);
  EXPECT_FALSE(search.steps().empty());
}

}  // namespace
}  // namespace graphtides
