#include "harness/evaluation_level.h"

#include <gtest/gtest.h>

namespace graphtides {
namespace {

class FakeSut : public SutMetricsSource {
 public:
  std::vector<std::pair<std::string, double>> CollectMetrics() const override {
    return {{"throughput", 123.0}, {"load", 0.5}};
  }
};

TEST(EvaluationLevelTest, LevelOrdering) {
  EXPECT_LT(static_cast<int>(EvaluationLevel::kLevel0),
            static_cast<int>(EvaluationLevel::kLevel1));
  EXPECT_LT(static_cast<int>(EvaluationLevel::kLevel1),
            static_cast<int>(EvaluationLevel::kLevel2));
}

TEST(SutMetricsSourceTest, PolymorphicCollection) {
  FakeSut sut;
  const SutMetricsSource* source = &sut;
  const auto metrics = source->CollectMetrics();
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].first, "throughput");
  EXPECT_DOUBLE_EQ(metrics[0].second, 123.0);
}

TEST(InstrumentationHooksTest, FireReachesAttachedProbes) {
  InstrumentationHooks hooks;
  std::vector<double> seen;
  hooks.Attach("queue", [&](double v) { seen.push_back(v); });
  hooks.Fire("queue", 1.0);
  hooks.Fire("queue", 2.0);
  hooks.Fire("other", 99.0);  // no probe
  EXPECT_EQ(seen, (std::vector<double>{1.0, 2.0}));
}

TEST(InstrumentationHooksTest, MultipleProbesSamePoint) {
  InstrumentationHooks hooks;
  int a = 0;
  int b = 0;
  hooks.Attach("p", [&](double) { ++a; });
  hooks.Attach("p", [&](double) { ++b; });
  hooks.Fire("p", 0.0);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(InstrumentationHooksTest, HasProbe) {
  InstrumentationHooks hooks;
  EXPECT_FALSE(hooks.HasProbe("x"));
  hooks.Attach("x", [](double) {});
  EXPECT_TRUE(hooks.HasProbe("x"));
  EXPECT_FALSE(hooks.HasProbe("y"));
}

TEST(InstrumentationHooksTest, FireWithoutProbesIsSafe) {
  InstrumentationHooks hooks;
  hooks.Fire("anything", 1.0);  // must not crash
}

}  // namespace
}  // namespace graphtides
