#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "harness/log_collector.h"
#include "harness/metrics_logger.h"

namespace graphtides {
namespace {

TEST(LogRecordTest, CsvRoundTrip) {
  LogRecord r{Timestamp::FromMillis(1234), "worker-1", "queue_length", 42.5,
              "note, with comma"};
  auto parsed = LogRecord::FromCsvLine(r.ToCsvLine());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->time, r.time);
  EXPECT_EQ(parsed->source, r.source);
  EXPECT_EQ(parsed->metric, r.metric);
  EXPECT_DOUBLE_EQ(parsed->value, r.value);
  EXPECT_EQ(parsed->text, r.text);
}

TEST(LogRecordTest, RejectsMalformedLines) {
  EXPECT_FALSE(LogRecord::FromCsvLine("only,three,fields").ok());
  EXPECT_FALSE(LogRecord::FromCsvLine("notatime,s,m,1,t").ok());
  EXPECT_FALSE(LogRecord::FromCsvLine("1,s,m,notanumber,t").ok());
}

TEST(MetricsLoggerTest, RecordsCarrySourceAndClockTime) {
  VirtualClock clock;
  MetricsLogger logger("replayer", &clock);
  clock.Advance(Duration::FromMillis(10));
  logger.Log("rate", 100.0);
  clock.Advance(Duration::FromMillis(10));
  logger.LogText("marker", 1.0, "PHASE_DONE");
  const auto records = logger.Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].source, "replayer");
  EXPECT_EQ(records[0].time.millis(), 10);
  EXPECT_EQ(records[1].time.millis(), 20);
  EXPECT_EQ(records[1].text, "PHASE_DONE");
  EXPECT_EQ(logger.size(), 2u);
  logger.Clear();
  EXPECT_EQ(logger.size(), 0u);
}

TEST(MetricsLoggerTest, ExplicitTimestamps) {
  VirtualClock clock;
  MetricsLogger logger("x", &clock);
  logger.LogAt(Timestamp::FromSeconds(5.0), "m", 1.0);
  EXPECT_EQ(logger.Records()[0].time.seconds(), 5.0);
}

TEST(LogCollectorTest, MergesChronologically) {
  VirtualClock clock;
  MetricsLogger a("a", &clock);
  MetricsLogger b("b", &clock);
  a.LogAt(Timestamp::FromMillis(30), "m", 3.0);
  b.LogAt(Timestamp::FromMillis(10), "m", 1.0);
  a.LogAt(Timestamp::FromMillis(20), "m", 2.0);
  b.LogAt(Timestamp::FromMillis(40), "m", 4.0);
  LogCollector collector;
  collector.AddLogger(&a);
  collector.AddLogger(&b);
  const ResultLog log = collector.Collect();
  ASSERT_EQ(log.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(log.records()[i].value, static_cast<double>(i + 1));
  }
}

TEST(ResultLogTest, FilterBySourceAndMetric) {
  VirtualClock clock;
  MetricsLogger a("w1", &clock);
  a.Log("cpu", 10.0);
  a.Log("queue", 5.0);
  MetricsLogger b("w2", &clock);
  b.Log("cpu", 20.0);
  LogCollector collector;
  collector.AddLogger(&a);
  collector.AddLogger(&b);
  const ResultLog log = collector.Collect();
  EXPECT_EQ(log.Filter("w1", "").size(), 2u);
  EXPECT_EQ(log.Filter("", "cpu").size(), 2u);
  EXPECT_EQ(log.Filter("w2", "cpu").size(), 1u);
  EXPECT_EQ(log.Filter("w2", "queue").size(), 0u);
  EXPECT_EQ(log.Filter("", "").size(), 3u);
}

TEST(ResultLogTest, SeriesExtraction) {
  VirtualClock clock;
  MetricsLogger a("w1", &clock);
  for (int i = 0; i < 5; ++i) {
    a.LogAt(Timestamp::FromSeconds(i), "cpu", i * 10.0);
  }
  LogCollector collector;
  collector.AddLogger(&a);
  const TimeSeries series = collector.Collect().Series("w1", "cpu");
  ASSERT_EQ(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series.points()[4].value, 40.0);
}

TEST(ResultLogTest, SourcesEnumerated) {
  VirtualClock clock;
  MetricsLogger a("alpha", &clock);
  MetricsLogger b("beta", &clock);
  a.Log("m", 1.0);
  b.Log("m", 1.0);
  LogCollector collector;
  collector.AddLogger(&a);
  collector.AddLogger(&b);
  const auto sources = collector.Collect().Sources();
  EXPECT_EQ(sources.size(), 2u);
}

TEST(ResultLogTest, CsvFileRoundTrip) {
  VirtualClock clock;
  MetricsLogger a("src", &clock);
  a.LogAt(Timestamp::FromMillis(1), "m1", 1.5);
  clock.Advance(Duration::FromMillis(2));
  a.LogText("m2", 2.5, "text,with,commas");
  LogCollector collector;
  collector.AddLogger(&a);
  const ResultLog log = collector.Collect();

  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("gt_resultlog_" + std::to_string(::getpid()) + ".csv"))
          .string();
  ASSERT_TRUE(log.WriteCsv(path).ok());
  auto loaded = ResultLog::ReadCsv(path);
  std::filesystem::remove(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->records()[1].text, "text,with,commas");
  EXPECT_DOUBLE_EQ(loaded->records()[0].value, 1.5);
}

TEST(ResultLogTest, ReadMissingFileFails) {
  EXPECT_TRUE(ResultLog::ReadCsv("/no/such/file.csv").status().IsIoError());
}

}  // namespace
}  // namespace graphtides
