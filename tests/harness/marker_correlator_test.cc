#include "harness/marker_correlator.h"

#include <gtest/gtest.h>

#include "harness/metrics_logger.h"

namespace graphtides {
namespace {

ResultLog BuildLog(
    const std::vector<std::tuple<int64_t, std::string, std::string>>& rows) {
  VirtualClock clock;
  MetricsLogger logger("any", &clock);
  for (const auto& [ms, metric, label] : rows) {
    logger.LogAt(Timestamp::FromMillis(ms), metric, 1.0, label);
  }
  LogCollector collector;
  collector.AddLogger(&logger);
  return collector.Collect();
}

TEST(MarkerCorrelatorTest, MatchesSentToObserved) {
  const ResultLog log = BuildLog({
      {100, "marker_sent", "M1"},
      {150, "marker_seen", "M1"},
      {200, "marker_sent", "M2"},
      {280, "marker_seen", "M2"},
  });
  const auto report = CorrelateMarkers(log, "marker_sent", "marker_seen");
  ASSERT_EQ(report.matched.size(), 2u);
  EXPECT_TRUE(report.unmatched.empty());
  EXPECT_EQ(report.matched[0].label, "M1");
  EXPECT_EQ(report.matched[0].latency().millis(), 50);
  EXPECT_EQ(report.matched[1].latency().millis(), 80);
  const auto latencies = report.LatenciesSeconds();
  ASSERT_EQ(latencies.size(), 2u);
  EXPECT_NEAR(latencies[0], 0.05, 1e-9);
}

TEST(MarkerCorrelatorTest, UnobservedMarkersReported) {
  const ResultLog log = BuildLog({
      {100, "marker_sent", "M1"},
      {200, "marker_sent", "LOST"},
      {150, "marker_seen", "M1"},
  });
  const auto report = CorrelateMarkers(log, "marker_sent", "marker_seen");
  EXPECT_EQ(report.matched.size(), 1u);
  ASSERT_EQ(report.unmatched.size(), 1u);
  EXPECT_EQ(report.unmatched[0], "LOST");
}

TEST(MarkerCorrelatorTest, ObservationBeforeSendIgnored) {
  const ResultLog log = BuildLog({
      {50, "marker_seen", "M1"},  // stale observation from a previous run
      {100, "marker_sent", "M1"},
      {170, "marker_seen", "M1"},
  });
  const auto report = CorrelateMarkers(log, "marker_sent", "marker_seen");
  ASSERT_EQ(report.matched.size(), 1u);
  EXPECT_EQ(report.matched[0].latency().millis(), 70);
}

TEST(MarkerCorrelatorTest, FirstObservationWins) {
  const ResultLog log = BuildLog({
      {100, "marker_sent", "M1"},
      {130, "marker_seen", "M1"},
      {500, "marker_seen", "M1"},
  });
  const auto report = CorrelateMarkers(log, "marker_sent", "marker_seen");
  ASSERT_EQ(report.matched.size(), 1u);
  EXPECT_EQ(report.matched[0].latency().millis(), 30);
}

TEST(MarkerCorrelatorTest, ZeroLatencyMatches) {
  const ResultLog log = BuildLog({
      {100, "marker_sent", "M1"},
      {100, "marker_seen", "M1"},
  });
  const auto report = CorrelateMarkers(log, "marker_sent", "marker_seen");
  ASSERT_EQ(report.matched.size(), 1u);
  EXPECT_EQ(report.matched[0].latency().millis(), 0);
}

TEST(MarkerCorrelatorTest, EmptyLog) {
  const ResultLog log;
  const auto report = CorrelateMarkers(log, "a", "b");
  EXPECT_TRUE(report.matched.empty());
  EXPECT_TRUE(report.unmatched.empty());
}

}  // namespace
}  // namespace graphtides
