#include "harness/report.h"

#include <gtest/gtest.h>

namespace graphtides {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "22"});
  const std::string out = table.ToString();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // The second column starts at the same offset in every line.
  std::vector<std::string> lines;
  size_t start = 0;
  while (true) {
    const size_t nl = out.find('\n', start);
    if (nl == std::string::npos) break;
    lines.push_back(out.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), 4u);
  const size_t header_col = lines[0].find("value");
  EXPECT_EQ(lines[2].find('1'), header_col);
  EXPECT_EQ(lines[3].find("22"), header_col);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.AddRow({"only-one"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

TEST(TextTableTest, FormatDouble) {
  EXPECT_EQ(TextTable::FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::FormatDouble(5.0, 0), "5");
  EXPECT_EQ(TextTable::FormatDouble(-1.5, 1), "-1.5");
}

TEST(SectionHeaderTest, WrapsTitle) {
  EXPECT_EQ(SectionHeader("abc"), "\n=== abc ===\n");
}

TEST(ConfigBlockTest, AlignsKeys) {
  const std::string block =
      ConfigBlock({{"k", "v"}, {"longer-key", "value2"}});
  EXPECT_NE(block.find("k"), std::string::npos);
  EXPECT_NE(block.find("longer-key"), std::string::npos);
  // Both values begin at the same column.
  const size_t line2 = block.find('\n') + 1;
  EXPECT_EQ(block.find("v"), block.find("value2", line2) - line2);
}

}  // namespace
}  // namespace graphtides
