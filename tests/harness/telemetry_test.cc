#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "harness/telemetry/latency_histogram.h"
#include "harness/telemetry/run_telemetry.h"
#include "harness/telemetry/snapshot.h"
#include "harness/telemetry/snapshotter.h"
#include "harness/telemetry/streaming_marker_correlator.h"

namespace graphtides {
namespace {

// ---------------------------------------------------------------------------
// LatencyHistogram

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min_nanos(), 0);
  EXPECT_EQ(h.max_nanos(), 0);
  EXPECT_EQ(h.ValueAtQuantileNanos(0.5), 0);
  EXPECT_DOUBLE_EQ(h.mean_nanos(), 0.0);
}

TEST(LatencyHistogramTest, BucketBoundsPartitionTheValueRange) {
  // Buckets must tile [0, 2^40) with no gaps or overlaps, and BucketIndex
  // must send each bound into its own bucket.
  for (size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
    const int64_t low = LatencyHistogram::BucketLowNanos(i);
    const int64_t high = LatencyHistogram::BucketHighNanos(i);
    ASSERT_LT(low, high) << "bucket " << i;
    EXPECT_EQ(LatencyHistogram::BucketIndex(low), i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(high - 1), i);
    if (i + 1 < LatencyHistogram::kBucketCount) {
      EXPECT_EQ(high, LatencyHistogram::BucketLowNanos(i + 1));
    }
  }
  EXPECT_EQ(LatencyHistogram::BucketLowNanos(0), 0);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (int64_t v = 0; v < 16; ++v) h.RecordNanos(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.min_nanos(), 0);
  EXPECT_EQ(h.max_nanos(), 15);
  // Unit buckets: every value in [0, 16) is recovered exactly.
  EXPECT_EQ(h.ValueAtQuantileNanos(0.0), 0);
  EXPECT_EQ(h.ValueAtQuantileNanos(1.0), 15);
  EXPECT_EQ(h.ValueAtQuantileNanos(0.5), 7);
}

TEST(LatencyHistogramTest, NegativeAndHugeValuesClamp) {
  LatencyHistogram h;
  h.RecordNanos(-5);
  h.RecordNanos(int64_t{1} << 55);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.min_nanos(), 0);
  // The huge value clamps into the top bucket but max stays exact-clamped.
  EXPECT_EQ(LatencyHistogram::BucketIndex(h.max_nanos()),
            LatencyHistogram::kBucketCount - 1);
}

TEST(LatencyHistogramTest, QuantilesStayWithinBucketRelativeError) {
  Rng rng(1234);
  std::vector<int64_t> values;
  LatencyHistogram h;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform across ~7 orders of magnitude, like real latencies.
    const double exponent = 1.0 + rng.NextDouble() * 7.0;
    const int64_t v = static_cast<int64_t>(std::pow(10.0, exponent));
    values.push_back(v);
    h.RecordNanos(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const size_t rank = std::min(
        values.size() - 1,
        static_cast<size_t>(q * static_cast<double>(values.size())));
    const double truth = static_cast<double>(values[rank]);
    const double est = static_cast<double>(h.ValueAtQuantileNanos(q));
    // Bucket width is 12.5%; the midpoint estimate must stay within one
    // bucket of the true order statistic.
    EXPECT_NEAR(est, truth, truth * 0.13)
        << "q=" << q << " truth=" << truth << " est=" << est;
  }
}

TEST(LatencyHistogramTest, MergeOfAnyPartitionEqualsTheWhole) {
  // The determinism property behind sharded replay telemetry: however the
  // sample stream is partitioned across shards, merging the parts yields
  // bit-identical state (and therefore identical quantiles).
  Rng rng(99);
  std::vector<int64_t> values;
  for (int i = 0; i < 5000; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextDouble() * 1e8));
  }
  LatencyHistogram whole;
  for (int64_t v : values) whole.RecordNanos(v);

  for (size_t parts : {2u, 3u, 7u, 16u}) {
    std::vector<LatencyHistogram> shards(parts);
    for (int64_t v : values) {
      shards[static_cast<size_t>(rng.NextDouble() * parts) % parts]
          .RecordNanos(v);
    }
    LatencyHistogram merged;
    for (const LatencyHistogram& s : shards) merged.Merge(s);
    EXPECT_TRUE(merged == whole) << parts << " parts";
    EXPECT_EQ(merged.ValueAtQuantileNanos(0.5), whole.ValueAtQuantileNanos(0.5));
    EXPECT_EQ(merged.ValueAtQuantileNanos(0.99),
              whole.ValueAtQuantileNanos(0.99));
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_EQ(merged.min_nanos(), whole.min_nanos());
    EXPECT_EQ(merged.max_nanos(), whole.max_nanos());
    EXPECT_DOUBLE_EQ(merged.mean_nanos(), whole.mean_nanos());
  }
}

TEST(LatencyHistogramTest, MergeIntoEmptyAndOfEmptyAreIdentities) {
  LatencyHistogram a;
  a.RecordNanos(100);
  a.RecordNanos(2000);
  LatencyHistogram b;
  b.Merge(a);
  EXPECT_TRUE(b == a);
  a.Merge(LatencyHistogram{});
  EXPECT_TRUE(b == a);
}

// ---------------------------------------------------------------------------
// StreamingMarkerCorrelator

TEST(StreamingCorrelatorTest, MatchesOldestPendingSendOfLabel) {
  StreamingMarkerCorrelator c;
  c.MarkerSent("M1", Timestamp::FromMillis(10));
  c.MarkerSent("M1", Timestamp::FromMillis(20));
  EXPECT_TRUE(c.MarkerObserved("M1", Timestamp::FromMillis(25)));
  const CorrelatorCounts counts = c.Counts();
  EXPECT_EQ(counts.matched, 1u);
  EXPECT_EQ(counts.pending, 1u);
  // Oldest send (t=10) was consumed: latency is 15 ms, not 5 ms.
  const LatencyHistogram lat = c.LatencySnapshot();
  EXPECT_EQ(lat.count(), 1u);
  EXPECT_EQ(lat.max_nanos(), Duration::FromMillis(15).nanos());
}

TEST(StreamingCorrelatorTest, ObservationBeforeAnySendIsOrphan) {
  StreamingMarkerCorrelator c;
  EXPECT_FALSE(c.MarkerObserved("M1", Timestamp::FromMillis(5)));
  c.MarkerSent("M1", Timestamp::FromMillis(10));
  EXPECT_FALSE(c.MarkerObserved("M1", Timestamp::FromMillis(9)));
  const CorrelatorCounts counts = c.Counts();
  EXPECT_EQ(counts.orphan_observations, 2u);
  EXPECT_EQ(counts.matched, 0u);
  EXPECT_EQ(counts.pending, 1u);
}

TEST(StreamingCorrelatorTest, ZeroLatencyObservationMatches) {
  StreamingMarkerCorrelator c;
  c.MarkerSent("M", Timestamp::FromMillis(100));
  EXPECT_TRUE(c.MarkerObserved("M", Timestamp::FromMillis(100)));
  EXPECT_EQ(c.Counts().matched, 1u);
}

TEST(StreamingCorrelatorTest, ExpireBeforeTimesOutOldPendingSends) {
  StreamingCorrelatorOptions options;
  options.pending_timeout = Duration::FromMillis(50);
  StreamingMarkerCorrelator c(options);
  c.MarkerSent("OLD", Timestamp::FromMillis(0));
  c.MarkerSent("NEW", Timestamp::FromMillis(40));
  EXPECT_EQ(c.ExpireBefore(Timestamp::FromMillis(60)), 1u);
  const CorrelatorCounts counts = c.Counts();
  EXPECT_EQ(counts.unmatched, 1u);
  EXPECT_EQ(counts.pending, 1u);
  // The expired send can no longer match.
  EXPECT_FALSE(c.MarkerObserved("OLD", Timestamp::FromMillis(70)));
  EXPECT_TRUE(c.MarkerObserved("NEW", Timestamp::FromMillis(70)));
}

TEST(StreamingCorrelatorTest, PendingBudgetEvictsOldestFirst) {
  StreamingCorrelatorOptions options;
  options.max_pending = 4;
  options.keep_records = true;
  StreamingMarkerCorrelator c(options);
  for (int i = 0; i < 10; ++i) {
    c.MarkerSent("M" + std::to_string(i), Timestamp::FromMillis(i));
  }
  const CorrelatorCounts counts = c.Counts();
  EXPECT_EQ(counts.pending, 4u);
  EXPECT_EQ(counts.unmatched, 6u);
  const auto evicted = c.TakeUnmatchedLabels();
  ASSERT_EQ(evicted.size(), 6u);
  EXPECT_EQ(evicted.front(), "M0");
  EXPECT_EQ(evicted.back(), "M5");
}

TEST(StreamingCorrelatorTest, FinishFlushesEverythingPending) {
  StreamingMarkerCorrelator c;
  c.MarkerSent("A", Timestamp::FromMillis(1));
  c.MarkerSent("B", Timestamp::FromMillis(2));
  EXPECT_TRUE(c.MarkerObserved("A", Timestamp::FromMillis(3)));
  c.Finish();
  const CorrelatorCounts counts = c.Counts();
  EXPECT_EQ(counts.matched, 1u);
  EXPECT_EQ(counts.unmatched, 1u);
  EXPECT_EQ(counts.pending, 0u);
}

TEST(StreamingCorrelatorTest, KeepRecordsRetainsMatchedMarkers) {
  StreamingCorrelatorOptions options;
  options.keep_records = true;
  StreamingMarkerCorrelator c(options);
  c.MarkerSent("W1", Timestamp::FromMillis(10));
  c.MarkerObserved("W1", Timestamp::FromMillis(32));
  auto matched = c.TakeMatched();
  ASSERT_EQ(matched.size(), 1u);
  EXPECT_EQ(matched[0].label, "W1");
  EXPECT_EQ(matched[0].sent, Timestamp::FromMillis(10));
  EXPECT_EQ(matched[0].observed, Timestamp::FromMillis(32));
  // Drained: a second Take returns nothing.
  EXPECT_TRUE(c.TakeMatched().empty());
}

TEST(StreamingCorrelatorTest, ConcurrentSendersAndObserversStayConsistent) {
  // TSan-covered: senders, observers, an expirer, and a Counts() poller all
  // race on one correlator; cumulative counters must still reconcile.
  StreamingMarkerCorrelator c;
  constexpr int kPerThread = 2000;
  constexpr int kSenders = 3;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int s = 0; s < kSenders; ++s) {
    threads.emplace_back([&c, &go, s] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i) {
        c.MarkerSent("T" + std::to_string(s) + "-" + std::to_string(i),
                     Timestamp::FromNanos(i));
      }
    });
    threads.emplace_back([&c, &go, s] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i) {
        c.MarkerObserved("T" + std::to_string(s) + "-" + std::to_string(i),
                         Timestamp::FromNanos(i + 1));
      }
    });
  }
  threads.emplace_back([&c, &go] {
    while (!go.load()) std::this_thread::yield();
    for (int i = 0; i < 100; ++i) {
      c.Counts();
      c.LatencySnapshot();
      c.ExpireBefore(Timestamp::FromNanos(0));
      std::this_thread::yield();
    }
  });
  go.store(true);
  for (auto& t : threads) t.join();
  c.Finish();
  const CorrelatorCounts counts = c.Counts();
  EXPECT_EQ(counts.sent, static_cast<uint64_t>(kSenders) * kPerThread);
  EXPECT_EQ(counts.observed, static_cast<uint64_t>(kSenders) * kPerThread);
  EXPECT_EQ(counts.matched + counts.unmatched, counts.sent);
  EXPECT_EQ(counts.matched + counts.orphan_observations, counts.observed);
  EXPECT_EQ(counts.pending, 0u);
  EXPECT_EQ(c.LatencySnapshot().count(), counts.matched);
}

// ---------------------------------------------------------------------------
// RunTelemetry

TEST(RunTelemetryTest, MergedShardHistogramsMatchSingleShardRecording) {
  // Same deterministic span stream recorded through 1 shard and through 4:
  // the merged stage histograms must be identical, which is what makes
  // `gt_replay --shards N` telemetry percentiles shard-count-invariant.
  RunTelemetryOptions single_opts;
  single_opts.shards = 1;
  RunTelemetry single(single_opts);
  RunTelemetryOptions sharded_opts;
  sharded_opts.shards = 4;
  RunTelemetry sharded(sharded_opts);

  for (int i = 0; i < 4000; ++i) {
    const auto stage = static_cast<ReplayStage>(i % kReplayStageCount);
    const Duration span = Duration::FromNanos(37 + (i * i) % 1000000);
    single.RecordStage(0, stage, span);
    sharded.RecordStage(i % 4, stage, span);
  }
  const auto merged_single = single.MergedStageHistograms();
  const auto merged_sharded = sharded.MergedStageHistograms();
  for (size_t s = 0; s < kReplayStageCount; ++s) {
    EXPECT_TRUE(merged_single[s] == merged_sharded[s])
        << ReplayStageName(static_cast<ReplayStage>(s));
  }
}

TEST(RunTelemetryTest, SnapshotAggregatesShardSlots) {
  RunTelemetryOptions options;
  options.shards = 3;
  RunTelemetry telemetry(options);
  telemetry.AddDelivered(0, 100);
  telemetry.AddDelivered(1, 100);
  telemetry.AddDelivered(2, 100);
  DeliveryCounters faults;
  faults.retries = 5;
  faults.backoff_s = 0.25;
  telemetry.UpdateDeliveryCounters(1, faults);
  telemetry.RecordStage(2, ReplayStage::kDeliver, Duration::FromMicros(12));

  EXPECT_EQ(telemetry.TotalDelivered(), 300u);
  const TelemetrySnapshot snap = telemetry.Snapshot();
  EXPECT_EQ(snap.events, 300u);
  ASSERT_EQ(snap.shard_events.size(), 3u);
  EXPECT_EQ(snap.shard_events[0], 100u);
  EXPECT_DOUBLE_EQ(snap.shard_imbalance, 0.0);
  EXPECT_EQ(snap.sink.retries, 5u);
  EXPECT_DOUBLE_EQ(snap.sink.backoff_s, 0.25);
  EXPECT_EQ(snap.stages[static_cast<size_t>(ReplayStage::kDeliver)].count, 1u);
}

TEST(RunTelemetryTest, SamplingGateFiresOncePerPeriod) {
  RunTelemetryOptions options;
  options.sample_every = 8;
  RunTelemetry telemetry(options);
  int sampled = 0;
  for (int i = 0; i < 64; ++i) sampled += telemetry.ShouldSample(0) ? 1 : 0;
  EXPECT_EQ(sampled, 8);
}

TEST(RunTelemetryTest, ConcurrentRecordingFromManyThreads) {
  // TSan-covered: four lanes record stages/counters while a reader thread
  // snapshots — the exact interleaving is unconstrained but totals must
  // reconcile after the join.
  RunTelemetryOptions options;
  options.shards = 4;
  RunTelemetry telemetry(options);
  constexpr uint64_t kPerLane = 5000;
  std::vector<std::thread> lanes;
  for (size_t shard = 0; shard < 4; ++shard) {
    lanes.emplace_back([&telemetry, shard] {
      for (uint64_t i = 0; i < kPerLane; ++i) {
        if (telemetry.ShouldSample(shard)) {
          telemetry.RecordStage(shard, ReplayStage::kDeliver,
                                Duration::FromNanos(static_cast<int64_t>(i)));
        }
        telemetry.AddDelivered(shard, 1);
      }
      DeliveryCounters totals;
      totals.retries = shard;
      telemetry.UpdateDeliveryCounters(shard, totals);
    });
  }
  std::thread snapshotter([&telemetry] {
    for (int i = 0; i < 50; ++i) {
      const TelemetrySnapshot snap = telemetry.Snapshot();
      ASSERT_LE(snap.events, 4 * kPerLane);
      std::this_thread::yield();
    }
  });
  for (auto& t : lanes) t.join();
  snapshotter.join();
  const TelemetrySnapshot snap = telemetry.Snapshot();
  EXPECT_EQ(snap.events, 4 * kPerLane);
  EXPECT_EQ(snap.sink.retries, 0u + 1 + 2 + 3);
  const uint64_t expected_samples =
      4 * (kPerLane / RunTelemetryOptions{}.sample_every);
  EXPECT_EQ(snap.stages[static_cast<size_t>(ReplayStage::kDeliver)].count,
            expected_samples);
}

// ---------------------------------------------------------------------------
// TelemetrySnapshot JSONL

TelemetrySnapshot MakeFullSnapshot() {
  TelemetrySnapshot snap;
  snap.seq = 7;
  snap.elapsed_s = 3.5;
  snap.events = 123456;
  snap.events_per_sec = 35273.14;
  snap.shard_events = {60000, 63456};
  snap.ComputeImbalance();
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.RecordNanos(i * 997);
  snap.stages[static_cast<size_t>(ReplayStage::kDeliver)] =
      StageSummary::FromHistogram(h);
  snap.stages[static_cast<size_t>(ReplayStage::kThrottle)] =
      StageSummary::FromHistogram(h);
  snap.markers.sent = 10;
  snap.markers.matched = 8;
  snap.markers.unmatched = 1;
  snap.markers.pending = 1;
  snap.markers.orphans = 2;
  snap.markers.latency = StageSummary::FromHistogram(h);
  snap.sink.retries = 3;
  snap.sink.reconnects = 1;
  snap.sink.backoff_s = 0.125;
  return snap;
}

void ExpectSummaryEq(const StageSummary& a, const StageSummary& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_NEAR(a.p50_us, b.p50_us, std::abs(b.p50_us) * 1e-9);
  EXPECT_NEAR(a.p90_us, b.p90_us, std::abs(b.p90_us) * 1e-9);
  EXPECT_NEAR(a.p99_us, b.p99_us, std::abs(b.p99_us) * 1e-9);
  EXPECT_NEAR(a.p999_us, b.p999_us, std::abs(b.p999_us) * 1e-9);
  EXPECT_NEAR(a.max_us, b.max_us, std::abs(b.max_us) * 1e-9);
}

TEST(TelemetrySnapshotTest, JsonLineRoundTripsAllFields) {
  const TelemetrySnapshot snap = MakeFullSnapshot();
  const std::string line = snap.ToJsonLine();
  EXPECT_EQ(line.find('\n'), std::string::npos);

  auto parsed = TelemetrySnapshot::FromJsonLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seq, snap.seq);
  EXPECT_NEAR(parsed->elapsed_s, snap.elapsed_s, 1e-9);
  EXPECT_EQ(parsed->events, snap.events);
  EXPECT_NEAR(parsed->events_per_sec, snap.events_per_sec, 1e-3);
  EXPECT_EQ(parsed->shard_events, snap.shard_events);
  EXPECT_NEAR(parsed->shard_imbalance, snap.shard_imbalance, 1e-9);
  for (size_t s = 0; s < kReplayStageCount; ++s) {
    ExpectSummaryEq(parsed->stages[s], snap.stages[s]);
  }
  EXPECT_EQ(parsed->markers.sent, snap.markers.sent);
  EXPECT_EQ(parsed->markers.matched, snap.markers.matched);
  EXPECT_EQ(parsed->markers.unmatched, snap.markers.unmatched);
  EXPECT_EQ(parsed->markers.pending, snap.markers.pending);
  EXPECT_EQ(parsed->markers.orphans, snap.markers.orphans);
  ExpectSummaryEq(parsed->markers.latency, snap.markers.latency);
  EXPECT_EQ(parsed->sink.retries, snap.sink.retries);
  EXPECT_EQ(parsed->sink.reconnects, snap.sink.reconnects);
  EXPECT_NEAR(parsed->sink.backoff_s, snap.sink.backoff_s, 1e-9);
}

TEST(TelemetrySnapshotTest, MinimalSnapshotRoundTrips) {
  TelemetrySnapshot snap;
  snap.shard_events = {0};
  auto parsed = TelemetrySnapshot::FromJsonLine(snap.ToJsonLine());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->events, 0u);
  EXPECT_EQ(parsed->markers.sent, 0u);
  EXPECT_FALSE(parsed->sink.any());
}

TEST(TelemetrySnapshotTest, RejectsMalformedAndWrongSchemaLines) {
  EXPECT_FALSE(TelemetrySnapshot::FromJsonLine("").ok());
  EXPECT_FALSE(TelemetrySnapshot::FromJsonLine("not json").ok());
  EXPECT_FALSE(TelemetrySnapshot::FromJsonLine("{\"seq\":0}").ok());
  EXPECT_FALSE(TelemetrySnapshot::FromJsonLine(
                   "{\"schema\":\"gt-telemetry-v9\",\"seq\":0}")
                   .ok());
  // Trailing garbage after a valid object is malformed, not ignored.
  TelemetrySnapshot snap;
  snap.shard_events = {0};
  EXPECT_FALSE(
      TelemetrySnapshot::FromJsonLine(snap.ToJsonLine() + " trailing").ok());
}

TEST(TelemetrySnapshotTest, RecoveryBlockEmitsOnlyWhenNonZero) {
  TelemetrySnapshot snap;
  snap.shard_events = {0};
  // Fault-free runs keep the line compact: no "recovery" block at all.
  EXPECT_EQ(snap.ToJsonLine().find("\"recovery\""), std::string::npos);

  snap.recovery.crashes = 2;
  snap.recovery.resumes = 2;
  snap.recovery.checkpoint_fallbacks = 1;
  snap.recovery.write_faults = 3;
  snap.recovery.downtime_s = 0.75;
  const std::string line = snap.ToJsonLine();
  EXPECT_NE(line.find("\"recovery\""), std::string::npos);

  auto parsed = TelemetrySnapshot::FromJsonLine(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->recovery.crashes, 2u);
  EXPECT_EQ(parsed->recovery.resumes, 2u);
  EXPECT_EQ(parsed->recovery.checkpoint_fallbacks, 1u);
  EXPECT_EQ(parsed->recovery.write_faults, 3u);
  EXPECT_NEAR(parsed->recovery.downtime_s, 0.75, 1e-9);
  EXPECT_TRUE(parsed->recovery.any());
}

TEST(RunTelemetryTest, RecoveryCountersFlowIntoSnapshots) {
  RunTelemetry telemetry;
  EXPECT_FALSE(telemetry.Snapshot().recovery.any());

  RecoveryCounters counters;
  counters.resumes = 1;
  counters.checkpoint_fallbacks = 2;
  telemetry.UpdateRecoveryCounters(counters);
  TelemetrySnapshot snap = telemetry.Snapshot();
  EXPECT_EQ(snap.recovery.resumes, 1u);
  EXPECT_EQ(snap.recovery.checkpoint_fallbacks, 2u);

  // The supervisor replaces totals wholesale; the latest update wins.
  counters.write_faults = 4;
  telemetry.UpdateRecoveryCounters(counters);
  EXPECT_EQ(telemetry.Snapshot().recovery.write_faults, 4u);
}

// ---------------------------------------------------------------------------
// TelemetrySnapshotter

TEST(TelemetrySnapshotterTest, EmitsMonotonicSnapshotsAndFinalOnStop) {
  RunTelemetry telemetry;
  std::mutex mu;
  std::vector<TelemetrySnapshot> seen;
  SnapshotterOptions options;
  options.period = Duration::FromMillis(5);
  options.on_snapshot = [&](const TelemetrySnapshot& snap) {
    std::lock_guard<std::mutex> lock(mu);
    seen.push_back(snap);
  };
  TelemetrySnapshotter snapshotter(&telemetry, options);
  snapshotter.Start();
  for (int i = 0; i < 10; ++i) {
    telemetry.AddDelivered(0, 100);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  snapshotter.Stop();

  ASSERT_GE(seen.size(), 1u);
  EXPECT_EQ(snapshotter.snapshots_emitted(), seen.size());
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].seq, i);
    if (i > 0) {
      EXPECT_GE(seen[i].elapsed_s, seen[i - 1].elapsed_s);
      EXPECT_GE(seen[i].events, seen[i - 1].events);
    }
  }
  // Stop() emits a final snapshot, so the last record has everything.
  EXPECT_EQ(seen.back().events, 1000u);
  // Stop is idempotent and emits nothing further.
  snapshotter.Stop();
  EXPECT_EQ(snapshotter.snapshots_emitted(), seen.size());
}

TEST(TelemetrySnapshotterTest, StopWithoutStartStillEmitsFinalSnapshot) {
  RunTelemetry telemetry;
  telemetry.AddDelivered(0, 42);
  size_t emitted = 0;
  uint64_t final_events = 0;
  SnapshotterOptions options;
  options.on_snapshot = [&](const TelemetrySnapshot& snap) {
    ++emitted;
    final_events = snap.events;
  };
  TelemetrySnapshotter snapshotter(&telemetry, options);
  snapshotter.Stop();
  EXPECT_EQ(emitted, 1u);
  EXPECT_EQ(final_events, 42u);
}

}  // namespace
}  // namespace graphtides
