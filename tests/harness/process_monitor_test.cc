#include "harness/process_monitor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace graphtides {
namespace {

/// Spins for roughly `ms` of wall time, keeping one core busy.
void BurnCpu(int ms) {
  const auto end =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  volatile uint64_t sink = 0;
  while (std::chrono::steady_clock::now() < end) {
    for (int i = 0; i < 10000; ++i) sink += i;
  }
}

TEST(ProcessMonitorTest, SamplesSelf) {
  ProcessMonitor monitor = ProcessMonitor::Self();
  auto sample = monitor.Sample();
  ASSERT_TRUE(sample.ok()) << sample.status();
  EXPECT_GT(sample->rss_bytes, 1024u * 1024u);  // >= 1 MiB resident
  EXPECT_GE(sample->num_threads, 1u);
  EXPECT_EQ(sample->cpu_percent, 0.0);  // first sample has no baseline
}

TEST(ProcessMonitorTest, CpuUtilizationReflectsLoad) {
  ProcessMonitor monitor = ProcessMonitor::Self();
  ASSERT_TRUE(monitor.Sample().ok());
  // An idle window first: this process sleeps, so whatever utilization the
  // monitor reports is noise. The property under test is that a busy
  // window reads clearly above that — an absolute bound would depend on
  // how many sibling test processes share the cores (ctest -j on a small
  // host can cap one spinner well under a full core's worth).
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  auto idle = monitor.Sample();
  ASSERT_TRUE(idle.ok());
  BurnCpu(200);
  auto busy = monitor.Sample();
  ASSERT_TRUE(busy.ok());
  EXPECT_GT(busy->cpu_percent, idle->cpu_percent + 10.0);
}

TEST(ProcessMonitorTest, CpuTicksMonotone) {
  ProcessMonitor monitor = ProcessMonitor::Self();
  auto a = monitor.Sample();
  ASSERT_TRUE(a.ok());
  BurnCpu(50);
  auto b = monitor.Sample();
  ASSERT_TRUE(b.ok());
  EXPECT_GE(b->cpu_ticks, a->cpu_ticks);
  EXPECT_GT(b->time, a->time);
}

TEST(ProcessMonitorTest, MissingProcessIsIoError) {
  // PID 0 never has a /proc entry accessible this way; use an absurd pid.
  ProcessMonitor monitor(999999999);
  auto sample = monitor.Sample();
  ASSERT_FALSE(sample.ok());
  EXPECT_TRUE(sample.status().IsIoError());
}

TEST(PeriodicProcessLoggerTest, LogsCpuAndRssSeries) {
  WallClock wall;
  MetricsLogger logger("sut-process", &wall);
  {
    PeriodicProcessLogger periodic(::getpid(), &logger,
                                   Duration::FromMillis(20));
    BurnCpu(150);
    // Destructor stops the sampler.
  }
  const auto records = logger.Records();
  ASSERT_GE(records.size(), 4u);
  size_t cpu_records = 0;
  size_t rss_records = 0;
  for (const LogRecord& r : records) {
    EXPECT_EQ(r.source, "sut-process");
    if (r.metric == "cpu") ++cpu_records;
    if (r.metric == "rss") {
      ++rss_records;
      EXPECT_GT(r.value, 0.0);
    }
  }
  EXPECT_EQ(cpu_records, rss_records);
  EXPECT_GE(cpu_records, 2u);
}

TEST(PeriodicProcessLoggerTest, StopIsIdempotent) {
  WallClock wall;
  MetricsLogger logger("p", &wall);
  PeriodicProcessLogger periodic(::getpid(), &logger,
                                 Duration::FromMillis(10));
  periodic.Stop();
  periodic.Stop();
  SUCCEED();
}

}  // namespace
}  // namespace graphtides
