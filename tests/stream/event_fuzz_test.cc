// Deterministic-shuffle fuzzing of the stream-format parsers: valid lines
// are mutilated by a seeded RNG (truncation, field swaps, embedded NUL/CR,
// overlong payloads, byte noise) and fed to both ParseEventLine and the
// zero-copy ParseEventLineView. Neither may crash, both must agree on
// accept/reject and on the parsed value, and the strict file validator must
// flag exactly the lines the parser rejects.
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <iterator>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "stream/event.h"
#include "stream/event_view.h"
#include "stream/validator.h"

namespace graphtides {
namespace {

constexpr uint64_t kSeed = 0x667a7a5f31ULL;  // stable across runs

Event RandomValidEvent(Rng& rng) {
  const VertexId a = rng.NextBounded(1000);
  const VertexId b = rng.NextBounded(1000);
  switch (rng.NextBounded(9)) {
    case 0:
      return Event::AddVertex(a, "state-" + std::to_string(b));
    case 1:
      return Event::RemoveVertex(a);
    case 2:
      return Event::UpdateVertex(a, "u,pd\"ate");  // forces quoting
    case 3:
      return Event::AddEdge(a, b, "w=1");
    case 4:
      return Event::RemoveEdge(a, b);
    case 5:
      return Event::UpdateEdge(a, b, "w=2");
    case 6:
      return Event::Marker("m" + std::to_string(a));
    case 7:
      return Event::SetRate(1.5);
    default:
      return Event::Pause(Duration::FromMillis(5));
  }
}

char RandomByte(Rng& rng) {
  // Bias toward structurally meaningful bytes so mutations actually hit
  // the parser's state machine, not just payload content.
  static constexpr char kHostile[] = {',', '"', '\0', '\r', '\n',
                                      '-', '#', ' ',  '\t', '0'};
  if (rng.NextBool(0.6)) {
    return kHostile[rng.NextBounded(std::size(kHostile))];
  }
  return static_cast<char>(rng.NextBounded(256));
}

std::string MutateLine(std::string line, Rng& rng) {
  const int mutations = 1 + static_cast<int>(rng.NextBounded(3));
  for (int m = 0; m < mutations; ++m) {
    if (line.empty()) {
      line.push_back(RandomByte(rng));
      continue;
    }
    switch (rng.NextBounded(8)) {
      case 0:  // truncate at a random point
        line.resize(rng.NextBounded(line.size() + 1));
        break;
      case 1: {  // delete one byte
        line.erase(rng.NextBounded(line.size()), 1);
        break;
      }
      case 2: {  // insert one byte
        line.insert(line.begin() + static_cast<ptrdiff_t>(
                                       rng.NextBounded(line.size() + 1)),
                    RandomByte(rng));
        break;
      }
      case 3: {  // overwrite one byte
        line[rng.NextBounded(line.size())] = RandomByte(rng);
        break;
      }
      case 4: {  // swap the comma-separated fields around
        std::vector<std::string> parts;
        size_t start = 0;
        for (size_t i = 0; i <= line.size(); ++i) {
          if (i == line.size() || line[i] == ',') {
            parts.push_back(line.substr(start, i - start));
            start = i + 1;
          }
        }
        if (parts.size() >= 2) {
          const size_t x = rng.NextBounded(parts.size());
          const size_t y = rng.NextBounded(parts.size());
          std::swap(parts[x], parts[y]);
          line.clear();
          for (size_t i = 0; i < parts.size(); ++i) {
            if (i > 0) line.push_back(',');
            line += parts[i];
          }
        }
        break;
      }
      case 5:  // duplicate a suffix (overlong / repeated-field shapes)
        line += line.substr(rng.NextBounded(line.size()));
        break;
      case 6: {  // blow up the tail into an overlong payload
        line.append(1 + rng.NextBounded(4096), 'A');
        break;
      }
      default:  // embed a NUL mid-line
        line.insert(line.begin() + static_cast<ptrdiff_t>(
                                       rng.NextBounded(line.size() + 1)),
                    '\0');
        break;
    }
  }
  return line;
}

TEST(EventFuzzTest, ParsersNeverCrashAndAlwaysAgree) {
  Rng rng(kSeed);
  std::string scratch;
  size_t accepted = 0;
  size_t rejected = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::string line = MutateLine(FormatEventLine(RandomValidEvent(rng)), rng);
    const Result<Event> owned = ParseEventLine(line);
    const Result<EventView> viewed = ParseEventLineView(line, &scratch);
    ASSERT_EQ(owned.ok(), viewed.ok())
        << "iteration " << i << "\nline: " << line
        << "\nowned:  " << owned.status().ToString()
        << "\nviewed: " << viewed.status().ToString();
    if (owned.ok()) {
      ++accepted;
      EXPECT_EQ(viewed->Materialize(), *owned) << "iteration " << i
                                               << "\nline: " << line;
    } else {
      ++rejected;
      EXPECT_EQ(owned.status().code(), viewed.status().code())
          << "iteration " << i << "\nline: " << line
          << "\nowned:  " << owned.status().ToString()
          << "\nviewed: " << viewed.status().ToString();
    }
  }
  // The corpus must exercise both sides of the accept/reject boundary, or
  // the agreement assertions above are vacuous.
  EXPECT_GT(accepted, 100u);
  EXPECT_GT(rejected, 1000u);
}

TEST(EventFuzzTest, RejectionsMatchStrictFileValidation) {
  // Write a file of mutated lines (no embedded '\n' — the file reader
  // would split those into several records) and check that the strict
  // validator reports a parse issue on exactly the lines ParseEventLine
  // rejects with an error other than NotFound.
  Rng rng(kSeed + 1);
  std::vector<std::string> lines;
  while (lines.size() < 2000) {
    std::string line = MutateLine(FormatEventLine(RandomValidEvent(rng)), rng);
    if (line.find('\n') != std::string::npos) continue;
    lines.push_back(std::move(line));
  }

  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("gt_fuzz_" + std::to_string(::getpid()) + ".stream");
  {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good());
    for (const std::string& line : lines) out << line << '\n';
  }

  std::set<size_t> expected_bad;  // 1-based line numbers
  for (size_t i = 0; i < lines.size(); ++i) {
    const Result<Event> parsed = ParseEventLine(lines[i]);
    if (!parsed.ok() && !parsed.status().IsNotFound()) {
      expected_bad.insert(i + 1);
    }
  }

  const Result<StreamFileValidationReport> report = ValidateStreamFile(path.string());
  std::filesystem::remove(path);
  ASSERT_TRUE(report.ok()) << report.status();
  std::set<size_t> reported_bad;
  for (const StreamFileIssue& issue : report->issues) {
    if (issue.parse_error) reported_bad.insert(issue.line);
  }
  EXPECT_EQ(reported_bad, expected_bad);
  EXPECT_FALSE(expected_bad.empty());
}

}  // namespace
}  // namespace graphtides
