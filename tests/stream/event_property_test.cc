// Property-based tests for the stream format: FormatEventLine and
// ParseEventLine are inverses over randomly generated valid events, and the
// zero-copy view parser (ParseEventLineView) agrees with the owning parser
// byte-for-byte on every line the generator can produce.
#include <cctype>
#include <cstdint>
#include <iterator>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "stream/event.h"
#include "stream/event_view.h"

namespace graphtides {
namespace {

constexpr uint64_t kSeed = 0x6772747031ULL;  // stable across runs
constexpr int kIterations = 5000;

bool IsCsvQuotable(char c) {
  return c == ',' || c == '"' || c == '\n' || c == '\r';
}

// A payload round-trips through the line format iff the formatter's
// quoting protects it from the parser's whitespace trim: either it has no
// whitespace at the edges, or it contains a character that forces quoting.
std::string RandomPayload(Rng& rng) {
  static constexpr std::string_view kAlphabet =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
      " \t,\"\n\r-_.:;!?#{}[]()'/\\|@$%^&*+=~`<>";
  const uint64_t mode = rng.NextBounded(8);
  if (mode == 0) return "";
  size_t length = 1 + rng.NextBounded(24);
  if (mode == 1) length = 200 + rng.NextBounded(2000);  // overlong payloads
  std::string payload;
  payload.reserve(length);
  bool quotable = false;
  for (size_t i = 0; i < length; ++i) {
    const char c = kAlphabet[rng.NextBounded(kAlphabet.size())];
    quotable = quotable || IsCsvQuotable(c);
    payload.push_back(c);
  }
  if (!quotable) {
    // Unquoted payloads must survive TrimWhitespace on the parse side.
    if (std::isspace(static_cast<unsigned char>(payload.front()))) {
      payload.front() = 'x';
    }
    if (std::isspace(static_cast<unsigned char>(payload.back()))) {
      payload.back() = 'x';
    }
    // '#' only comments a line at position 0, and the command name comes
    // first, so payloads may contain '#' freely.
  }
  return payload;
}

VertexId RandomVertexId(Rng& rng) {
  switch (rng.NextBounded(3)) {
    case 0:
      return rng.NextBounded(100);  // collision-heavy, generator-like ids
    case 1:
      return rng.NextBounded(1u << 20);
    default:
      return rng.NextU64();  // full 64-bit range incl. UINT64_MAX edge
  }
}

// Rate factors must survive the formatter's "%g" (6 significant digits),
// so the generator draws from dyadic and short-decimal values.
double RandomRateFactor(Rng& rng) {
  static constexpr double kFactors[] = {0.125, 0.5,  0.75, 1.0,  1.5,
                                        2.0,   2.25, 3.0,  10.0, 512.0};
  return kFactors[rng.NextBounded(std::size(kFactors))];
}

Event RandomEvent(Rng& rng) {
  switch (rng.NextBounded(9)) {
    case 0:
      return Event::AddVertex(RandomVertexId(rng), RandomPayload(rng));
    case 1:
      return Event::RemoveVertex(RandomVertexId(rng));
    case 2:
      return Event::UpdateVertex(RandomVertexId(rng), RandomPayload(rng));
    case 3:
      return Event::AddEdge(RandomVertexId(rng), RandomVertexId(rng),
                            RandomPayload(rng));
    case 4:
      return Event::RemoveEdge(RandomVertexId(rng), RandomVertexId(rng));
    case 5:
      return Event::UpdateEdge(RandomVertexId(rng), RandomVertexId(rng),
                               RandomPayload(rng));
    case 6:
      return Event::Marker(RandomPayload(rng));
    case 7:
      return Event::SetRate(RandomRateFactor(rng));
    default:
      return Event::Pause(
          Duration::FromMillis(static_cast<int64_t>(rng.NextBounded(100000))));
  }
}

TEST(EventPropertyTest, ParseInvertsFormatOnRandomEvents) {
  Rng rng(kSeed);
  for (int i = 0; i < kIterations; ++i) {
    const Event event = RandomEvent(rng);
    const std::string line = FormatEventLine(event);
    const Result<Event> parsed = ParseEventLine(line);
    ASSERT_TRUE(parsed.ok()) << "iteration " << i << ": " << parsed.status()
                             << "\nline: " << line;
    EXPECT_EQ(*parsed, event) << "iteration " << i << "\nline: " << line;
  }
}

TEST(EventPropertyTest, FormatIsAFixpointUnderReparse) {
  // format ∘ parse ∘ format == format: the canonical rendering is stable.
  Rng rng(kSeed + 1);
  for (int i = 0; i < kIterations; ++i) {
    const std::string line = FormatEventLine(RandomEvent(rng));
    const Result<Event> parsed = ParseEventLine(line);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_EQ(FormatEventLine(*parsed), line) << "iteration " << i;
  }
}

TEST(EventPropertyTest, ViewParserAgreesWithOwningParserOnValidLines) {
  Rng rng(kSeed + 2);
  std::string scratch;
  for (int i = 0; i < kIterations; ++i) {
    const Event event = RandomEvent(rng);
    const std::string line = FormatEventLine(event);
    const Result<EventView> view = ParseEventLineView(line, &scratch);
    ASSERT_TRUE(view.ok()) << "iteration " << i << ": " << view.status()
                           << "\nline: " << line;
    EXPECT_EQ(view->Materialize(), event) << "iteration " << i
                                          << "\nline: " << line;
  }
}

TEST(EventPropertyTest, ViewAppendLineReproducesCanonicalBytes) {
  Rng rng(kSeed + 3);
  std::string scratch;
  std::string out;
  for (int i = 0; i < kIterations; ++i) {
    const Event event = RandomEvent(rng);
    const std::string line = FormatEventLine(event);
    const Result<EventView> view = ParseEventLineView(line, &scratch);
    ASSERT_TRUE(view.ok()) << line;
    out.clear();
    view->AppendLine(&out);
    EXPECT_EQ(out, line + "\n") << "iteration " << i;
  }
}

TEST(EventPropertyTest, ViewParserHandlesQuotedFieldsViaScratch) {
  // Payloads with escapes land in the scratch buffer; several parses
  // through one scratch must not invalidate each other's results within a
  // call, and the scratch resets between calls.
  std::string scratch;
  const Result<EventView> view =
      ParseEventLineView("MARKER,,\"a\"\"b\"\"c\"", &scratch);
  ASSERT_TRUE(view.ok()) << view.status();
  EXPECT_EQ(view->payload, "a\"b\"c");
  const Result<EventView> second =
      ParseEventLineView("CREATE_VERTEX,7,\"x,y\"", &scratch);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->payload, "x,y");
  EXPECT_EQ(second->vertex, 7u);
}

TEST(EventPropertyTest, ViewParserLeavesUnquotedPayloadInPlace) {
  // Zero-copy claim: an unquoted payload views directly into the input.
  const std::string line = "UPDATE_VERTEX,42,hello";
  std::string scratch;
  const Result<EventView> view = ParseEventLineView(line, &scratch);
  ASSERT_TRUE(view.ok());
  const char* line_begin = line.data();
  const char* line_end = line.data() + line.size();
  EXPECT_GE(view->payload.data(), line_begin);
  EXPECT_LE(view->payload.data() + view->payload.size(), line_end);
  EXPECT_TRUE(scratch.empty());
}

}  // namespace
}  // namespace graphtides
