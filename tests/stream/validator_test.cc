#include "stream/validator.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

namespace graphtides {
namespace {

TEST(StreamValidatorTest, AddVertexOnce) {
  StreamValidator v;
  EXPECT_TRUE(v.Check(Event::AddVertex(1)).ok());
  EXPECT_TRUE(v.HasVertex(1));
  EXPECT_EQ(v.num_vertices(), 1u);
  // Duplicate add fails.
  EXPECT_TRUE(v.Check(Event::AddVertex(1)).IsPreconditionFailed());
  EXPECT_EQ(v.num_vertices(), 1u);
}

TEST(StreamValidatorTest, RemoveRequiresExistence) {
  StreamValidator v;
  EXPECT_TRUE(v.Check(Event::RemoveVertex(5)).IsPreconditionFailed());
  ASSERT_TRUE(v.Check(Event::AddVertex(5)).ok());
  EXPECT_TRUE(v.Check(Event::RemoveVertex(5)).ok());
  EXPECT_FALSE(v.HasVertex(5));
}

TEST(StreamValidatorTest, UpdateVertexRequiresExistence) {
  StreamValidator v;
  EXPECT_TRUE(
      v.Check(Event::UpdateVertex(1, "x")).IsPreconditionFailed());
  ASSERT_TRUE(v.Check(Event::AddVertex(1)).ok());
  EXPECT_TRUE(v.Check(Event::UpdateVertex(1, "x")).ok());
}

TEST(StreamValidatorTest, EdgePreconditions) {
  StreamValidator v;
  ASSERT_TRUE(v.Check(Event::AddVertex(1)).ok());
  ASSERT_TRUE(v.Check(Event::AddVertex(2)).ok());
  // Self loop rejected.
  EXPECT_TRUE(v.Check(Event::AddEdge(1, 1)).IsPreconditionFailed());
  // Missing endpoint rejected.
  EXPECT_TRUE(v.Check(Event::AddEdge(1, 3)).IsPreconditionFailed());
  EXPECT_TRUE(v.Check(Event::AddEdge(3, 1)).IsPreconditionFailed());
  // Valid add.
  EXPECT_TRUE(v.Check(Event::AddEdge(1, 2)).ok());
  EXPECT_TRUE(v.HasEdge({1, 2}));
  EXPECT_FALSE(v.HasEdge({2, 1}));  // directed
  // Duplicate rejected.
  EXPECT_TRUE(v.Check(Event::AddEdge(1, 2)).IsPreconditionFailed());
  // Reverse direction is a distinct edge.
  EXPECT_TRUE(v.Check(Event::AddEdge(2, 1)).ok());
  EXPECT_EQ(v.num_edges(), 2u);
}

TEST(StreamValidatorTest, RemoveAndUpdateEdge) {
  StreamValidator v;
  ASSERT_TRUE(v.Check(Event::AddVertex(1)).ok());
  ASSERT_TRUE(v.Check(Event::AddVertex(2)).ok());
  EXPECT_TRUE(v.Check(Event::RemoveEdge(1, 2)).IsPreconditionFailed());
  EXPECT_TRUE(
      v.Check(Event::UpdateEdge(1, 2, "x")).IsPreconditionFailed());
  ASSERT_TRUE(v.Check(Event::AddEdge(1, 2)).ok());
  EXPECT_TRUE(v.Check(Event::UpdateEdge(1, 2, "x")).ok());
  EXPECT_TRUE(v.Check(Event::RemoveEdge(1, 2)).ok());
  EXPECT_EQ(v.num_edges(), 0u);
}

TEST(StreamValidatorTest, RemoveVertexCascadesEdges) {
  StreamValidator v;
  for (VertexId id : {1, 2, 3}) {
    ASSERT_TRUE(v.Check(Event::AddVertex(id)).ok());
  }
  ASSERT_TRUE(v.Check(Event::AddEdge(1, 2)).ok());
  ASSERT_TRUE(v.Check(Event::AddEdge(3, 1)).ok());
  ASSERT_TRUE(v.Check(Event::AddEdge(2, 3)).ok());
  EXPECT_EQ(v.num_edges(), 3u);
  ASSERT_TRUE(v.Check(Event::RemoveVertex(1)).ok());
  // Edges 1->2 and 3->1 are gone; 2->3 survives.
  EXPECT_EQ(v.num_edges(), 1u);
  EXPECT_TRUE(v.HasEdge({2, 3}));
  EXPECT_FALSE(v.HasEdge({1, 2}));
  EXPECT_FALSE(v.HasEdge({3, 1}));
  // Recreating the vertex gives it no edges.
  ASSERT_TRUE(v.Check(Event::AddVertex(1)).ok());
  EXPECT_TRUE(v.Check(Event::AddEdge(1, 2)).ok());
}

TEST(StreamValidatorTest, MarkersAndControlsAlwaysPass) {
  StreamValidator v;
  EXPECT_TRUE(v.Check(Event::Marker("m")).ok());
  EXPECT_TRUE(v.Check(Event::SetRate(2.0)).ok());
  EXPECT_TRUE(v.Check(Event::Pause(Duration::FromSeconds(1.0))).ok());
  EXPECT_EQ(v.num_vertices(), 0u);
}

TEST(ValidateStreamTest, CleanStreamReport) {
  const std::vector<Event> events = {
      Event::AddVertex(1), Event::AddVertex(2), Event::AddEdge(1, 2),
      Event::Marker("done")};
  const StreamValidationReport report = ValidateStream(events);
  EXPECT_TRUE(report.valid());
  EXPECT_EQ(report.events_checked, 4u);
  EXPECT_EQ(report.final_vertices, 2u);
  EXPECT_EQ(report.final_edges, 1u);
}

TEST(ValidateStreamTest, CollectsViolationsWithIndices) {
  const std::vector<Event> events = {
      Event::AddVertex(1),
      Event::AddVertex(1),          // violation at 1
      Event::RemoveVertex(9),       // violation at 2
      Event::AddVertex(2),
      Event::AddEdge(1, 2),
  };
  const StreamValidationReport report = ValidateStream(events);
  EXPECT_FALSE(report.valid());
  ASSERT_EQ(report.violations.size(), 2u);
  EXPECT_EQ(report.violations[0].index, 1u);
  EXPECT_EQ(report.violations[1].index, 2u);
  // Valid events still applied.
  EXPECT_EQ(report.final_vertices, 2u);
  EXPECT_EQ(report.final_edges, 1u);
}

TEST(ValidateStreamTest, MaxViolationsStopsEarly) {
  std::vector<Event> events;
  for (int i = 0; i < 10; ++i) events.push_back(Event::RemoveVertex(1));
  const StreamValidationReport report = ValidateStream(events, 3);
  EXPECT_EQ(report.violations.size(), 3u);
  EXPECT_EQ(report.events_checked, 3u);
}

TEST(ValidateStreamTest, InvalidEventsNotApplied) {
  const std::vector<Event> events = {
      Event::AddVertex(1),
      Event::AddEdge(1, 2),  // invalid: 2 missing
      Event::AddVertex(2),
      Event::AddEdge(1, 2),  // now valid
  };
  const StreamValidationReport report = ValidateStream(events);
  EXPECT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.final_edges, 1u);
}

class ValidateStreamFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gt_validator_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Write(const std::string& name, const std::string& content) {
    const std::string path = (dir_ / name).string();
    std::ofstream out(path, std::ios::binary);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    return path;
  }

  std::filesystem::path dir_;
};

TEST_F(ValidateStreamFileTest, CollectsAllIssuesWithLineNumbers) {
  const std::string path = Write("mixed.gts",
                                 "CREATE_VERTEX,1,\n"
                                 "CREATE_VERTEX,2,\n"
                                 "CREATE_EDGE,1-2,\n"
                                 "CREATE_VERTEX,abc,\n"  // malformed id
                                 "CREATE_EDGE,1-2,\n"    // duplicate edge
                                 "BOGUS,9,\n"            // unknown command
                                 "CREATE_VERTEX,1,\n");  // duplicate vertex
  auto report = ValidateStreamFile(path);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->issues.size(), 4u);
  EXPECT_EQ(report->issues[0].line, 4u);
  EXPECT_TRUE(report->issues[0].parse_error);
  EXPECT_EQ(report->issues[1].line, 5u);
  EXPECT_FALSE(report->issues[1].parse_error);
  EXPECT_EQ(report->issues[2].line, 6u);
  EXPECT_TRUE(report->issues[2].parse_error);
  EXPECT_EQ(report->issues[3].line, 7u);
  EXPECT_FALSE(report->issues[3].parse_error);
  // Events on valid lines were still checked and applied.
  EXPECT_EQ(report->events_checked, 5u);
  EXPECT_EQ(report->final_vertices, 2u);
  EXPECT_EQ(report->final_edges, 1u);
}

TEST_F(ValidateStreamFileTest, ValidFileHasNoIssues) {
  const std::string path = Write("ok.gts",
                                 "# header\n"
                                 "CREATE_VERTEX,1,\n"
                                 "CREATE_VERTEX,2,\n"
                                 "CREATE_EDGE,1-2,\n");
  auto report = ValidateStreamFile(path);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->valid());
  EXPECT_EQ(report->events_checked, 3u);
}

TEST_F(ValidateStreamFileTest, MaxIssuesBoundsTheScan) {
  std::string content = "CREATE_VERTEX,1,\n";
  for (int i = 0; i < 10; ++i) content += "CREATE_VERTEX,1,\n";
  const std::string path = Write("many.gts", content);
  auto report = ValidateStreamFile(path, 3);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->issues.size(), 3u);
}

TEST_F(ValidateStreamFileTest, NulByteAndTruncationAreReported) {
  const std::string content("CREATE_VERTEX,1,\nCREATE_VERTEX,\0 2,\nCREATE_V",
                            44);
  const std::string path = Write("nul.gts", content);
  auto report = ValidateStreamFile(path);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->issues.size(), 2u);
  EXPECT_EQ(report->issues[0].line, 2u);
  EXPECT_NE(report->issues[0].reason.find("NUL"), std::string::npos);
  EXPECT_EQ(report->issues[1].line, 3u);
  EXPECT_NE(report->issues[1].reason.find("truncated final record"),
            std::string::npos);
}

TEST_F(ValidateStreamFileTest, MissingFileIsIoError) {
  auto report = ValidateStreamFile((dir_ / "missing.gts").string());
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsIoError());
}

}  // namespace
}  // namespace graphtides
