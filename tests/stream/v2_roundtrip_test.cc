// gt-stream-v2 conformance, part 1: lossless round trips. Every event
// type survives encode/decode; every generator model and seed survives
// v1 -> v2 -> v1 byte-identically; the mmap and buffered readers agree on
// every file; encoding is deterministic (same events, same bytes), which
// is what makes v2 -> v1 -> v2 byte-stable.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "generator/models/blockchain_model.h"
#include "generator/models/ddos_model.h"
#include "generator/models/event_mix_model.h"
#include "generator/models/social_network_model.h"
#include "generator/stream_generator.h"
#include "stream/stream_file.h"
#include "stream/v2_format.h"
#include "stream/v2_reader.h"
#include "stream/v2_writer.h"

namespace graphtides {
namespace {

class V2RoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gt_v2_roundtrip_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), {});
}

// One of every event type, with empty and non-empty payloads, boundary
// ids, a fractional rate factor, and a payload containing bytes the CSV
// format could never carry on these types (checked absent after decode).
std::vector<Event> AllTypesStream() {
  return {
      Event::AddVertex(0, ""),
      Event::AddVertex(UINT64_MAX, "state with spaces"),
      Event::UpdateVertex(7, "u"),
      Event::AddEdge(1, 2, "w=0.5"),
      Event::AddEdge(UINT64_MAX, 0),
      Event::UpdateEdge(1, 2, "w=0.75"),
      Event::Marker("BOOTSTRAP_DONE"),
      Event::Marker(""),
      Event::SetRate(2.5),
      Event::SetRate(0.125),
      Event::Pause(Duration::FromMillis(250)),
      Event::Pause(Duration::Zero()),
      Event::RemoveEdge(1, 2),
      Event::RemoveVertex(7),
      Event::Marker("STREAM_END"),
  };
}

TEST_F(V2RoundTripTest, AllEventTypesSurviveWriteRead) {
  const std::vector<Event> events = AllTypesStream();
  ASSERT_TRUE(WriteV2StreamFile(Path("s.gts2"), events).ok());
  auto read = ReadV2StreamFile(Path("s.gts2"));
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, events);
}

TEST_F(V2RoundTripTest, EmptyStreamIsPreambleAndSentinelOnly) {
  ASSERT_TRUE(WriteV2StreamFile(Path("empty.gts2"), {}).ok());
  const std::string bytes = Slurp(Path("empty.gts2"));
  EXPECT_EQ(bytes.size(), kV2PreambleBytes + kV2BlockHeaderBytes);
  auto read = ReadV2StreamFile(Path("empty.gts2"));
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_TRUE(read->empty());
}

TEST_F(V2RoundTripTest, MmapAndBufferedReadersAgree) {
  // Enough events to span several sealed blocks.
  std::vector<Event> events;
  for (uint64_t v = 0; v < 3 * kV2RecordsPerBlock + 17; ++v) {
    events.push_back(Event::AddVertex(v, "s" + std::to_string(v % 97)));
  }
  ASSERT_TRUE(WriteV2StreamFile(Path("big.gts2"), events).ok());

  std::vector<Event> got_mmap;
  std::vector<Event> got_read;
  for (const bool use_mmap : {true, false}) {
    V2StreamReader reader(V2ReaderOptions{.use_mmap = use_mmap});
    ASSERT_TRUE(reader.Open(Path("big.gts2")).ok());
    auto& got = use_mmap ? got_mmap : got_read;
    for (;;) {
      auto next = reader.Next();
      ASSERT_TRUE(next.ok()) << next.status();
      if (!next->has_value()) break;
      got.push_back((*next)->Materialize());
    }
  }
  EXPECT_EQ(got_mmap, events);
  EXPECT_EQ(got_mmap, got_read);
}

TEST_F(V2RoundTripTest, EncodingIsDeterministic) {
  const std::vector<Event> events = AllTypesStream();
  ASSERT_TRUE(WriteV2StreamFile(Path("a.gts2"), events).ok());
  ASSERT_TRUE(WriteV2StreamFile(Path("b.gts2"), events).ok());
  EXPECT_EQ(Slurp(Path("a.gts2")), Slurp(Path("b.gts2")));

  // v2 -> v1 -> v2 byte-stability follows from determinism plus lossless
  // decode: re-encoding the decoded events reproduces the file.
  auto decoded = ReadV2StreamFile(Path("a.gts2"));
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(WriteV2StreamFile(Path("c.gts2"), *decoded).ok());
  EXPECT_EQ(Slurp(Path("a.gts2")), Slurp(Path("c.gts2")));
}

TEST_F(V2RoundTripTest, RepeatedPayloadsInternToOneTrailerEntry) {
  // 1000 records sharing one payload: the trailer carries it once, so the
  // file stays near the fixed-record floor instead of 1000 copies.
  std::vector<Event> events;
  const std::string payload(64, 'x');
  for (uint64_t v = 0; v < 1000; ++v) {
    events.push_back(Event::AddVertex(v, payload));
  }
  ASSERT_TRUE(WriteV2StreamFile(Path("interned.gts2"), events).ok());
  const size_t floor_bytes = kV2PreambleBytes + 2 * kV2BlockHeaderBytes +
                             events.size() * kV2RecordBytes;
  const size_t size = std::filesystem::file_size(Path("interned.gts2"));
  EXPECT_LT(size, floor_bytes + 2 * payload.size());
  auto read = ReadV2StreamFile(Path("interned.gts2"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, events);
}

TEST_F(V2RoundTripTest, WriterAppendFieldsMatchesAppend) {
  const std::vector<Event> events = AllTypesStream();
  {
    V2FileWriter writer;
    ASSERT_TRUE(writer.Open(Path("by_event.gts2")).ok());
    for (const Event& e : events) ASSERT_TRUE(writer.Append(e).ok());
    ASSERT_TRUE(writer.Finish().ok());
  }
  {
    V2FileWriter writer;
    ASSERT_TRUE(writer.Open(Path("by_fields.gts2")).ok());
    for (const Event& e : events) {
      ASSERT_TRUE(writer
                      .AppendFields(e.type, e.vertex, e.edge, e.payload,
                                    e.rate_factor, e.pause)
                      .ok());
    }
    ASSERT_TRUE(writer.Finish().ok());
    EXPECT_EQ(writer.events_written(), events.size());
    EXPECT_EQ(writer.bytes_written(),
              std::filesystem::file_size(Path("by_fields.gts2")));
  }
  EXPECT_EQ(Slurp(Path("by_event.gts2")), Slurp(Path("by_fields.gts2")));
}

TEST_F(V2RoundTripTest, DetectStreamFormatByMagic) {
  ASSERT_TRUE(WriteV2StreamFile(Path("v2.gts2"), {Event::AddVertex(1)}).ok());
  ASSERT_TRUE(WriteStreamFile(Path("v1.gts"), {Event::AddVertex(1)}).ok());
  std::ofstream(Path("short.gts")) << "CR";  // shorter than the magic

  auto v2 = DetectStreamFormat(Path("v2.gts2"));
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, StreamFormat::kV2);
  auto v1 = DetectStreamFormat(Path("v1.gts"));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v1, StreamFormat::kCsv);
  auto tiny = DetectStreamFormat(Path("short.gts"));
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(*tiny, StreamFormat::kCsv);
  auto missing = DetectStreamFormat(Path("nope"));
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsIoError());
}

TEST_F(V2RoundTripTest, AnyFormatReaderDispatchesOnMagic) {
  const std::vector<Event> events = AllTypesStream();
  ASSERT_TRUE(WriteV2StreamFile(Path("v2.gts2"), events).ok());
  ASSERT_TRUE(WriteStreamFile(Path("v1.gts"), events).ok());
  auto from_v2 = ReadStreamFileAnyFormat(Path("v2.gts2"));
  auto from_v1 = ReadStreamFileAnyFormat(Path("v1.gts"));
  ASSERT_TRUE(from_v2.ok());
  ASSERT_TRUE(from_v1.ok());
  EXPECT_EQ(*from_v2, events);
  EXPECT_EQ(*from_v1, events);
}

// Both CRC implementations must match their published check vectors —
// CRC-32 (IEEE, checkpoints/GTDP) and CRC-32C (Castagnoli, v2 blocks,
// where a hardware path may be in use) — plus incremental-vs-one-shot
// agreement at every split point of a buffer crossing the 8-byte
// slicing/hardware word boundary.
TEST(V2Crc32Test, MatchesIeeeCheckVector) {
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(V2Crc32Test, MatchesCastagnoliCheckVector) {
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
}

TEST(V2Crc32Test, IncrementalSplitsAgreeWithOneShot) {
  std::string data;
  for (int i = 0; i < 257; ++i) data.push_back(static_cast<char>(i * 31));
  const uint32_t whole = Crc32(data);
  const uint32_t whole_c = Crc32c(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    const std::string_view view(data);
    EXPECT_EQ(Crc32Update(Crc32(view.substr(0, split)), view.substr(split)),
              whole)
        << "split " << split;
    EXPECT_EQ(Crc32cUpdate(Crc32c(view.substr(0, split)), view.substr(split)),
              whole_c)
        << "split " << split;
  }
}

// Every generator model, two seeds each: the v2 file decodes back to the
// generated events, and re-serializing the decoded events as CSV
// reproduces the CSV file byte for byte (v1 -> v2 -> v1 identity —
// gt_convert's contract, proven at the library layer).
TEST_F(V2RoundTripTest, AllGeneratorModelsRoundTripByteIdentically) {
  struct ModelCase {
    const char* name;
    std::unique_ptr<GeneratorModel> model;
  };
  for (const uint64_t seed : {7u, 1234u}) {
    std::vector<ModelCase> cases;
    cases.push_back({"social", std::make_unique<SocialNetworkModel>()});
    DdosModelOptions ddos;
    ddos.attacks = {{200, 400}};
    cases.push_back({"ddos", std::make_unique<DdosModel>(ddos)});
    cases.push_back({"blockchain", std::make_unique<BlockchainModel>()});
    cases.push_back(
        {"mix", std::make_unique<EventMixModel>(EventMixModelOptions{})});
    for (auto& c : cases) {
      StreamGeneratorOptions options;
      options.rounds = 600;
      options.seed = seed;
      options.marker_interval = 100;
      StreamGenerator generator(c.model.get(), options);
      auto stream = generator.Generate();
      ASSERT_TRUE(stream.ok()) << c.name << ": " << stream.status();

      const std::string csv = Path(std::string(c.name) + ".gts");
      const std::string v2 = Path(std::string(c.name) + ".gts2");
      ASSERT_TRUE(WriteStreamFile(csv, stream->events).ok());
      ASSERT_TRUE(WriteV2StreamFile(v2, stream->events).ok());

      auto decoded = ReadV2StreamFile(v2);
      ASSERT_TRUE(decoded.ok()) << c.name << ": " << decoded.status();
      EXPECT_EQ(*decoded, stream->events) << c.name;

      const std::string csv_again = Path(std::string(c.name) + "_rt.gts");
      ASSERT_TRUE(WriteStreamFile(csv_again, *decoded).ok());
      EXPECT_EQ(Slurp(csv), Slurp(csv_again))
          << c.name << " seed " << seed << ": v1->v2->v1 not byte-identical";
    }
  }
}

}  // namespace
}  // namespace graphtides
