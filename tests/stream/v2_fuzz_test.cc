// gt-stream-v2 conformance, part 2: corruption rejection, proven
// exhaustively on a small stream — truncation at EVERY byte offset and a
// flip of EVERY single bit must surface as ParseError (never a crash,
// never silently-wrong events), in both the mmap and buffered readers.
// CRC-valid-but-semantically-invalid blocks (undefined flags, cap
// violations, bad payload bounds, illegal field values) are constructed
// by hand and must be rejected too: the CRC pass gates framing, the
// decoder gates meaning.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/crc32.h"
#include "stream/event.h"
#include "stream/v2_format.h"
#include "stream/v2_reader.h"
#include "stream/v2_writer.h"

namespace graphtides {
namespace {

class V2FuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gt_v2_fuzz_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    path_ = (dir_ / "fuzz.gts2").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void WriteBytes(std::string_view bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }

  // Reads the file in the given mode; Open errors and Next errors collapse
  // into one status (corruption can surface at either stage).
  Status ReadAll(bool use_mmap, std::vector<Event>* out = nullptr) {
    V2StreamReader reader(V2ReaderOptions{.use_mmap = use_mmap});
    Status st = reader.Open(path_);
    if (!st.ok()) return st;
    for (;;) {
      auto next = reader.Next();
      if (!next.ok()) return next.status();
      if (!next->has_value()) return Status::OK();
      if (out != nullptr) out->push_back((*next)->Materialize());
    }
  }

  std::filesystem::path dir_;
  std::string path_;
};

// A small but structurally complete stream: two data blocks (the second
// forced by sealing mid-stream is not possible through the public writer,
// so two encoder seals are composed by hand), interned payloads, every
// field kind, and the sentinel. ~300 bytes, so the exhaustive passes stay
// fast.
std::string ValidStream() {
  std::string bytes;
  AppendV2Preamble(&bytes);
  V2BlockEncoder encoder;
  encoder.Add(EventType::kAddVertex, 1, {}, "alpha", 1.0, Duration::Zero());
  encoder.Add(EventType::kAddVertex, 2, {}, "alpha", 1.0, Duration::Zero());
  encoder.Add(EventType::kAddEdge, 0, {1, 2}, "w", 1.0, Duration::Zero());
  encoder.Add(EventType::kMarker, 0, {}, "M0", 1.0, Duration::Zero());
  encoder.SealTo(&bytes);
  encoder.Add(EventType::kSetRate, 0, {}, "", 2.5, Duration::Zero());
  encoder.Add(EventType::kPause, 0, {}, "", 1.0, Duration::FromMillis(3));
  encoder.Add(EventType::kRemoveEdge, 0, {1, 2}, "", 1.0, Duration::Zero());
  encoder.Add(EventType::kRemoveVertex, 2, {}, "", 1.0, Duration::Zero());
  encoder.SealTo(&bytes);
  AppendV2SentinelBlock(&bytes);
  return bytes;
}

TEST_F(V2FuzzTest, ValidStreamReadsCleanInBothModes) {
  WriteBytes(ValidStream());
  for (const bool use_mmap : {true, false}) {
    std::vector<Event> events;
    ASSERT_TRUE(ReadAll(use_mmap, &events).ok());
    ASSERT_EQ(events.size(), 8u);
    EXPECT_EQ(events[0], Event::AddVertex(1, "alpha"));
    EXPECT_EQ(events[7], Event::RemoveVertex(2));
  }
}

TEST_F(V2FuzzTest, TruncationAtEveryOffsetIsParseError) {
  const std::string valid = ValidStream();
  for (size_t len = 0; len < valid.size(); ++len) {
    WriteBytes(std::string_view(valid).substr(0, len));
    for (const bool use_mmap : {true, false}) {
      const Status st = ReadAll(use_mmap);
      ASSERT_FALSE(st.ok()) << "prefix of " << len << " bytes accepted "
                            << (use_mmap ? "(mmap)" : "(read)");
      EXPECT_TRUE(st.IsParseError())
          << "prefix " << len << ": " << st.ToString();
    }
  }
}

TEST_F(V2FuzzTest, EverySingleBitFlipIsDetected) {
  const std::string valid = ValidStream();
  std::string corrupt = valid;
  for (size_t byte = 0; byte < valid.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      corrupt[byte] =
          static_cast<char>(static_cast<unsigned char>(valid[byte]) ^
                            (1u << bit));
      WriteBytes(corrupt);
      const Status st = ReadAll(/*use_mmap=*/true);
      ASSERT_FALSE(st.ok())
          << "bit " << bit << " of byte " << byte << " flipped unnoticed";
      EXPECT_TRUE(st.IsParseError())
          << "byte " << byte << " bit " << bit << ": " << st.ToString();
      corrupt[byte] = valid[byte];
    }
  }
}

TEST_F(V2FuzzTest, TrailingBytesAfterSentinelAreParseError) {
  for (const std::string_view garbage : {"x", "\n", "GTSTRM2\n"}) {
    WriteBytes(ValidStream() + std::string(garbage));
    for (const bool use_mmap : {true, false}) {
      const Status st = ReadAll(use_mmap);
      ASSERT_FALSE(st.ok());
      EXPECT_TRUE(st.IsParseError()) << st.ToString();
    }
  }
}

TEST_F(V2FuzzTest, MissingFileIsIoErrorNotParseError) {
  std::filesystem::remove(path_);
  for (const bool use_mmap : {true, false}) {
    const Status st = ReadAll(use_mmap);
    ASSERT_FALSE(st.ok());
    EXPECT_TRUE(st.IsIoError()) << st.ToString();
  }
}

// ---- CRC-valid but semantically invalid blocks ---------------------------
// The fuzz passes above only prove the CRCs catch random damage; these
// prove the decoder rejects well-formed framing around illegal content.

void AppendU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

// Builds a block with correct header/body CRCs around arbitrary contents.
std::string SealedBlock(uint32_t flags, uint32_t record_count,
                        std::string_view records, std::string_view trailer) {
  std::string block;
  AppendU32(0x324B4C42u, &block);  // "BLK2"
  AppendU32(flags, &block);
  AppendU32(record_count, &block);
  AppendU32(static_cast<uint32_t>(trailer.size()), &block);
  AppendU32(Crc32cUpdate(Crc32c(records), trailer), &block);
  AppendU32(Crc32c(block), &block);
  block.append(records);
  block.append(trailer);
  return block;
}

std::string Record(uint8_t type, uint32_t payload_len, uint64_t payload_off,
                   uint64_t a, uint64_t b, uint8_t reserved = 0) {
  std::string r;
  r.push_back(static_cast<char>(type));
  r.append(3, static_cast<char>(reserved));
  AppendU32(payload_len, &r);
  AppendU64(payload_off, &r);
  AppendU64(a, &r);
  AppendU64(b, &r);
  return r;
}

struct BadBlockCase {
  const char* what;
  std::string block;
};

TEST_F(V2FuzzTest, CrcValidButIllegalBlocksAreParseError) {
  const std::string ok_record = Record(0 /*kAddVertex*/, 0, 0, 1, 0);
  const uint64_t rate_bits = 0x7FF0000000000000ull;  // +inf as f64
  const std::vector<BadBlockCase> cases = {
      {"undefined header flag bit", SealedBlock(1u << 1, 1, ok_record, "")},
      {"sentinel with records",
       SealedBlock(kV2BlockFlagEnd, 1, ok_record, "")},
      {"non-sentinel empty block", SealedBlock(0, 0, "", "")},
      {"record count over cap",
       SealedBlock(0, kV2MaxBlockRecords + 1, ok_record, "")},
      {"record count vs body mismatch", SealedBlock(0, 2, ok_record, "")},
      {"unknown event type", SealedBlock(0, 1, Record(42, 0, 0, 1, 0), "")},
      {"nonzero reserved bytes",
       SealedBlock(0, 1, Record(0, 0, 0, 1, 0, 0xAA), "")},
      {"payload bounds past trailer",
       SealedBlock(0, 1, Record(0, 4, 1, 1, 0), "abc")},
      {"payload offset overflow",
       SealedBlock(0, 1, Record(0, 1, UINT64_MAX, 1, 0), "abc")},
      {"payload on payload-free type (remove)",
       SealedBlock(0, 1, Record(1 /*kRemoveVertex*/, 3, 0, 1, 0), "abc")},
      {"nonzero b on vertex op", SealedBlock(0, 1, Record(0, 0, 0, 1, 9), "")},
      {"nonzero fields on marker",
       SealedBlock(0, 1, Record(6 /*kMarker*/, 0, 0, 5, 0), "")},
      {"non-finite rate factor",
       SealedBlock(0, 1, Record(7 /*kSetRate*/, 0, 0, rate_bits, 0), "")},
      {"zero rate factor", SealedBlock(0, 1, Record(7, 0, 0, 0, 0), "")},
      {"pause beyond representable millis",
       SealedBlock(0, 1, Record(8 /*kPause*/, 0, 0, UINT64_MAX, 0), "")},
  };
  for (const BadBlockCase& c : cases) {
    std::string bytes;
    AppendV2Preamble(&bytes);
    bytes.append(c.block);
    AppendV2SentinelBlock(&bytes);
    WriteBytes(bytes);
    for (const bool use_mmap : {true, false}) {
      const Status st = ReadAll(use_mmap);
      ASSERT_FALSE(st.ok()) << c.what << " accepted";
      EXPECT_TRUE(st.IsParseError()) << c.what << ": " << st.ToString();
    }
  }
}

TEST_F(V2FuzzTest, HandSealedLegalBlockIsAccepted) {
  // The SealedBlock helper must itself produce acceptable framing, or the
  // rejection cases above would pass vacuously.
  std::string bytes;
  AppendV2Preamble(&bytes);
  bytes.append(SealedBlock(0, 1, Record(0, 3, 0, 1, 0), "abc"));
  AppendV2SentinelBlock(&bytes);
  WriteBytes(bytes);
  std::vector<Event> events;
  ASSERT_TRUE(ReadAll(/*use_mmap=*/true, &events).ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], Event::AddVertex(1, "abc"));
}

TEST_F(V2FuzzTest, ParseErrorsCarryRecordContext) {
  // The second record is damaged (unknown type) behind valid CRCs; the
  // error must name record 2 so a corrupt capture can be localized.
  std::string records = Record(0, 0, 0, 1, 0);
  records += Record(42, 0, 0, 2, 0);
  std::string bytes;
  AppendV2Preamble(&bytes);
  bytes.append(SealedBlock(0, 2, records, ""));
  AppendV2SentinelBlock(&bytes);
  WriteBytes(bytes);
  const Status st = ReadAll(/*use_mmap=*/true);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("record 2"), std::string::npos)
      << st.ToString();
}

}  // namespace
}  // namespace graphtides
