// gt-stream-v2 conformance, part 3: replay equivalence. CSV is the golden
// format; this suite proves v2 changes the encoding and nothing else:
//   * replaying a v2 file produces byte-identical per-lane sink output to
//     replaying the equivalent CSV file, at 1 and at 4 shards;
//   * v2 wire output (negotiated on the pipe handshake) decodes back to
//     exactly the CSV lanes' events;
//   * checkpoint/resume over a v2 input concatenates byte-identically
//     with an uninterrupted run, same as over CSV.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "replayer/checkpoint.h"
#include "replayer/event_sink.h"
#include "replayer/sharded_replayer.h"
#include "stream/stream_file.h"
#include "stream/v2_reader.h"
#include "stream/v2_writer.h"

namespace graphtides {
namespace {

class V2ReplayEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gt_v2_replay_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), {});
}

// Interleaved vertex/edge ops over a small entity set plus markers and
// controls — the same shape the sharded-replayer determinism tests use.
std::vector<Event> MixedStream(size_t graph_events) {
  std::vector<Event> events;
  uint64_t next_vertex = 0;
  size_t emitted = 0;
  while (emitted < graph_events) {
    const uint64_t v = next_vertex++;
    events.push_back(Event::AddVertex(v, "s" + std::to_string(v)));
    ++emitted;
    if (v >= 2 && emitted < graph_events) {
      events.push_back(Event::AddEdge(v, v / 2, "w" + std::to_string(v)));
      ++emitted;
    }
    if (emitted % 500 == 0) {
      events.push_back(Event::Marker("m" + std::to_string(emitted)));
    }
    if (emitted == graph_events / 2) events.push_back(Event::SetRate(2.0));
  }
  return events;
}

struct LaneFiles {
  std::vector<std::string> paths;
};

// Replays `stream_path` through file-backed PipeSinks, one per shard;
// returns the per-lane output paths. `wire` selects the format offered on
// the handshake (sinks opt in when it is kV2).
LaneFiles ReplayToFiles(const std::string& stream_path, size_t shards,
                        WireFormat wire, const std::string& out_tag,
                        const std::filesystem::path& dir) {
  LaneFiles lanes;
  std::vector<std::FILE*> files;
  std::vector<std::unique_ptr<PipeSink>> sinks;
  std::vector<EventSink*> sink_ptrs;
  for (size_t s = 0; s < shards; ++s) {
    const std::string path =
        (dir / (out_tag + ".shard" + std::to_string(s))).string();
    lanes.paths.push_back(path);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    EXPECT_NE(f, nullptr) << path;
    files.push_back(f);
    sinks.push_back(std::make_unique<PipeSink>(f));
    if (wire == WireFormat::kV2) sinks.back()->EnableV2Wire();
    sink_ptrs.push_back(sinks.back().get());
  }
  ShardedReplayerOptions options;
  options.shards = shards;
  options.total_rate_eps = 4e6;
  options.wire_format = wire;
  ShardedReplayer replayer(options);
  const auto stats = replayer.ReplayFile(stream_path, sink_ptrs);
  EXPECT_TRUE(stats.ok()) << stats.status();
  for (std::FILE* f : files) std::fclose(f);
  return lanes;
}

TEST_F(V2ReplayEquivalenceTest, V2InputLanesMatchCsvInputLanesByteForByte) {
  const std::vector<Event> events = MixedStream(4000);
  ASSERT_TRUE(WriteStreamFile(Path("s.gts"), events).ok());
  ASSERT_TRUE(WriteV2StreamFile(Path("s.gts2"), events).ok());

  for (const size_t shards : {size_t{1}, size_t{4}}) {
    const std::string tag = std::to_string(shards);
    const LaneFiles from_csv = ReplayToFiles(
        Path("s.gts"), shards, WireFormat::kCsv, "csv" + tag, dir_);
    const LaneFiles from_v2 = ReplayToFiles(
        Path("s.gts2"), shards, WireFormat::kCsv, "v2" + tag, dir_);
    for (size_t s = 0; s < shards; ++s) {
      EXPECT_EQ(Slurp(from_csv.paths[s]), Slurp(from_v2.paths[s]))
          << shards << " shard(s), lane " << s;
      EXPECT_FALSE(Slurp(from_csv.paths[s]).empty()) << "lane " << s;
    }
  }
}

TEST_F(V2ReplayEquivalenceTest, V2WireOutputDecodesToTheCsvLanes) {
  const std::vector<Event> events = MixedStream(3000);
  ASSERT_TRUE(WriteStreamFile(Path("s.gts"), events).ok());

  for (const size_t shards : {size_t{1}, size_t{4}}) {
    const std::string tag = std::to_string(shards);
    const LaneFiles csv_lanes = ReplayToFiles(
        Path("s.gts"), shards, WireFormat::kCsv, "golden" + tag, dir_);
    const LaneFiles v2_lanes = ReplayToFiles(
        Path("s.gts"), shards, WireFormat::kV2, "wire" + tag, dir_);
    for (size_t s = 0; s < shards; ++s) {
      // The lane output is a complete, self-delimiting v2 stream:
      // preamble from the handshake, sentinel from Finish.
      auto format = DetectStreamFormat(v2_lanes.paths[s]);
      ASSERT_TRUE(format.ok());
      ASSERT_EQ(*format, StreamFormat::kV2) << "lane " << s;
      auto decoded = ReadV2StreamFile(v2_lanes.paths[s]);
      ASSERT_TRUE(decoded.ok()) << "lane " << s << ": " << decoded.status();

      std::vector<Event> golden;
      StreamFileReader reader;
      ASSERT_TRUE(reader.Open(csv_lanes.paths[s]).ok());
      for (;;) {
        auto next = reader.Next();
        ASSERT_TRUE(next.ok()) << next.status();
        if (!next->has_value()) break;
        golden.push_back(**next);
      }
      EXPECT_EQ(*decoded, golden) << shards << " shard(s), lane " << s;
    }
  }
}

TEST_F(V2ReplayEquivalenceTest, CheckpointResumeOverV2InputIsByteExact) {
  const std::vector<Event> events = MixedStream(3000);
  ASSERT_TRUE(WriteV2StreamFile(Path("s.gts2"), events).ok());

  const size_t shards = 2;
  auto run = [&](const std::string& tag, uint64_t stop_after,
                 const ReplayCheckpoint* resume,
                 std::vector<std::string>* lane_paths) {
    std::vector<std::FILE*> files;
    std::vector<std::unique_ptr<PipeSink>> sinks;
    std::vector<EventSink*> sink_ptrs;
    for (size_t s = 0; s < shards; ++s) {
      const std::string path = Path(tag + ".shard" + std::to_string(s));
      if (lane_paths->size() < shards) lane_paths->push_back(path);
      if (resume != nullptr) {
        ASSERT_EQ(resume->sink_bytes.size(), shards);
        std::filesystem::resize_file(path, resume->sink_bytes[s]);
      }
      std::FILE* f = std::fopen(path.c_str(), resume ? "ab" : "wb");
      ASSERT_NE(f, nullptr) << path;
      files.push_back(f);
      sinks.push_back(std::make_unique<PipeSink>(f));
      sink_ptrs.push_back(sinks.back().get());
    }
    ShardedReplayerOptions options;
    options.shards = shards;
    options.total_rate_eps = 4e6;
    options.checkpoint_path = Path("ckpt");
    options.checkpoint_every = 250;
    options.record_sink_bytes = true;
    options.stop_after_events = stop_after;
    ShardedReplayer replayer(options);
    const auto stats =
        replayer.ReplayFile(Path("s.gts2"), sink_ptrs, resume);
    ASSERT_TRUE(stats.ok()) << stats.status();
    for (std::FILE* f : files) std::fclose(f);
  };

  std::vector<std::string> golden_paths;
  run("golden", 0, nullptr, &golden_paths);

  std::vector<std::string> resumed_paths;
  run("resumed", 1100, nullptr, &resumed_paths);
  auto loaded = CheckpointStore::LoadLatestGood(Path("ckpt"));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->checkpoint.events_delivered, 1100u);
  run("resumed", 0, &loaded->checkpoint, &resumed_paths);

  for (size_t s = 0; s < shards; ++s) {
    EXPECT_EQ(Slurp(golden_paths[s]), Slurp(resumed_paths[s])) << "lane " << s;
  }
}

}  // namespace
}  // namespace graphtides
