#include "stream/statistics.h"

#include <gtest/gtest.h>

namespace graphtides {
namespace {

TEST(StreamStatisticsTest, EmptyStream) {
  const StreamStatistics s = ComputeStreamStatistics({});
  EXPECT_EQ(s.total_entries, 0u);
  EXPECT_EQ(s.graph_ops, 0u);
  EXPECT_EQ(s.topology_ratio, 0.0);
  EXPECT_EQ(s.mean_run_length, 0.0);
}

TEST(StreamStatisticsTest, CountsByCategory) {
  const std::vector<Event> events = {
      Event::AddVertex(1),        Event::AddVertex(2),
      Event::AddEdge(1, 2),       Event::UpdateVertex(1, "x"),
      Event::UpdateEdge(1, 2, "y"), Event::RemoveEdge(1, 2),
      Event::RemoveVertex(2),     Event::Marker("m"),
      Event::SetRate(2.0),        Event::Pause(Duration::FromMillis(5)),
  };
  const StreamStatistics s = ComputeStreamStatistics(events);
  EXPECT_EQ(s.total_entries, 10u);
  EXPECT_EQ(s.graph_ops, 7u);
  EXPECT_EQ(s.markers, 1u);
  EXPECT_EQ(s.controls, 2u);
  EXPECT_EQ(s.topology_changes, 5u);
  EXPECT_EQ(s.state_updates, 2u);
  EXPECT_EQ(s.vertex_ops, 4u);
  EXPECT_EQ(s.edge_ops, 3u);
  EXPECT_EQ(s.add_ops, 3u);
  EXPECT_EQ(s.remove_ops, 2u);
  EXPECT_NEAR(s.topology_ratio, 5.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.add_ratio, 3.0 / 5.0, 1e-12);
  EXPECT_NEAR(s.vertex_op_ratio, 4.0 / 7.0, 1e-12);
}

TEST(StreamStatisticsTest, FinalAndPeakSizes) {
  const std::vector<Event> events = {
      Event::AddVertex(1), Event::AddVertex(2), Event::AddVertex(3),
      Event::AddEdge(1, 2), Event::AddEdge(2, 3),
      Event::RemoveVertex(3),  // drops edge 2->3 too
  };
  const StreamStatistics s = ComputeStreamStatistics(events);
  EXPECT_EQ(s.final_vertices, 2u);
  EXPECT_EQ(s.final_edges, 1u);
  EXPECT_EQ(s.peak_vertices, 3u);
  EXPECT_EQ(s.peak_edges, 2u);
}

TEST(StreamStatisticsTest, InterleavingAlternating) {
  // topology, state, topology, state -> run length 1.
  const std::vector<Event> events = {
      Event::AddVertex(1), Event::UpdateVertex(1, "a"), Event::AddVertex(2),
      Event::UpdateVertex(2, "b")};
  const StreamStatistics s = ComputeStreamStatistics(events);
  EXPECT_DOUBLE_EQ(s.mean_run_length, 1.0);
}

TEST(StreamStatisticsTest, InterleavingTwoPhase) {
  // 3 topology then 3 state -> two runs of 3.
  const std::vector<Event> events = {
      Event::AddVertex(1),       Event::AddVertex(2),
      Event::AddVertex(3),       Event::UpdateVertex(1, "a"),
      Event::UpdateVertex(2, "b"), Event::UpdateVertex(3, "c")};
  const StreamStatistics s = ComputeStreamStatistics(events);
  EXPECT_DOUBLE_EQ(s.mean_run_length, 3.0);
}

TEST(StreamStatisticsTest, InvalidEventsDoNotCorruptSizes) {
  const std::vector<Event> events = {
      Event::AddVertex(1),
      Event::AddVertex(1),  // invalid duplicate
      Event::AddEdge(1, 9),  // invalid endpoint
  };
  const StreamStatistics s = ComputeStreamStatistics(events);
  EXPECT_EQ(s.final_vertices, 1u);
  EXPECT_EQ(s.final_edges, 0u);
  // They still count as entries / ops in the mix, as they would be offered
  // to a SUT.
  EXPECT_EQ(s.graph_ops, 3u);
}

TEST(StreamStatisticsTest, ToStringMentionsKeyNumbers) {
  const StreamStatistics s =
      ComputeStreamStatistics({Event::AddVertex(1), Event::Marker("m")});
  const std::string text = s.ToString();
  EXPECT_NE(text.find("graph ops 1"), std::string::npos);
  EXPECT_NE(text.find("markers 1"), std::string::npos);
}

}  // namespace
}  // namespace graphtides
