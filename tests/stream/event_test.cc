#include "stream/event.h"

#include <gtest/gtest.h>

namespace graphtides {
namespace {

TEST(EventTypeTest, NamesRoundTrip) {
  for (int i = 0; i <= static_cast<int>(EventType::kPause); ++i) {
    const EventType type = static_cast<EventType>(i);
    auto parsed = EventTypeFromName(EventTypeName(type));
    ASSERT_TRUE(parsed.ok()) << EventTypeName(type);
    EXPECT_EQ(*parsed, type);
  }
}

TEST(EventTypeTest, UnknownNameIsParseError) {
  EXPECT_FALSE(EventTypeFromName("FROB_VERTEX").ok());
  EXPECT_FALSE(EventTypeFromName("").ok());
  EXPECT_FALSE(EventTypeFromName("create_vertex").ok());  // case-sensitive
}

TEST(EventTypeTest, Classification) {
  EXPECT_TRUE(IsGraphOp(EventType::kAddVertex));
  EXPECT_TRUE(IsGraphOp(EventType::kUpdateEdge));
  EXPECT_FALSE(IsGraphOp(EventType::kMarker));
  EXPECT_FALSE(IsGraphOp(EventType::kSetRate));

  EXPECT_TRUE(IsTopologyChange(EventType::kAddVertex));
  EXPECT_TRUE(IsTopologyChange(EventType::kRemoveEdge));
  EXPECT_FALSE(IsTopologyChange(EventType::kUpdateVertex));

  EXPECT_TRUE(IsStateUpdate(EventType::kUpdateVertex));
  EXPECT_TRUE(IsStateUpdate(EventType::kUpdateEdge));
  EXPECT_FALSE(IsStateUpdate(EventType::kAddEdge));

  EXPECT_TRUE(IsVertexOp(EventType::kRemoveVertex));
  EXPECT_FALSE(IsVertexOp(EventType::kAddEdge));
  EXPECT_TRUE(IsEdgeOp(EventType::kUpdateEdge));
  EXPECT_FALSE(IsEdgeOp(EventType::kMarker));

  EXPECT_TRUE(IsControl(EventType::kSetRate));
  EXPECT_TRUE(IsControl(EventType::kPause));
  EXPECT_FALSE(IsControl(EventType::kMarker));

  EXPECT_TRUE(IsAddOp(EventType::kAddEdge));
  EXPECT_FALSE(IsAddOp(EventType::kUpdateVertex));
  EXPECT_TRUE(IsRemoveOp(EventType::kRemoveVertex));
  EXPECT_FALSE(IsRemoveOp(EventType::kAddVertex));
}

TEST(EventTest, FactoryFieldsSet) {
  const Event av = Event::AddVertex(7, "state");
  EXPECT_EQ(av.type, EventType::kAddVertex);
  EXPECT_EQ(av.vertex, 7u);
  EXPECT_EQ(av.payload, "state");

  const Event ae = Event::AddEdge(1, 2, "s");
  EXPECT_EQ(ae.edge, (EdgeId{1, 2}));

  const Event m = Event::Marker("PHASE");
  EXPECT_EQ(m.payload, "PHASE");

  const Event sr = Event::SetRate(2.5);
  EXPECT_DOUBLE_EQ(sr.rate_factor, 2.5);

  const Event p = Event::Pause(Duration::FromSeconds(20.0));
  EXPECT_EQ(p.pause.millis(), 20000);
}

TEST(EventTest, CsvLineFormats) {
  EXPECT_EQ(Event::AddVertex(4, "").ToCsvLine(), "CREATE_VERTEX,4,");
  EXPECT_EQ(Event::RemoveVertex(9).ToCsvLine(), "REMOVE_VERTEX,9,");
  EXPECT_EQ(Event::AddEdge(3, 4, "x").ToCsvLine(), "CREATE_EDGE,3-4,x");
  EXPECT_EQ(Event::RemoveEdge(3, 4).ToCsvLine(), "REMOVE_EDGE,3-4,");
  EXPECT_EQ(Event::Marker("M1").ToCsvLine(), "MARKER,,M1");
  EXPECT_EQ(Event::SetRate(2).ToCsvLine(), "SET_RATE,,2");
  EXPECT_EQ(Event::Pause(Duration::FromMillis(500)).ToCsvLine(),
            "PAUSE,,500");
}

TEST(EventTest, PayloadWithCommaIsQuoted) {
  const Event e = Event::UpdateVertex(1, R"({"a":1,"b":2})");
  const std::string line = e.ToCsvLine();
  auto parsed = ParseEventLine(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->payload, R"({"a":1,"b":2})");
}

class EventRoundTripTest : public ::testing::TestWithParam<Event> {};

TEST_P(EventRoundTripTest, SerializeParseIdentity) {
  const Event& original = GetParam();
  auto parsed = ParseEventLine(original.ToCsvLine());
  ASSERT_TRUE(parsed.ok()) << original.ToCsvLine();
  EXPECT_EQ(*parsed, original);
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, EventRoundTripTest,
    ::testing::Values(
        Event::AddVertex(0, ""), Event::AddVertex(12345, "{\"k\":\"v\"}"),
        Event::RemoveVertex(99), Event::UpdateVertex(1, "new,state"),
        Event::AddEdge(1, 2, ""), Event::AddEdge(1000000, 2000000, "w=5"),
        Event::RemoveEdge(7, 8), Event::UpdateEdge(5, 6, "{\"bytes\":10}"),
        Event::Marker("BOOTSTRAP_DONE"), Event::Marker("with, comma"),
        Event::SetRate(0.5), Event::SetRate(4.0),
        Event::Pause(Duration::FromMillis(1)),
        Event::Pause(Duration::FromSeconds(20.0))));

TEST(ParseEventLineTest, SkipsBlankAndComments) {
  EXPECT_TRUE(ParseEventLine("").status().IsNotFound());
  EXPECT_TRUE(ParseEventLine("   ").status().IsNotFound());
  EXPECT_TRUE(ParseEventLine("# comment").status().IsNotFound());
  EXPECT_TRUE(ParseEventLine("  # indented comment").status().IsNotFound());
}

TEST(ParseEventLineTest, WrongFieldCount) {
  EXPECT_TRUE(ParseEventLine("CREATE_VERTEX,1").status().IsParseError());
  EXPECT_TRUE(
      ParseEventLine("CREATE_VERTEX,1,s,extra").status().IsParseError());
}

TEST(ParseEventLineTest, BadVertexId) {
  EXPECT_TRUE(ParseEventLine("CREATE_VERTEX,abc,").status().IsParseError());
  EXPECT_TRUE(ParseEventLine("CREATE_VERTEX,-1,").status().IsParseError());
}

TEST(ParseEventLineTest, BadEdgeId) {
  EXPECT_TRUE(ParseEventLine("CREATE_EDGE,12,").status().IsParseError());
  EXPECT_TRUE(ParseEventLine("CREATE_EDGE,a-b,").status().IsParseError());
  EXPECT_TRUE(ParseEventLine("CREATE_EDGE,1-,").status().IsParseError());
  EXPECT_TRUE(ParseEventLine("CREATE_EDGE,-2,").status().IsParseError());
}

TEST(ParseEventLineTest, BadControlValues) {
  EXPECT_TRUE(ParseEventLine("SET_RATE,,0").status().IsParseError());
  EXPECT_TRUE(ParseEventLine("SET_RATE,,-1").status().IsParseError());
  EXPECT_TRUE(ParseEventLine("SET_RATE,,abc").status().IsParseError());
  EXPECT_TRUE(ParseEventLine("PAUSE,,-5").status().IsParseError());
  EXPECT_TRUE(ParseEventLine("PAUSE,,x").status().IsParseError());
}

TEST(ParseEventLineTest, WhitespaceAroundLineTolerated) {
  auto parsed = ParseEventLine("  CREATE_VERTEX,5,hello  ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->vertex, 5u);
}

TEST(EventEqualityTest, IgnoresIrrelevantFields) {
  // REMOVE_VERTEX equality ignores the payload.
  Event a = Event::RemoveVertex(3);
  Event b = Event::RemoveVertex(3);
  b.payload = "junk";
  EXPECT_EQ(a, b);
  // Different vertex differs.
  EXPECT_FALSE(a == Event::RemoveVertex(4));
  // Different type differs.
  EXPECT_FALSE(Event::AddVertex(3) == Event::RemoveVertex(3));
}

TEST(EdgeIdTest, OrderingAndEquality) {
  EXPECT_EQ((EdgeId{1, 2}), (EdgeId{1, 2}));
  EXPECT_NE((EdgeId{1, 2}), (EdgeId{2, 1}));
  EXPECT_LT((EdgeId{1, 2}), (EdgeId{1, 3}));
  EXPECT_LT((EdgeId{1, 9}), (EdgeId{2, 0}));
}

}  // namespace
}  // namespace graphtides
