#include "graph/graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "stream/validator.h"

namespace graphtides {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_FALSE(g.HasVertex(1));
  EXPECT_FALSE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.GetVertexState(1).status().IsNotFound());
  EXPECT_TRUE(g.OutDegree(1).status().IsNotFound());
}

TEST(GraphTest, AddVertexWithState) {
  Graph g;
  ASSERT_TRUE(g.AddVertex(7, "hello").ok());
  EXPECT_TRUE(g.HasVertex(7));
  EXPECT_EQ(g.GetVertexState(7).value(), "hello");
  EXPECT_TRUE(g.AddVertex(7).IsPreconditionFailed());
}

TEST(GraphTest, UpdateVertexState) {
  Graph g;
  ASSERT_TRUE(g.AddVertex(1, "v1").ok());
  ASSERT_TRUE(g.UpdateVertexState(1, "v2").ok());
  EXPECT_EQ(g.GetVertexState(1).value(), "v2");
  EXPECT_TRUE(g.UpdateVertexState(2, "x").IsPreconditionFailed());
}

TEST(GraphTest, EdgeLifecycle) {
  Graph g;
  ASSERT_TRUE(g.AddVertex(1).ok());
  ASSERT_TRUE(g.AddVertex(2).ok());
  EXPECT_TRUE(g.AddEdge(1, 1).IsPreconditionFailed());  // self loop
  EXPECT_TRUE(g.AddEdge(1, 3).IsPreconditionFailed());
  EXPECT_TRUE(g.AddEdge(3, 1).IsPreconditionFailed());
  ASSERT_TRUE(g.AddEdge(1, 2, "w").ok());
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(2, 1));
  EXPECT_EQ(g.GetEdgeState(1, 2).value(), "w");
  EXPECT_TRUE(g.AddEdge(1, 2).IsPreconditionFailed());
  ASSERT_TRUE(g.UpdateEdgeState(1, 2, "w2").ok());
  EXPECT_EQ(g.GetEdgeState(1, 2).value(), "w2");
  ASSERT_TRUE(g.RemoveEdge(1, 2).ok());
  EXPECT_FALSE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.RemoveEdge(1, 2).IsPreconditionFailed());
  EXPECT_TRUE(g.UpdateEdgeState(1, 2, "x").IsPreconditionFailed());
}

TEST(GraphTest, DegreesTrackEdges) {
  Graph g;
  for (VertexId v : {1, 2, 3}) ASSERT_TRUE(g.AddVertex(v).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 3).ok());
  ASSERT_TRUE(g.AddEdge(2, 1).ok());
  EXPECT_EQ(g.OutDegree(1).value(), 2u);
  EXPECT_EQ(g.InDegree(1).value(), 1u);
  EXPECT_EQ(g.Degree(1).value(), 3u);
  EXPECT_EQ(g.OutDegree(3).value(), 0u);
  EXPECT_EQ(g.InDegree(3).value(), 1u);
}

TEST(GraphTest, RemoveVertexCascades) {
  Graph g;
  for (VertexId v : {1, 2, 3}) ASSERT_TRUE(g.AddVertex(v).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(3, 1).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  ASSERT_TRUE(g.RemoveVertex(1).ok());
  EXPECT_EQ(g.num_vertices(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_EQ(g.OutDegree(3).value(), 0u);   // 3->1 gone
  EXPECT_EQ(g.InDegree(2).value(), 0u);    // 1->2 gone
  EXPECT_TRUE(g.RemoveVertex(1).IsPreconditionFailed());
}

TEST(GraphTest, ApplyDispatchesAllEventTypes) {
  Graph g;
  ASSERT_TRUE(g.Apply(Event::AddVertex(1, "a")).ok());
  ASSERT_TRUE(g.Apply(Event::AddVertex(2, "b")).ok());
  ASSERT_TRUE(g.Apply(Event::AddEdge(1, 2, "e")).ok());
  ASSERT_TRUE(g.Apply(Event::UpdateVertex(1, "a2")).ok());
  ASSERT_TRUE(g.Apply(Event::UpdateEdge(1, 2, "e2")).ok());
  ASSERT_TRUE(g.Apply(Event::Marker("noop")).ok());
  ASSERT_TRUE(g.Apply(Event::SetRate(2.0)).ok());
  ASSERT_TRUE(g.Apply(Event::Pause(Duration::FromMillis(1))).ok());
  ASSERT_TRUE(g.Apply(Event::RemoveEdge(1, 2)).ok());
  ASSERT_TRUE(g.Apply(Event::RemoveVertex(2)).ok());
  EXPECT_EQ(g.num_vertices(), 1u);
  EXPECT_EQ(g.GetVertexState(1).value(), "a2");
}

TEST(GraphTest, ApplyAllStopsAtFirstFailureWithIndex) {
  Graph g;
  const std::vector<Event> events = {
      Event::AddVertex(1),
      Event::AddVertex(1),  // fails at index 1
      Event::AddVertex(2),
  };
  const Status st = g.ApplyAll(events);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("event 1"), std::string::npos);
  EXPECT_EQ(g.num_vertices(), 1u);  // stopped before index 2
}

TEST(GraphTest, IterationCoversAll) {
  Graph g;
  for (VertexId v : {1, 2, 3}) ASSERT_TRUE(g.AddVertex(v).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, "a").ok());
  ASSERT_TRUE(g.AddEdge(1, 3, "b").ok());

  size_t vertex_count = 0;
  g.ForEachVertex([&](VertexId, const std::string&) { ++vertex_count; });
  EXPECT_EQ(vertex_count, 3u);

  std::vector<VertexId> targets;
  g.ForEachOutEdge(1, [&](VertexId dst, const std::string&) {
    targets.push_back(dst);
  });
  std::sort(targets.begin(), targets.end());
  EXPECT_EQ(targets, (std::vector<VertexId>{2, 3}));

  size_t in_count = 0;
  g.ForEachInEdge(3, [&](VertexId src) {
    EXPECT_EQ(src, 1u);
    ++in_count;
  });
  EXPECT_EQ(in_count, 1u);

  size_t edge_count = 0;
  g.ForEachEdge(
      [&](VertexId, VertexId, const std::string&) { ++edge_count; });
  EXPECT_EQ(edge_count, 2u);

  // Iterating a missing vertex is a no-op.
  g.ForEachOutEdge(99, [&](VertexId, const std::string&) { FAIL(); });
}

TEST(GraphTest, VertexIdsSnapshot) {
  Graph g;
  for (VertexId v : {5, 1, 9}) ASSERT_TRUE(g.AddVertex(v).ok());
  std::vector<VertexId> ids = g.VertexIds();
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<VertexId>{1, 5, 9}));
}

TEST(GraphTest, CloneIsIndependent) {
  Graph g;
  ASSERT_TRUE(g.AddVertex(1, "orig").ok());
  ASSERT_TRUE(g.AddVertex(2).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  Graph snapshot = g.Clone();
  ASSERT_TRUE(g.UpdateVertexState(1, "changed").ok());
  ASSERT_TRUE(g.RemoveEdge(1, 2).ok());
  EXPECT_EQ(snapshot.GetVertexState(1).value(), "orig");
  EXPECT_TRUE(snapshot.HasEdge(1, 2));
  EXPECT_FALSE(g.HasEdge(1, 2));
}

TEST(GraphTest, ClearResets) {
  Graph g;
  ASSERT_TRUE(g.AddVertex(1).ok());
  ASSERT_TRUE(g.AddVertex(2).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  g.Clear();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  // Reusable after clear.
  EXPECT_TRUE(g.AddVertex(1).ok());
}

TEST(GraphTest, ValidatorAgreementOnRandomStream) {
  // The Graph and the StreamValidator must accept exactly the same streams.
  Graph g;
  StreamValidator v;
  std::vector<Event> events;
  for (VertexId i = 0; i < 20; ++i) events.push_back(Event::AddVertex(i));
  for (VertexId i = 0; i < 19; ++i) events.push_back(Event::AddEdge(i, i + 1));
  events.push_back(Event::RemoveVertex(10));
  events.push_back(Event::AddEdge(9, 11));
  events.push_back(Event::AddEdge(9, 11));   // duplicate -> both reject
  events.push_back(Event::RemoveEdge(0, 1));
  events.push_back(Event::UpdateVertex(5, "x"));
  for (const Event& e : events) {
    EXPECT_EQ(g.Apply(e).ok(), v.Check(e).ok()) << e;
  }
  EXPECT_EQ(g.num_vertices(), v.num_vertices());
  EXPECT_EQ(g.num_edges(), v.num_edges());
}

}  // namespace
}  // namespace graphtides
