#include "graph/csr.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace graphtides {
namespace {

Graph Chain(size_t n) {
  Graph g;
  for (VertexId v = 0; v < n; ++v) EXPECT_TRUE(g.AddVertex(v * 10).ok());
  for (VertexId v = 0; v + 1 < n; ++v) {
    EXPECT_TRUE(g.AddEdge(v * 10, (v + 1) * 10).ok());
  }
  return g;
}

TEST(CsrGraphTest, EmptyGraph) {
  const CsrGraph csr = CsrGraph::FromGraph(Graph());
  EXPECT_EQ(csr.num_vertices(), 0u);
  EXPECT_EQ(csr.num_edges(), 0u);
}

TEST(CsrGraphTest, DenseIndicesSortedByVertexId) {
  Graph g;
  for (VertexId v : {30, 10, 20}) ASSERT_TRUE(g.AddVertex(v).ok());
  const CsrGraph csr = CsrGraph::FromGraph(g);
  ASSERT_EQ(csr.num_vertices(), 3u);
  EXPECT_EQ(csr.IdOf(0), 10u);
  EXPECT_EQ(csr.IdOf(1), 20u);
  EXPECT_EQ(csr.IdOf(2), 30u);
  CsrGraph::Index idx = 99;
  ASSERT_TRUE(csr.IndexOf(20, &idx));
  EXPECT_EQ(idx, 1u);
  EXPECT_FALSE(csr.IndexOf(40, &idx));
}

TEST(CsrGraphTest, ChainAdjacency) {
  const CsrGraph csr = CsrGraph::FromGraph(Chain(5));
  ASSERT_EQ(csr.num_vertices(), 5u);
  EXPECT_EQ(csr.num_edges(), 4u);
  for (CsrGraph::Index v = 0; v < 4; ++v) {
    const auto out = csr.OutNeighbors(v);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], v + 1);
  }
  EXPECT_TRUE(csr.OutNeighbors(4).empty());
  EXPECT_TRUE(csr.InNeighbors(0).empty());
  const auto in = csr.InNeighbors(3);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(in[0], 2u);
}

TEST(CsrGraphTest, DegreesMatchGraph) {
  Rng rng(5);
  Graph g;
  const size_t n = 50;
  for (VertexId v = 0; v < n; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (int i = 0; i < 300; ++i) {
    const VertexId a = rng.NextBounded(n);
    const VertexId b = rng.NextBounded(n);
    if (a != b && !g.HasEdge(a, b)) ASSERT_TRUE(g.AddEdge(a, b).ok());
  }
  const CsrGraph csr = CsrGraph::FromGraph(g);
  EXPECT_EQ(csr.num_edges(), g.num_edges());
  for (CsrGraph::Index v = 0; v < n; ++v) {
    EXPECT_EQ(csr.OutDegree(v), g.OutDegree(csr.IdOf(v)).value());
    EXPECT_EQ(csr.InDegree(v), g.InDegree(csr.IdOf(v)).value());
  }
}

TEST(CsrGraphTest, NeighborListsSorted) {
  Rng rng(11);
  Graph g;
  const size_t n = 30;
  for (VertexId v = 0; v < n; ++v) ASSERT_TRUE(g.AddVertex(v).ok());
  for (int i = 0; i < 200; ++i) {
    const VertexId a = rng.NextBounded(n);
    const VertexId b = rng.NextBounded(n);
    if (a != b && !g.HasEdge(a, b)) ASSERT_TRUE(g.AddEdge(a, b).ok());
  }
  const CsrGraph csr = CsrGraph::FromGraph(g);
  for (CsrGraph::Index v = 0; v < n; ++v) {
    const auto out = csr.OutNeighbors(v);
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    const auto in = csr.InNeighbors(v);
    EXPECT_TRUE(std::is_sorted(in.begin(), in.end()));
  }
}

TEST(CsrGraphTest, EveryEdgeAppearsInBothDirections) {
  Graph g;
  for (VertexId v : {1, 2, 3}) ASSERT_TRUE(g.AddVertex(v).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(2, 3).ok());
  ASSERT_TRUE(g.AddEdge(1, 3).ok());
  const CsrGraph csr = CsrGraph::FromGraph(g);
  size_t out_total = 0;
  size_t in_total = 0;
  for (CsrGraph::Index v = 0; v < csr.num_vertices(); ++v) {
    out_total += csr.OutDegree(v);
    in_total += csr.InDegree(v);
  }
  EXPECT_EQ(out_total, 3u);
  EXPECT_EQ(in_total, 3u);
  // Check the dual representation pointwise.
  for (CsrGraph::Index v = 0; v < csr.num_vertices(); ++v) {
    for (CsrGraph::Index w : csr.OutNeighbors(v)) {
      const auto in = csr.InNeighbors(w);
      EXPECT_TRUE(std::find(in.begin(), in.end(), v) != in.end());
    }
  }
}

TEST(CsrGraphTest, SnapshotUnaffectedByLaterMutation) {
  Graph g = Chain(3);
  const CsrGraph csr = CsrGraph::FromGraph(g);
  ASSERT_TRUE(g.RemoveVertex(10).ok());
  EXPECT_EQ(csr.num_vertices(), 3u);
  EXPECT_EQ(csr.num_edges(), 2u);
}

}  // namespace
}  // namespace graphtides
