#include "common/clock.h"

#include <gtest/gtest.h>

#include <thread>

namespace graphtides {
namespace {

TEST(TimestampTest, Conversions) {
  const Timestamp t = Timestamp::FromMillis(1500);
  EXPECT_EQ(t.nanos(), 1500000000);
  EXPECT_EQ(t.micros(), 1500000);
  EXPECT_EQ(t.millis(), 1500);
  EXPECT_DOUBLE_EQ(t.seconds(), 1.5);
  EXPECT_EQ(Timestamp::FromSeconds(2.5).nanos(), 2500000000);
  EXPECT_EQ(Timestamp::FromMicros(3).nanos(), 3000);
}

TEST(TimestampTest, ComparisonAndArithmetic) {
  const Timestamp a = Timestamp::FromMillis(100);
  const Timestamp b = Timestamp::FromMillis(250);
  EXPECT_LT(a, b);
  EXPECT_EQ((b - a).millis(), 150);
  EXPECT_EQ((a + Duration::FromMillis(150)), b);
  EXPECT_EQ((b - Duration::FromMillis(150)), a);
}

TEST(DurationTest, Arithmetic) {
  const Duration d = Duration::FromMillis(10);
  EXPECT_EQ((d + d).millis(), 20);
  EXPECT_EQ((d - Duration::FromMillis(4)).millis(), 6);
  EXPECT_EQ((d * 3).millis(), 30);
  EXPECT_EQ((d / 2).millis(), 5);
  Duration acc;
  acc += d;
  acc += d;
  EXPECT_EQ(acc.millis(), 20);
  acc -= Duration::FromMillis(5);
  EXPECT_EQ(acc.millis(), 15);
}

TEST(DurationTest, NegativeDurations) {
  const Duration neg = Timestamp::FromMillis(1) - Timestamp::FromMillis(5);
  EXPECT_LT(neg, Duration::Zero());
  EXPECT_EQ(neg.millis(), -4);
}

TEST(MonotonicClockTest, NeverGoesBackward) {
  MonotonicClock clock;
  Timestamp prev = clock.Now();
  for (int i = 0; i < 1000; ++i) {
    const Timestamp now = clock.Now();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(MonotonicClockTest, AdvancesWithRealTime) {
  MonotonicClock clock;
  const Timestamp before = clock.Now();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const Timestamp after = clock.Now();
  EXPECT_GE((after - before).millis(), 9);
}

TEST(VirtualClockTest, StartsAtZeroAndAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.Now().nanos(), 0);
  clock.Advance(Duration::FromSeconds(2.0));
  EXPECT_DOUBLE_EQ(clock.Now().seconds(), 2.0);
  clock.AdvanceTo(Timestamp::FromSeconds(5.0));
  EXPECT_DOUBLE_EQ(clock.Now().seconds(), 5.0);
}

TEST(VirtualClockTest, NeverMovesBackward) {
  VirtualClock clock;
  clock.AdvanceTo(Timestamp::FromSeconds(10.0));
  clock.AdvanceTo(Timestamp::FromSeconds(5.0));
  EXPECT_DOUBLE_EQ(clock.Now().seconds(), 10.0);
}

TEST(ClockInterfaceTest, PolymorphicUse) {
  VirtualClock vclock;
  vclock.Advance(Duration::FromMillis(42));
  const Clock* clock = &vclock;
  EXPECT_EQ(clock->Now().millis(), 42);
}

}  // namespace
}  // namespace graphtides
