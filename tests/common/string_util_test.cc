#include "common/string_util.h"

#include <gtest/gtest.h>

namespace graphtides {
namespace {

TEST(SplitStringTest, BasicSplit) {
  const auto parts = SplitString("a:b:c", ':');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitStringTest, KeepsEmptyParts) {
  const auto parts = SplitString(":a::", ':');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitStringTest, NoDelimiter) {
  const auto parts = SplitString("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  x y  "), "x y");
  EXPECT_EQ(TrimWhitespace("\t\nabc\r "), "abc");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(ParseInt64Test, ValidValues) {
  EXPECT_EQ(ParseInt64("0").value(), 0);
  EXPECT_EQ(ParseInt64("-17").value(), -17);
  EXPECT_EQ(ParseInt64("9223372036854775807").value(),
            9223372036854775807LL);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("x12").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64(" 12").ok());
}

TEST(ParseUint64Test, ValidAndInvalid) {
  EXPECT_EQ(ParseUint64("42").value(), 42u);
  EXPECT_EQ(ParseUint64("18446744073709551615").value(),
            18446744073709551615ULL);
  EXPECT_FALSE(ParseUint64("-1").ok());
  EXPECT_FALSE(ParseUint64("").ok());
}

TEST(ParseDoubleTest, ValidValues) {
  EXPECT_DOUBLE_EQ(ParseDouble("1.5").value(), 1.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-2e3").value(), -2000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("0").value(), 0.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_FALSE(StartsWith("xbc", "ab"));
}

TEST(JoinStringsTest, Basic) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(ToUpperAsciiTest, Basic) {
  EXPECT_EQ(ToUpperAscii("create_vertex"), "CREATE_VERTEX");
  EXPECT_EQ(ToUpperAscii("MiXeD 123"), "MIXED 123");
}

}  // namespace
}  // namespace graphtides
