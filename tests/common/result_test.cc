#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace graphtides {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = [] -> Result<int> { return Status::OK(); }();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, ValueOrReturnsFallbackOnError) {
  Result<int> err(Status::IoError("x"));
  EXPECT_EQ(err.ValueOr(-1), -1);
  Result<int> ok(7);
  EXPECT_EQ(ok.ValueOr(-1), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status Consume(int x, int* out) {
  GT_ASSIGN_OR_RETURN(const int v, ParsePositive(x));
  *out = v * 2;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(Consume(-1, &out).IsInvalidArgument());
  EXPECT_EQ(out, 0);
}

TEST(ResultTest, AssignOrReturnAssigns) {
  int out = 0;
  ASSERT_TRUE(Consume(21, &out).ok());
  EXPECT_EQ(out, 42);
}

Status DoubleAssign(int* out) {
  GT_ASSIGN_OR_RETURN(const int a, ParsePositive(3));
  GT_ASSIGN_OR_RETURN(const int b, ParsePositive(4));
  *out = a + b;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnTwiceInOneScope) {
  int out = 0;
  ASSERT_TRUE(DoubleAssign(&out).ok());
  EXPECT_EQ(out, 7);
}

TEST(ResultTest, VectorValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace graphtides
