// FaultPlan spec parsing, crash-point hit counting, and the file-sink
// write-fault gate. Crash actions are intercepted with set_crash_fn — the
// real SIGKILL path is exercised by the crash-window tests and gt_chaos.
#include "common/fault_plan.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "replayer/event_sink.h"
#include "stream/event.h"

namespace graphtides {
namespace {

// Tests share the process-global plan; every test starts and ends clean.
class FaultPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultPlan::Global().Reset();
    ::unsetenv("GT_FAULT_PLAN");
    ::unsetenv("GT_CRASH_AT");
  }
  void TearDown() override {
    FaultPlan::Global().Reset();
    ::unsetenv("GT_FAULT_PLAN");
    ::unsetenv("GT_CRASH_AT");
  }
};

TEST_F(FaultPlanTest, DisarmedByDefaultAndHitIsFree) {
  FaultPlan& plan = FaultPlan::Global();
  EXPECT_FALSE(plan.armed());
  plan.Hit(kCrashPostDelivery);  // must be a no-op, not a crash
  EXPECT_EQ(plan.hits_observed(), 0u);
}

TEST_F(FaultPlanTest, CrashFiresOnExactHitCountOnce) {
  FaultPlan& plan = FaultPlan::Global();
  ASSERT_TRUE(plan.Configure("crash=post-delivery:3").ok());
  ASSERT_TRUE(plan.armed());
  std::vector<std::string> fired;
  plan.set_crash_fn(
      [&](std::string_view point) { fired.emplace_back(point); });

  plan.Hit(kCrashPostDelivery);
  plan.Hit(kCrashPostDelivery);
  EXPECT_TRUE(fired.empty());
  plan.Hit(kCrashPostDelivery);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], "post-delivery");
  // The entry is spent: later hits never re-fire.
  plan.Hit(kCrashPostDelivery);
  EXPECT_EQ(fired.size(), 1u);
  EXPECT_EQ(plan.hits_observed(), 4u);
}

TEST_F(FaultPlanTest, HitsOnOtherPointsDoNotTrigger) {
  FaultPlan& plan = FaultPlan::Global();
  ASSERT_TRUE(plan.Configure("crash=epoch-barrier").ok());
  bool fired = false;
  plan.set_crash_fn([&](std::string_view) { fired = true; });
  plan.Hit(kCrashPostDelivery);
  plan.Hit(kCrashPreCheckpointRename);
  EXPECT_FALSE(fired);
  plan.Hit(kCrashEpochBarrier);
  EXPECT_TRUE(fired);
}

TEST_F(FaultPlanTest, UnknownCrashPointListsKnownOnes) {
  Status st = FaultPlan::Global().Configure("crash=bogus-point");
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_NE(st.message().find("post-delivery"), std::string::npos);
  EXPECT_NE(st.message().find("epoch-barrier"), std::string::npos);
}

TEST_F(FaultPlanTest, MalformedSpecsAreRejected) {
  FaultPlan& plan = FaultPlan::Global();
  EXPECT_FALSE(plan.Configure("post-delivery").ok());      // no key=
  EXPECT_FALSE(plan.Configure("crash=post-delivery:0").ok());
  EXPECT_FALSE(plan.Configure("crash=post-delivery:x").ok());
  EXPECT_FALSE(plan.Configure("short-write=0").ok());
  EXPECT_FALSE(plan.Configure("mystery=1").ok());
  // torn= only makes sense where a checkpoint is being published.
  EXPECT_FALSE(plan.Configure("torn=post-delivery").ok());
  EXPECT_TRUE(plan.Configure("torn=pre-checkpoint-rename").ok());
}

TEST_F(FaultPlanTest, EmptySpecLeavesPlanDisarmed) {
  FaultPlan& plan = FaultPlan::Global();
  ASSERT_TRUE(plan.Configure("").ok());
  ASSERT_TRUE(plan.Configure("  ").ok());
  EXPECT_FALSE(plan.armed());
}

TEST_F(FaultPlanTest, ConfiguresFromCrashAtEnvironment) {
  ::setenv("GT_CRASH_AT", "post-checkpoint:2, epoch-barrier", 1);
  FaultPlan& plan = FaultPlan::Global();
  ASSERT_TRUE(plan.ConfigureFromEnv().ok());
  ASSERT_TRUE(plan.armed());
  size_t fired = 0;
  plan.set_crash_fn([&](std::string_view) { ++fired; });
  plan.Hit(kCrashPostCheckpoint);
  EXPECT_EQ(fired, 0u);
  plan.Hit(kCrashPostCheckpoint);
  EXPECT_EQ(fired, 1u);
  plan.Hit(kCrashEpochBarrier);
  EXPECT_EQ(fired, 2u);
}

TEST_F(FaultPlanTest, ConfiguresFromFaultPlanEnvironment) {
  ::setenv("GT_FAULT_PLAN", "fail=3,fail=7,seed=9", 1);
  FaultPlan& plan = FaultPlan::Global();
  ASSERT_TRUE(plan.ConfigureFromEnv().ok());
  EXPECT_EQ(plan.delivery_fail_points(),
            (std::vector<uint64_t>{3, 7}));
}

TEST_F(FaultPlanTest, BadEnvironmentSpecSurfacesContext) {
  ::setenv("GT_CRASH_AT", "nonsense-point", 1);
  Status st = FaultPlan::Global().ConfigureFromEnv();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("GT_CRASH_AT"), std::string::npos);
}

TEST_F(FaultPlanTest, TornCheckpointYieldsProperPrefixFraction) {
  FaultPlan& plan = FaultPlan::Global();
  ASSERT_TRUE(plan.Configure("torn=pre-checkpoint-rename:1,seed=42").ok());
  double keep = -1.0;
  ASSERT_TRUE(plan.TornCheckpointAt(kCrashPreCheckpointRename, &keep));
  EXPECT_GT(keep, 0.0);
  EXPECT_LT(keep, 1.0);
  // Spent after firing, and never applies to other points.
  double again = -1.0;
  EXPECT_FALSE(plan.TornCheckpointAt(kCrashPreCheckpointRename, &again));
  EXPECT_FALSE(plan.TornCheckpointAt(kCrashPostCheckpoint, &again));
}

TEST_F(FaultPlanTest, TornFractionIsDeterministicPerSeed) {
  double first = -1.0;
  FaultPlan& plan = FaultPlan::Global();
  ASSERT_TRUE(plan.Configure("torn=post-checkpoint,seed=7").ok());
  ASSERT_TRUE(plan.TornCheckpointAt(kCrashPostCheckpoint, &first));
  plan.Reset();
  double second = -1.0;
  ASSERT_TRUE(plan.Configure("torn=post-checkpoint,seed=7").ok());
  ASSERT_TRUE(plan.TornCheckpointAt(kCrashPostCheckpoint, &second));
  EXPECT_DOUBLE_EQ(first, second);
}

TEST_F(FaultPlanTest, EnospcBudgetLatchesAfterExhaustion) {
  FaultPlan& plan = FaultPlan::Global();
  ASSERT_TRUE(plan.Configure("enospc=100").ok());
  size_t allowed = 0;
  std::string error;
  // Within budget: writes pass untouched.
  EXPECT_FALSE(plan.ClipFileWrite(60, &allowed, &error));
  // 60 spent; the next 60-byte write overruns — a partial 40 bytes land.
  ASSERT_TRUE(plan.ClipFileWrite(60, &allowed, &error));
  EXPECT_EQ(allowed, 40u);
  EXPECT_NE(error.find("ENOSPC"), std::string::npos);
  // Latched: everything after fails outright with nothing written.
  ASSERT_TRUE(plan.ClipFileWrite(10, &allowed, &error));
  EXPECT_EQ(allowed, 0u);
  EXPECT_EQ(plan.write_faults_fired(), 1u);
}

TEST_F(FaultPlanTest, ShortWriteFiresOnTheNthWriteOnly) {
  FaultPlan& plan = FaultPlan::Global();
  ASSERT_TRUE(plan.Configure("short-write=3").ok());
  size_t allowed = 0;
  std::string error;
  EXPECT_FALSE(plan.ClipFileWrite(100, &allowed, &error));
  EXPECT_FALSE(plan.ClipFileWrite(100, &allowed, &error));
  ASSERT_TRUE(plan.ClipFileWrite(100, &allowed, &error));
  EXPECT_EQ(allowed, 50u);  // half the bytes land, then the error
  EXPECT_NE(error.find("short write"), std::string::npos);
  ASSERT_TRUE(plan.ClipFileWrite(100, &allowed, &error));  // latched
  EXPECT_EQ(allowed, 0u);
  EXPECT_EQ(plan.write_faults_fired(), 1u);
}

TEST_F(FaultPlanTest, PipeSinkSurfacesInjectedWriteFaults) {
  // The gate is wired into PipeSink::WriteBytes: a short write lands its
  // partial bytes, reports IoError, and byte accounting reflects only what
  // actually reached the stream.
  FaultPlan& plan = FaultPlan::Global();
  ASSERT_TRUE(plan.Configure("short-write=1").ok());
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  PipeSink sink(f);
  const Event event = Event::AddVertex(42, "payload");
  Status st = sink.Deliver(event);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIoError());
  EXPECT_NE(st.message().find("short write"), std::string::npos);
  EXPECT_GT(sink.bytes_delivered(), 0u);
  EXPECT_LT(sink.bytes_delivered(), event.ToCsvLine().size());
  std::fclose(f);
}

TEST_F(FaultPlanTest, ResetDisarmsAndClearsCounters) {
  FaultPlan& plan = FaultPlan::Global();
  ASSERT_TRUE(plan.Configure("crash=post-delivery:100,enospc=0").ok());
  plan.set_crash_fn([](std::string_view) {});
  plan.Hit(kCrashPostDelivery);
  size_t allowed = 0;
  std::string error;
  ASSERT_TRUE(plan.ClipFileWrite(1, &allowed, &error));
  EXPECT_GT(plan.hits_observed(), 0u);
  EXPECT_GT(plan.write_faults_fired(), 0u);

  plan.Reset();
  EXPECT_FALSE(plan.armed());
  EXPECT_EQ(plan.hits_observed(), 0u);
  EXPECT_EQ(plan.write_faults_fired(), 0u);
  EXPECT_FALSE(plan.ClipFileWrite(1, &allowed, &error));
}

TEST_F(FaultPlanTest, KnownCrashPointsCoverTheCompiledSites) {
  const auto& points = FaultPlan::KnownCrashPoints();
  ASSERT_EQ(points.size(), 9u);
  for (const std::string_view expected :
       {kCrashPostDelivery, kCrashMidCheckpointWrite,
        kCrashPreCheckpointRename, kCrashPostCheckpoint, kCrashEpochBarrier,
        kCrashCoordPostAssign, kCrashCoordEpochRelease, kCrashWorkerPostHello,
        kCrashWorkerEpochReport}) {
    bool found = false;
    for (const std::string_view p : points) {
      if (p == expected) found = true;
    }
    EXPECT_TRUE(found) << expected;
  }
}

}  // namespace
}  // namespace graphtides
