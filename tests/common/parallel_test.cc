#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace graphtides {
namespace {

TEST(ParallelTest, ResolveThreadsAutoAndExplicit) {
  EXPECT_GE(ResolveThreads(0), 1u);
  EXPECT_EQ(ResolveThreads(1), 1u);
  EXPECT_EQ(ResolveThreads(3), 3u);
  EXPECT_EQ(ResolveThreads(1000), ThreadPool::kMaxThreads);
}

TEST(ParallelTest, SetDefaultThreadsOverridesAuto) {
  ThreadPool::SetDefaultThreads(1);
  EXPECT_EQ(ResolveThreads(0), 1u);
  ThreadPool::SetDefaultThreads(3);
  EXPECT_EQ(ResolveThreads(0), 3u);
  ThreadPool::SetDefaultThreads(0);  // restore hardware default
  EXPECT_GE(ResolveThreads(0), 1u);
}

TEST(ParallelTest, UniformChunksPartitionTheRange) {
  for (const size_t n : {0u, 1u, 5u, 2048u, 100000u}) {
    const auto chunks = UniformChunks(0, n, 64);
    ASSERT_LE(chunks.size(), kMaxParallelChunks);
    size_t covered = 0;
    size_t expected_begin = 0;
    for (const auto& [begin, end] : chunks) {
      EXPECT_EQ(begin, expected_begin);
      EXPECT_LT(begin, end);
      covered += end - begin;
      expected_begin = end;
    }
    EXPECT_EQ(covered, n);
    if (n == 0) {
      EXPECT_TRUE(chunks.empty());
    }
  }
}

TEST(ParallelTest, DegreeBalancedChunksPartitionAndBalance) {
  // Skewed degrees: one hub with weight ~n, the rest tiny.
  const size_t n = 10000;
  std::vector<size_t> offsets(n + 1, 0);
  for (size_t v = 0; v < n; ++v) {
    const size_t degree = (v == 7) ? n : (v % 3);
    offsets[v + 1] = offsets[v] + degree;
  }
  const auto chunks = DegreeBalancedChunks(offsets, 128);
  ASSERT_FALSE(chunks.empty());
  ASSERT_LE(chunks.size(), kMaxParallelChunks);
  size_t expected_begin = 0;
  size_t max_weight = 0;
  for (const auto& [begin, end] : chunks) {
    ASSERT_EQ(begin, expected_begin);
    ASSERT_LT(begin, end);
    expected_begin = end;
    size_t weight = 0;
    for (size_t v = begin; v < end; ++v) {
      weight += offsets[v + 1] - offsets[v] + 1;
    }
    max_weight = std::max(max_weight, weight);
  }
  EXPECT_EQ(expected_begin, n);
  // No chunk exceeds hub weight + the greedy target; the hub forces one
  // heavy chunk, everything else stays near the target.
  const size_t total = offsets[n] + n;
  const size_t target = (total + chunks.size() - 1) / chunks.size();
  EXPECT_LE(max_weight, n + 1 + target);
}

TEST(ParallelTest, ParallelForCoversEveryIndexOnce) {
  const size_t n = 50000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(0, n, {.threads = 4, .grain = 128}, [&](size_t begin,
                                                      size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelTest, ReduceIsBitIdenticalAcrossThreadCounts) {
  const size_t n = 100000;
  std::vector<double> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto sum_with = [&](size_t threads) {
    return ParallelReduce(
        0, n, {.threads = threads, .grain = 512}, 0.0,
        [&](size_t begin, size_t end) {
          double s = 0.0;
          for (size_t i = begin; i < end; ++i) s += values[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double reference = sum_with(1);
  for (const size_t threads : {2u, 3u, 8u}) {
    const double parallel = sum_with(threads);
    // Exact equality on purpose: same chunk layout, same fold order.
    EXPECT_EQ(parallel, reference) << "threads=" << threads;
  }
}

TEST(ParallelTest, ExceptionPropagatesAndPoolStaysUsable) {
  EXPECT_THROW(
      ParallelFor(0, 10000, {.threads = 4, .grain = 16},
                  [&](size_t begin, size_t) {
                    if (begin >= 5000) throw std::runtime_error("chunk fail");
                  }),
      std::runtime_error);

  // The pool must have fully quiesced: the next region works normally.
  std::atomic<size_t> covered{0};
  ParallelFor(0, 10000, {.threads = 4, .grain = 16},
              [&](size_t begin, size_t end) {
                covered.fetch_add(end - begin, std::memory_order_relaxed);
              });
  EXPECT_EQ(covered.load(), 10000u);
}

TEST(ParallelTest, NestedParallelRegionsRunInline) {
  std::vector<std::atomic<int>> hits(4096);
  ParallelFor(0, 64, {.threads = 4, .grain = 8}, [&](size_t outer_begin,
                                                     size_t outer_end) {
    for (size_t outer = outer_begin; outer < outer_end; ++outer) {
      ParallelFor(0, 64, {.threads = 4, .grain = 8},
                  [&](size_t begin, size_t end) {
                    for (size_t inner = begin; inner < end; ++inner) {
                      hits[outer * 64 + inner].fetch_add(
                          1, std::memory_order_relaxed);
                    }
                  });
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelTest, DedicatedPoolRunTasksExecutesEachTaskOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  std::vector<std::atomic<int>> hits(500);
  pool.RunTasks(hits.size(), 4, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelTest, PoolShutdownAndRecreationLoop) {
  for (int round = 0; round < 5; ++round) {
    ThreadPool pool(2);
    std::atomic<size_t> sum{0};
    pool.RunTasks(100, 3,
                  [&](size_t i) { sum.fetch_add(i + 1,
                                                std::memory_order_relaxed); });
    EXPECT_EQ(sum.load(), 5050u);
    // Destructor joins the workers; a stuck worker would hang the test.
  }
}

TEST(ParallelTest, GlobalPoolReusedAcrossRegions) {
  // Repeated regions must reuse (not leak) workers in the global pool.
  ParallelFor(0, 1000, {.threads = 4, .grain = 16}, [](size_t, size_t) {});
  const size_t workers_after_first = ThreadPool::Global().workers();
  for (int i = 0; i < 20; ++i) {
    ParallelFor(0, 1000, {.threads = 4, .grain = 16}, [](size_t, size_t) {});
  }
  EXPECT_EQ(ThreadPool::Global().workers(), workers_after_first);
  EXPECT_LE(workers_after_first, ThreadPool::kMaxThreads);
}

}  // namespace
}  // namespace graphtides
