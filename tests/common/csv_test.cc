#include "common/csv.h"

#include <gtest/gtest.h>

namespace graphtides {
namespace {

TEST(CsvTest, SplitsPlainFields) {
  auto r = ParseCsvLine("a,b,c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, KeepsEmptyFields) {
  auto r = ParseCsvLine("a,,c,");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"a", "", "c", ""}));
}

TEST(CsvTest, EmptyLineIsOneEmptyField) {
  auto r = ParseCsvLine("");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{""}));
}

TEST(CsvTest, QuotedFieldWithComma) {
  auto r = ParseCsvLine("a,\"b,c\",d");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"a", "b,c", "d"}));
}

TEST(CsvTest, EscapedQuotes) {
  auto r = ParseCsvLine("\"he said \"\"hi\"\"\",x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"he said \"hi\"", "x"}));
}

TEST(CsvTest, JsonPayloadRoundTrip) {
  const std::string json = R"({"name":"alice","tags":["a","b"],"n":3})";
  const std::string line = FormatCsvLine({"UPDATE_VERTEX", "7", json});
  auto r = ParseCsvLine(line);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[2], json);
}

TEST(CsvTest, UnterminatedQuoteIsParseError) {
  auto r = ParseCsvLine("a,\"oops");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(CsvTest, TrailingGarbageAfterQuoteIsParseError) {
  auto r = ParseCsvLine("\"ok\"x,y");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(CsvTest, QuoteInsideUnquotedFieldIsParseError) {
  auto r = ParseCsvLine("ab\"cd,e");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(CsvTest, EscapePlainFieldUnchanged) {
  EXPECT_EQ(EscapeCsvField("plain"), "plain");
  EXPECT_EQ(EscapeCsvField(""), "");
}

TEST(CsvTest, EscapeQuotesWhenNeeded) {
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(EscapeCsvField("a\nb"), "\"a\nb\"");
}

TEST(ParseCsvLineTest, RejectsNulBytes) {
  const std::string line("a,b\0c,d", 7);
  auto parsed = ParseCsvLine(line);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsParseError());
  EXPECT_NE(parsed.status().message().find("NUL"), std::string::npos);
}

TEST(ParseCsvLineTest, RejectsNulInsideQuotedField) {
  const std::string line("a,\"b\0c\",d", 9);
  auto parsed = ParseCsvLine(line);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsParseError());
}

struct RoundTripCase {
  std::vector<std::string> fields;
};

class CsvRoundTripTest : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(CsvRoundTripTest, FormatThenParseIsIdentity) {
  const auto& fields = GetParam().fields;
  auto parsed = ParseCsvLine(FormatCsvLine(fields));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, fields);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CsvRoundTripTest,
    ::testing::Values(
        RoundTripCase{{"a", "b", "c"}},
        RoundTripCase{{"", "", ""}},
        RoundTripCase{{"with,comma", "with\"quote", "with\nnewline"}},
        RoundTripCase{{R"({"k":"v,x"})", "1-2", ""}},
        RoundTripCase{{"\"\"", ",", "\""}},
        RoundTripCase{{"MARKER", "", "PHASE_1 done, next up"}}));

}  // namespace
}  // namespace graphtides
