#include "common/flags.h"

#include <gtest/gtest.h>

namespace graphtides {
namespace {

TEST(FlagsTest, EmptyCommandLine) {
  auto flags = Flags::Parse({});
  ASSERT_TRUE(flags.ok());
  EXPECT_FALSE(flags->Has("anything"));
  EXPECT_TRUE(flags->positional().empty());
}

TEST(FlagsTest, SpaceSeparatedValues) {
  auto flags = Flags::Parse({"--model", "social", "--rounds", "100"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetString("model", ""), "social");
  EXPECT_EQ(flags->GetInt("rounds", 0).value(), 100);
}

TEST(FlagsTest, EqualsSeparatedValues) {
  auto flags = Flags::Parse({"--rate=2500.5", "--out=file.gts"});
  ASSERT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags->GetDouble("rate", 0.0).value(), 2500.5);
  EXPECT_EQ(flags->GetString("out", ""), "file.gts");
}

TEST(FlagsTest, BareFlagIsBoolean) {
  auto flags = Flags::Parse({"--stats", "--quiet", "--rounds", "5"});
  ASSERT_TRUE(flags.ok());
  EXPECT_TRUE(flags->GetBool("stats"));
  EXPECT_TRUE(flags->GetBool("quiet"));
  EXPECT_FALSE(flags->GetBool("missing"));
  EXPECT_EQ(flags->GetInt("rounds", 0).value(), 5);
}

TEST(FlagsTest, BooleanFalseValues) {
  auto flags = Flags::Parse({"--a=false", "--b=0", "--c=no", "--d=yes"});
  ASSERT_TRUE(flags.ok());
  EXPECT_FALSE(flags->GetBool("a", true));
  EXPECT_FALSE(flags->GetBool("b", true));
  EXPECT_FALSE(flags->GetBool("c", true));
  EXPECT_TRUE(flags->GetBool("d", false));
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  auto flags = Flags::Parse({});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetString("x", "def"), "def");
  EXPECT_EQ(flags->GetInt("x", 42).value(), 42);
  EXPECT_DOUBLE_EQ(flags->GetDouble("x", 1.5).value(), 1.5);
}

TEST(FlagsTest, MalformedNumbersError) {
  auto flags = Flags::Parse({"--rounds", "abc", "--rate", "x.y"});
  ASSERT_TRUE(flags.ok());
  EXPECT_FALSE(flags->GetInt("rounds", 0).ok());
  EXPECT_FALSE(flags->GetDouble("rate", 0.0).ok());
  // Error message names the flag.
  EXPECT_NE(flags->GetInt("rounds", 0).status().message().find("--rounds"),
            std::string::npos);
}

TEST(FlagsTest, PositionalArguments) {
  auto flags = Flags::Parse({"input.gts", "--rate", "100", "extra"});
  ASSERT_TRUE(flags.ok());
  ASSERT_EQ(flags->positional().size(), 2u);
  EXPECT_EQ(flags->positional()[0], "input.gts");
  EXPECT_EQ(flags->positional()[1], "extra");
}

TEST(FlagsTest, UnknownFlagDetection) {
  auto flags = Flags::Parse({"--model", "social", "--typo", "x"});
  ASSERT_TRUE(flags.ok());
  const auto unknown = flags->UnknownFlags({"model", "rounds"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "typo");
}

TEST(FlagsTest, BareDoubleDashRejected) {
  auto flags = Flags::Parse({"--"});
  EXPECT_FALSE(flags.ok());
}

TEST(FlagsTest, ArgcArgvEntryPoint) {
  const char* argv[] = {"prog", "--n", "3"};
  auto flags = Flags::Parse(3, argv);
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("n", 0).value(), 3);
}

TEST(FlagsTest, LastOccurrenceWins) {
  auto flags = Flags::Parse({"--n", "1", "--n", "2"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("n", 0).value(), 2);
}

TEST(FlagsTest, NegativeNumbersAsValues) {
  // "-5" does not start with "--", so it is consumed as the value.
  auto flags = Flags::Parse({"--offset", "-5"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetInt("offset", 0).value(), -5);
}

}  // namespace
}  // namespace graphtides
