#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace graphtides {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.min(), 0.0);
  EXPECT_EQ(rs.max(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats rs;
  rs.Add(5.0);
  EXPECT_EQ(rs.count(), 1u);
  EXPECT_EQ(rs.mean(), 5.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.min(), 5.0);
  EXPECT_EQ(rs.max(), 5.0);
  EXPECT_EQ(rs.sum(), 5.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats rs;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(v);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  // Sample variance with n-1 denominator: 32/7.
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSinglePass) {
  Rng rng(7);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextGaussian() * 3.0 + 1.0;
    all.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  a.Add(2.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_NEAR(empty.mean(), 1.5, 1e-12);
}

TEST(PercentileTest, EmptyIsZero) {
  EXPECT_EQ(Percentile({}, 0.5), 0.0);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_EQ(Percentile({3.0}, 0.0), 3.0);
  EXPECT_EQ(Percentile({3.0}, 1.0), 3.0);
}

TEST(PercentileTest, InterpolatesLinearly) {
  const std::vector<double> v = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0 / 3.0), 20.0);
}

TEST(PercentileTest, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(Percentile({40.0, 10.0, 30.0, 20.0}, 0.5), 25.0);
}

TEST(PercentileTest, MedianOddCount) {
  EXPECT_DOUBLE_EQ(Median({5.0, 1.0, 3.0}), 3.0);
}

TEST(StudentTTest, LargeDfApproachesNormal) {
  EXPECT_NEAR(StudentTCritical(0.95, 1000000), 1.96, 0.01);
  EXPECT_NEAR(StudentTCritical(0.99, 1000000), 2.576, 0.01);
  EXPECT_NEAR(StudentTCritical(0.90, 1000000), 1.645, 0.01);
}

TEST(StudentTTest, SmallDfKnownValues) {
  EXPECT_NEAR(StudentTCritical(0.95, 1), 12.706, 0.001);
  EXPECT_NEAR(StudentTCritical(0.95, 10), 2.228, 0.001);
  EXPECT_NEAR(StudentTCritical(0.95, 30), 2.042, 0.001);
}

TEST(StudentTTest, InterpolatedDfMonotone) {
  const double t13 = StudentTCritical(0.95, 13);
  EXPECT_LT(t13, StudentTCritical(0.95, 12));
  EXPECT_GT(t13, StudentTCritical(0.95, 15));
}

TEST(ConfidenceIntervalTest, ContainsMean) {
  std::vector<double> samples;
  Rng rng(99);
  for (int i = 0; i < 50; ++i) samples.push_back(10.0 + rng.NextGaussian());
  const ConfidenceInterval ci = MeanConfidenceInterval(samples, 0.95);
  EXPECT_GT(ci.mean, ci.lower);
  EXPECT_LT(ci.mean, ci.upper);
  EXPECT_EQ(ci.n, 50u);
  // With sigma=1 and n=50, the CI half-width is ~0.28.
  EXPECT_NEAR(ci.upper - ci.lower, 2 * 2.01 * 1.0 / std::sqrt(50.0), 0.15);
}

TEST(ConfidenceIntervalTest, EmptyAndSingleton) {
  const ConfidenceInterval empty = MeanConfidenceInterval({}, 0.95);
  EXPECT_EQ(empty.n, 0u);
  const ConfidenceInterval one = MeanConfidenceInterval({4.0}, 0.95);
  EXPECT_EQ(one.mean, 4.0);
  EXPECT_EQ(one.lower, 4.0);
  EXPECT_EQ(one.upper, 4.0);
}

TEST(ConfidenceIntervalTest, DisjointDetection) {
  ConfidenceInterval a;
  a.lower = 0.0;
  a.upper = 1.0;
  ConfidenceInterval b;
  b.lower = 2.0;
  b.upper = 3.0;
  EXPECT_TRUE(a.DisjointFrom(b));
  EXPECT_TRUE(b.DisjointFrom(a));
  b.lower = 0.5;
  EXPECT_FALSE(a.DisjointFrom(b));
}

TEST(ConfidenceIntervalTest, WiderAtHigherLevel) {
  std::vector<double> samples;
  Rng rng(3);
  for (int i = 0; i < 40; ++i) samples.push_back(rng.NextDouble());
  const auto ci95 = MeanConfidenceInterval(samples, 0.95);
  const auto ci99 = MeanConfidenceInterval(samples, 0.99);
  EXPECT_GT(ci99.upper - ci99.lower, ci95.upper - ci95.lower);
}

TEST(HistogramTest, CountsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(9.5);
  h.Add(-1.0);   // clamps to first bucket
  h.Add(100.0);  // clamps to last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[9], 2u);
}

TEST(HistogramTest, BucketBounds) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.BucketLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(0), 2.0);
  EXPECT_DOUBLE_EQ(h.BucketLow(4), 8.0);
}

TEST(HistogramTest, ApproxPercentileReasonable) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.Add(static_cast<double>(i % 100));
  EXPECT_NEAR(h.ApproxPercentile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.ApproxPercentile(0.99), 99.0, 2.0);
}

}  // namespace
}  // namespace graphtides
