#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

namespace graphtides {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ReseedResets) {
  Rng rng(77);
  const uint64_t first = rng.NextU64();
  rng.NextU64();
  rng.Seed(77);
  EXPECT_EQ(rng.NextU64(), first);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, DoubleMeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, BoolRespectsProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BoolEdgeProbabilities) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, GaussianMomentsMatch) {
  Rng rng(23);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, WeightedPicksProportionally) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, WeightedAllZeroReturnsSize) {
  Rng rng(37);
  EXPECT_EQ(rng.NextWeighted({0.0, 0.0}), 2u);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(41);
  Rng child = parent.Fork();
  // Child stream differs from the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextU64() == child.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

class ZipfSamplerTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler zipf(100, GetParam());
  double sum = 0.0;
  for (size_t i = 0; i < zipf.n(); ++i) sum += zipf.Pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(ZipfSamplerTest, LowerRanksDominateForPositiveExponent) {
  const double s = GetParam();
  ZipfSampler zipf(50, s);
  if (s > 0.0) {
    EXPECT_GT(zipf.Pmf(0), zipf.Pmf(10));
    EXPECT_GT(zipf.Pmf(10), zipf.Pmf(49));
  } else {
    EXPECT_NEAR(zipf.Pmf(0), zipf.Pmf(49), 1e-12);
  }
}

TEST_P(ZipfSamplerTest, EmpiricalMatchesPmf) {
  ZipfSampler zipf(10, GetParam());
  Rng rng(43);
  std::vector<int> counts(10, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (size_t rank = 0; rank < 10; ++rank) {
    EXPECT_NEAR(counts[rank] / static_cast<double>(n), zipf.Pmf(rank), 0.01)
        << "rank " << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfSamplerTest,
                         ::testing::Values(0.0, 0.5, 1.0, 1.5, 2.0));

TEST(ZipfSamplerTest, SingleElementAlwaysZero) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(47);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

}  // namespace
}  // namespace graphtides
