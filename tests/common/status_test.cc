#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace graphtides {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing vertex");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing vertex");
  EXPECT_EQ(st.ToString(), "NotFound: missing vertex");
}

TEST(StatusTest, AllFactoryPredicatesMatch) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::PreconditionFailed("x").IsPreconditionFailed());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::CapacityExceeded("x").IsCapacityExceeded());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_TRUE(Status::Unsupported("x").IsUnsupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
}

TEST(StatusTest, PredicatesAreExclusive) {
  Status st = Status::IoError("disk");
  EXPECT_FALSE(st.IsNotFound());
  EXPECT_FALSE(st.IsParseError());
  EXPECT_FALSE(st.ok());
}

TEST(StatusTest, CopyPreservesState) {
  Status original = Status::ParseError("bad line");
  Status copy = original;
  EXPECT_EQ(copy.code(), StatusCode::kParseError);
  EXPECT_EQ(copy.message(), "bad line");
  // Original unaffected by copy.
  EXPECT_EQ(original.message(), "bad line");
}

TEST(StatusTest, CopyAssignOverwrites) {
  Status a = Status::IoError("io");
  Status b = Status::NotFound("nf");
  a = b;
  EXPECT_TRUE(a.IsNotFound());
  a = Status::OK();
  EXPECT_TRUE(a.ok());
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status a = Status::Internal("boom");
  Status b = std::move(a);
  EXPECT_TRUE(b.IsInternal());
}

TEST(StatusTest, WithContextPrepends) {
  Status st = Status::ParseError("bad field").WithContext("line 7");
  EXPECT_EQ(st.ToString(), "ParseError: line 7: bad field");
  EXPECT_TRUE(st.IsParseError());
}

TEST(StatusTest, WithContextOnOkIsNoop) {
  Status st = Status::OK().WithContext("anything");
  EXPECT_TRUE(st.ok());
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::Timeout("slow");
  EXPECT_EQ(os.str(), "Timeout: slow");
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCancelled), "Cancelled");
}

Status Fails() { return Status::IoError("inner"); }

Status PropagatesThroughMacro() {
  GT_RETURN_NOT_OK(Fails());
  return Status::Internal("unreachable");
}

Status PassesThroughMacro() {
  GT_RETURN_NOT_OK(Status::OK());
  return Status::Internal("reached");
}

TEST(StatusTest, ReturnNotOkMacroPropagatesError) {
  EXPECT_TRUE(PropagatesThroughMacro().IsIoError());
}

TEST(StatusTest, ReturnNotOkMacroFallsThroughOnOk) {
  EXPECT_TRUE(PassesThroughMacro().IsInternal());
}

}  // namespace
}  // namespace graphtides
