#include "suite/benchmark_suite.h"

#include <gtest/gtest.h>

#include "suite/connectors/hybrid_connector.h"
#include "suite/connectors/offline_connector.h"
#include "suite/connectors/online_connector.h"

namespace graphtides {
namespace {

std::vector<SuiteWorkload> SmallWorkloads() {
  return StandardWorkloads(SuiteSize::kSmall, 7);
}

TEST(StandardWorkloadsTest, FourWorkloadsWithWatermarks) {
  const auto workloads = SmallWorkloads();
  ASSERT_EQ(workloads.size(), 4u);
  for (const SuiteWorkload& w : workloads) {
    EXPECT_FALSE(w.events.empty()) << w.name;
    EXPECT_GT(w.graph_events, 10000u) << w.name;
    EXPECT_GT(w.rate_eps, 0.0);
    size_t markers = 0;
    for (const Event& e : w.events) {
      if (e.type == EventType::kMarker) ++markers;
    }
    // ~19 watermarks at 5% spacing.
    EXPECT_GE(markers, 15u) << w.name;
  }
  EXPECT_EQ(workloads[0].name, "social");
  EXPECT_EQ(workloads[1].name, "ddos");
  EXPECT_EQ(workloads[2].name, "blockchain");
  EXPECT_EQ(workloads[3].name, "mix");
}

TEST(StandardWorkloadsTest, DeterministicInSeed) {
  const auto a = StandardWorkloads(SuiteSize::kSmall, 3);
  const auto b = StandardWorkloads(SuiteSize::kSmall, 3);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].events, b[i].events) << a[i].name;
  }
}

SuiteWorkload TinySocial() {
  auto workloads = StandardWorkloads(SuiteSize::kSmall, 5);
  SuiteWorkload w = std::move(workloads[0]);
  // Truncate to ~4000 graph events to keep connector tests fast.
  std::vector<Event> events;
  size_t graph_events = 0;
  for (Event& e : w.events) {
    if (IsGraphOp(e.type)) {
      if (graph_events >= 4000) break;
      ++graph_events;
    }
    events.push_back(std::move(e));
  }
  w.events = std::move(events);
  w.graph_events = graph_events;
  return w;
}

SuiteCaseOptions FastOptions() {
  SuiteCaseOptions options;
  options.error_interval = Duration::FromSeconds(1.0);
  options.max_duration = Duration::FromSeconds(60.0);
  return options;
}

TEST(SuiteCaseTest, OnlineConnectorScores) {
  const SuiteWorkload w = TinySocial();
  auto score = RunSuiteCase(
      w,
      [](Simulator* sim) -> std::unique_ptr<SuiteConnector> {
        ChronoLiteOptions options;
        options.rank.push_threshold = 0.02;
        return std::make_unique<OnlineConnector>(sim, options);
      },
      FastOptions());
  ASSERT_TRUE(score.ok()) << score.status();
  EXPECT_EQ(score->connector, "online-chronolite");
  EXPECT_TRUE(score->drained);
  EXPECT_NEAR(score->applied_rate_eps, w.rate_eps, 0.2 * w.rate_eps);
  EXPECT_GE(score->watermark_p50_s, 0.0);
  EXPECT_LT(score->watermark_p99_s, 2.0);
  // Approximate but sane accuracy.
  EXPECT_GE(score->mean_rank_error, 0.0);
  EXPECT_LT(score->mean_rank_error, 0.5);
  EXPECT_DOUBLE_EQ(score->mean_result_age_s, 0.0);
}

TEST(SuiteCaseTest, OfflineConnectorExactButStale) {
  const SuiteWorkload w = TinySocial();
  auto score = RunSuiteCase(
      w,
      [](Simulator* sim) -> std::unique_ptr<SuiteConnector> {
        OfflineConnectorOptions options;
        options.epoch = Duration::FromMillis(500);
        return std::make_unique<OfflineSnapshotConnector>(sim, options);
      },
      FastOptions());
  ASSERT_TRUE(score.ok()) << score.status();
  EXPECT_TRUE(score->drained);
  // Final result is exact: the last recompute ran on the final graph.
  EXPECT_GE(score->final_rank_error, 0.0);
  EXPECT_LT(score->final_rank_error, 0.01);
  // But results are stale on average.
  EXPECT_GT(score->mean_result_age_s, 0.0);
}

TEST(SuiteCaseTest, HybridKeepsIngestionFast) {
  const SuiteWorkload w = TinySocial();
  // Heavy recomputes (several hundred ms) make the architectural
  // difference visible: offline blocks ingestion behind them, hybrid
  // runs them on a second process.
  auto offline = RunSuiteCase(
      w,
      [](Simulator* sim) -> std::unique_ptr<SuiteConnector> {
        OfflineConnectorOptions options;
        options.epoch = Duration::FromMillis(500);
        options.compute_cost_per_edge = Duration::FromMicros(10);
        return std::make_unique<OfflineSnapshotConnector>(sim, options);
      },
      FastOptions());
  auto hybrid = RunSuiteCase(
      w,
      [](Simulator* sim) -> std::unique_ptr<SuiteConnector> {
        HybridConnectorOptions options;
        options.epoch = Duration::FromMillis(500);
        options.compute_cost_per_edge = Duration::FromMicros(10);
        return std::make_unique<HybridConnector>(sim, options);
      },
      FastOptions());
  ASSERT_TRUE(offline.ok());
  ASSERT_TRUE(hybrid.ok());
  // The hybrid's recomputes do not block ingestion: its worst-case
  // watermark latency is below the offline connector's.
  EXPECT_LT(hybrid->watermark_p99_s, offline->watermark_p99_s);
  EXPECT_GE(hybrid->applied_rate_eps, offline->applied_rate_eps);
}

TEST(SuiteCaseTest, EmptyWorkloadRejected) {
  SuiteWorkload empty;
  empty.name = "empty";
  auto score = RunSuiteCase(empty, [](Simulator*) {
    return std::unique_ptr<SuiteConnector>();
  });
  ASSERT_FALSE(score.ok());
}

TEST(SuiteCaseTest, NullConnectorRejected) {
  const SuiteWorkload w = TinySocial();
  auto score = RunSuiteCase(
      w, [](Simulator*) { return std::unique_ptr<SuiteConnector>(); });
  ASSERT_FALSE(score.ok());
  EXPECT_TRUE(score.status().IsInvalidArgument());
}

TEST(RunSuiteTest, CrossProductAndReport) {
  std::vector<SuiteWorkload> workloads = {TinySocial()};
  std::vector<SuiteEntry> connectors;
  connectors.push_back(
      {"online", [](Simulator* sim) -> std::unique_ptr<SuiteConnector> {
         ChronoLiteOptions options;
         options.rank.push_threshold = 0.05;
         return std::make_unique<OnlineConnector>(sim, options);
       }});
  connectors.push_back(
      {"hybrid", [](Simulator* sim) -> std::unique_ptr<SuiteConnector> {
         return std::make_unique<HybridConnector>(sim,
                                                  HybridConnectorOptions{});
       }});
  auto scores = RunSuite(workloads, connectors, FastOptions());
  ASSERT_TRUE(scores.ok());
  ASSERT_EQ(scores->size(), 2u);
  EXPECT_EQ((*scores)[0].connector, "online");
  EXPECT_EQ((*scores)[1].connector, "hybrid");
  const std::string report = FormatSuiteReport(*scores);
  EXPECT_NE(report.find("online"), std::string::npos);
  EXPECT_NE(report.find("hybrid"), std::string::npos);
  EXPECT_NE(report.find("wm p99"), std::string::npos);
}

}  // namespace
}  // namespace graphtides
