#include "suite/recoverable_connector.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "suite/benchmark_suite.h"
#include "suite/connectors/online_connector.h"

namespace graphtides {
namespace {

ConnectorFactory OnlineFactory() {
  return [](Simulator* sim) {
    return std::make_unique<OnlineConnector>(sim, ChronoLiteOptions{});
  };
}

// A small ring + chords stream: enough structure for PageRank to have a
// meaningful top-k.
std::vector<Event> SmallStream(size_t n = 200) {
  std::vector<Event> events;
  for (VertexId v = 0; v < n; ++v) events.push_back(Event::AddVertex(v));
  for (VertexId v = 0; v < n; ++v) {
    events.push_back(Event::AddEdge(v, (v + 1) % n));
    events.push_back(Event::AddEdge(v, (v * 7 + 3) % n));
  }
  return events;
}

TEST(RecoverableConnectorTest, ForwardsAndJournalsWhileAlive) {
  Simulator sim;
  RecoverableConnector connector(&sim, OnlineFactory());
  EXPECT_TRUE(connector.SupportsRecovery());
  for (const Event& e : SmallStream(50)) connector.Ingest(e);
  sim.RunUntilIdle();
  EXPECT_FALSE(connector.crashed());
  EXPECT_GT(connector.EventsApplied(), 0u);
  EXPECT_TRUE(connector.Idle());
  EXPECT_FALSE(connector.CurrentRanks().empty());
}

TEST(RecoverableConnectorTest, CrashedConnectorHasNoQueryableResult) {
  Simulator sim;
  RecoverableConnector connector(&sim, OnlineFactory());
  for (const Event& e : SmallStream(50)) connector.Ingest(e);
  sim.RunUntilIdle();
  connector.Crash();
  EXPECT_TRUE(connector.crashed());
  EXPECT_TRUE(connector.CurrentRanks().empty());
  EXPECT_FALSE(connector.Idle());
  // Result age grows with the outage.
  sim.RunUntil(sim.Now() + Duration::FromSeconds(3.0));
  EXPECT_NEAR(connector.ResultAge().seconds(), 3.0, 1e-9);
}

TEST(RecoverableConnectorTest, RecoveryReplaysJournalAndConverges) {
  Simulator sim;
  RecoverableConnector connector(&sim, OnlineFactory());
  const std::vector<Event> stream = SmallStream();

  // First half, then crash, then second half during downtime (journaled),
  // then recover: the rebuilt instance must see the whole stream.
  const size_t half = stream.size() / 2;
  for (size_t i = 0; i < half; ++i) connector.Ingest(stream[i]);
  sim.RunUntilIdle();
  connector.Crash();
  for (size_t i = half; i < stream.size(); ++i) connector.Ingest(stream[i]);
  connector.Recover();
  sim.RunUntilIdle();

  EXPECT_EQ(connector.crashes(), 1u);
  EXPECT_EQ(connector.lost_events(), 0u);
  EXPECT_EQ(connector.last_recovery_journal(), stream.size());
  EXPECT_EQ(connector.inner_applied(), stream.size());
  EXPECT_TRUE(connector.Idle());
  EXPECT_FALSE(connector.CurrentRanks().empty());
}

TEST(RecoverableConnectorTest, EventsLostWithoutJournaling) {
  Simulator sim;
  RecoverableOptions options;
  options.journal_during_downtime = false;
  RecoverableConnector connector(&sim, OnlineFactory(), options);
  const std::vector<Event> stream = SmallStream(50);
  const size_t half = stream.size() / 2;
  for (size_t i = 0; i < half; ++i) connector.Ingest(stream[i]);
  sim.RunUntilIdle();
  connector.Crash();
  for (size_t i = half; i < stream.size(); ++i) connector.Ingest(stream[i]);
  connector.Recover();
  sim.RunUntilIdle();

  EXPECT_EQ(connector.lost_events(), stream.size() - half);
  // Only the pre-crash prefix was replayed.
  EXPECT_EQ(connector.last_recovery_journal(), half);
  EXPECT_EQ(connector.inner_applied(), half);
}

TEST(RecoverableConnectorTest, EventsAppliedIsMonotoneAcrossRestart) {
  Simulator sim;
  RecoverableConnector connector(&sim, OnlineFactory());
  const std::vector<Event> stream = SmallStream(100);
  for (const Event& e : stream) connector.Ingest(e);
  sim.RunUntilIdle();
  const uint64_t before = connector.EventsApplied();
  ASSERT_GT(before, 0u);

  connector.Crash();
  EXPECT_GE(connector.EventsApplied(), before);
  connector.Recover();
  // Immediately after restart the raw counter is behind, but the reported
  // watermark-facing counter must never regress.
  EXPECT_LT(connector.inner_applied(), before);
  EXPECT_GE(connector.EventsApplied(), before);
  sim.RunUntilIdle();
  EXPECT_GE(connector.EventsApplied(), before);
  EXPECT_EQ(connector.inner_applied(), stream.size());
}

TEST(CrashRecoveryCaseTest, ReportsRecoveryOnSmallWorkload) {
  SuiteWorkload workload;
  workload.name = "tiny";
  workload.events = SmallStream();
  workload.graph_events = workload.events.size();
  workload.rate_eps = 100.0;  // 600 events -> 6s of stream

  CrashRecoveryOptions options;
  options.kill_after = Duration::FromSeconds(2.0);
  options.downtime = Duration::FromSeconds(1.0);
  options.max_duration = Duration::FromSeconds(120.0);

  auto report = RunCrashRecoveryCase(workload, OnlineFactory(), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->workload, "tiny");
  EXPECT_DOUBLE_EQ(report->crash_at_s, 2.0);
  EXPECT_DOUBLE_EQ(report->recover_at_s, 3.0);
  EXPECT_TRUE(report->recovered);
  EXPECT_GE(report->recovery_catchup_s, 0.0);
  EXPECT_EQ(report->lost_events, 0u);
  // The journal at recovery holds everything ingested up to t=3s.
  EXPECT_GT(report->journal_events, 0u);
  EXPECT_TRUE(report->drained);
  // Journaled recovery loses nothing: final ranks match the reference.
  ASSERT_GE(report->final_rank_error, 0.0);
  EXPECT_LT(report->final_rank_error, 0.05);
}

TEST(CrashRecoveryCaseTest, LossyRestartDivergesFromReference) {
  SuiteWorkload workload;
  workload.name = "tiny-lossy";
  workload.events = SmallStream();
  workload.graph_events = workload.events.size();
  workload.rate_eps = 100.0;

  CrashRecoveryOptions options;
  options.kill_after = Duration::FromSeconds(2.0);
  options.downtime = Duration::FromSeconds(2.0);
  options.journal_during_downtime = false;
  options.max_duration = Duration::FromSeconds(120.0);

  auto report = RunCrashRecoveryCase(workload, OnlineFactory(), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // 2s of downtime at 100 eps: ~200 events lost.
  EXPECT_GT(report->lost_events, 100u);
  EXPECT_GT(report->final_rank_error, 0.0);
}

}  // namespace
}  // namespace graphtides
