#include <gtest/gtest.h>

#include "algorithms/pagerank.h"
#include "graph/csr.h"
#include "suite/connectors/hybrid_connector.h"
#include "suite/connectors/offline_connector.h"
#include "suite/connectors/online_connector.h"

namespace graphtides {
namespace {

std::vector<Event> StarStream(size_t leaves) {
  std::vector<Event> events;
  events.push_back(Event::AddVertex(0));
  for (VertexId v = 1; v <= leaves; ++v) {
    events.push_back(Event::AddVertex(v));
    events.push_back(Event::AddEdge(v, 0));
  }
  return events;
}

TEST(OfflineConnectorTest, AppliesUpdatesAndCounts) {
  Simulator sim;
  OfflineSnapshotConnector connector(&sim, OfflineConnectorOptions{});
  const auto events = StarStream(10);
  for (const Event& e : events) connector.Ingest(e);
  sim.RunUntilIdle();
  EXPECT_EQ(connector.EventsApplied(), events.size());
  EXPECT_TRUE(connector.Idle());
}

TEST(OfflineConnectorTest, PublishesExactRanksAfterEpoch) {
  Simulator sim;
  OfflineConnectorOptions options;
  options.epoch = Duration::FromMillis(100);
  OfflineSnapshotConnector connector(&sim, options);
  for (const Event& e : StarStream(20)) connector.Ingest(e);
  sim.RunUntilIdle();
  ASSERT_GE(connector.recomputes_completed(), 1u);
  const auto ranks = connector.CurrentRanks();
  ASSERT_EQ(ranks.size(), 21u);
  // Exact batch result: the hub dominates with the known star value.
  Graph g;
  ASSERT_TRUE(g.ApplyAll(StarStream(20)).ok());
  const CsrGraph csr = CsrGraph::FromGraph(g);
  const PageRankResult exact = PageRank(csr);
  CsrGraph::Index hub;
  ASSERT_TRUE(csr.IndexOf(0, &hub));
  EXPECT_NEAR(ranks.at(0), exact.ranks[hub], 1e-9);
}

TEST(OfflineConnectorTest, NoResultBeforeFirstEpoch) {
  Simulator sim;
  OfflineConnectorOptions options;
  options.epoch = Duration::FromSeconds(100.0);
  OfflineSnapshotConnector connector(&sim, options);
  connector.Ingest(Event::AddVertex(1));
  sim.RunUntil(Timestamp::FromSeconds(1.0));
  EXPECT_TRUE(connector.CurrentRanks().empty());
  EXPECT_GT(connector.ResultAge().seconds(), 1e6);  // "no result" sentinel
}

TEST(OfflineConnectorTest, IngestionStallsBehindRecompute) {
  Simulator sim;
  OfflineConnectorOptions options;
  options.epoch = Duration::FromMillis(10);
  options.compute_cost_per_edge = Duration::FromMillis(10);  // huge
  OfflineSnapshotConnector connector(&sim, options);
  for (const Event& e : StarStream(5)) connector.Ingest(e);
  // Let the epoch fire and the recompute start.
  sim.RunUntil(Timestamp::FromMillis(30));
  const uint64_t applied_before = connector.EventsApplied();
  // New updates queue behind the long recompute.
  connector.Ingest(Event::AddVertex(100));
  sim.RunUntil(Timestamp::FromMillis(40));
  EXPECT_EQ(connector.EventsApplied(), applied_before);
  sim.RunUntilIdle();
  EXPECT_EQ(connector.EventsApplied(), applied_before + 1);
}

TEST(HybridConnectorTest, IngestionUnaffectedByRecompute) {
  Simulator sim;
  HybridConnectorOptions options;
  options.epoch = Duration::FromMillis(10);
  options.compute_cost_per_edge = Duration::FromMillis(10);  // huge
  HybridConnector connector(&sim, options);
  for (const Event& e : StarStream(5)) connector.Ingest(e);
  sim.RunUntil(Timestamp::FromMillis(30));  // recompute in flight
  const uint64_t applied_before = connector.EventsApplied();
  connector.Ingest(Event::AddVertex(100));
  sim.RunUntil(Timestamp::FromMillis(40));
  // The updater process applies it immediately despite the recompute.
  EXPECT_EQ(connector.EventsApplied(), applied_before + 1);
  sim.RunUntilIdle();
  EXPECT_TRUE(connector.Idle());
}

TEST(HybridConnectorTest, PublishesSnapshotsWithAge) {
  Simulator sim;
  HybridConnectorOptions options;
  options.epoch = Duration::FromMillis(50);
  HybridConnector connector(&sim, options);
  for (const Event& e : StarStream(15)) connector.Ingest(e);
  sim.RunUntilIdle();
  ASSERT_GE(connector.recomputes_completed(), 1u);
  EXPECT_FALSE(connector.CurrentRanks().empty());
  EXPECT_LT(connector.ResultAge().seconds(), 10.0);
}

TEST(OnlineConnectorTest, RanksMatchEngine) {
  Simulator sim;
  ChronoLiteOptions options;
  options.rank.push_threshold = 1e-5;
  OnlineConnector connector(&sim, options);
  for (const Event& e : StarStream(12)) connector.Ingest(e);
  sim.RunUntilIdle();
  EXPECT_TRUE(connector.Idle());
  EXPECT_EQ(connector.EventsApplied(), 25u);
  const auto ranks = connector.CurrentRanks();
  ASSERT_EQ(ranks.size(), 13u);
  double sum = 0.0;
  for (const auto& [v, r] : ranks) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Hub outranks every leaf.
  for (VertexId v = 1; v <= 12; ++v) {
    EXPECT_GT(ranks.at(0), ranks.at(v));
  }
  EXPECT_EQ(connector.ResultAge(), Duration::Zero());
}

}  // namespace
}  // namespace graphtides
