#include "analysis/ascii_chart.h"

#include <gtest/gtest.h>

namespace graphtides {
namespace {

// The block glyphs are 3-byte UTF-8 sequences.
size_t GlyphCount(const std::string& s) { return s.size() / 3; }

TEST(SparklineTest, EmptyInput) {
  EXPECT_EQ(RenderSparkline({}), "");
}

TEST(SparklineTest, OneGlyphPerValue) {
  const std::string s = RenderSparkline({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(GlyphCount(s), 4u);
}

TEST(SparklineTest, MonotoneSeriesEndsAtExtremes) {
  const std::string s = RenderSparkline({0, 1, 2, 3, 4, 5, 6, 7});
  // First glyph is the lowest block, last is the full block.
  EXPECT_EQ(s.substr(0, 3), "▁");
  EXPECT_EQ(s.substr(s.size() - 3), "█");
}

TEST(SparklineTest, ConstantSeriesIsFlat) {
  const std::string s = RenderSparkline({5.0, 5.0, 5.0});
  EXPECT_EQ(s, "▁▁▁");
}

TEST(SparklineTest, DownsamplesToWidth) {
  std::vector<double> values(1000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);
  }
  const std::string s = RenderSparkline(values, 50);
  EXPECT_EQ(GlyphCount(s), 50u);
}

TEST(SparklineTest, NegativeValuesUseOwnRange) {
  const std::string s = RenderSparkline({-10.0, 0.0, 10.0});
  EXPECT_EQ(GlyphCount(s), 3u);
  EXPECT_EQ(s.substr(0, 3), "▁");
  EXPECT_EQ(s.substr(6, 3), "█");
}

TEST(StackedChartTest, RowsAlignedWithLabelsAndRanges) {
  const std::string chart = RenderStackedChart(
      {{"rate", {1, 2, 3}}, {"queue length", {100, 50, 0}}}, 40);
  // Two lines.
  EXPECT_EQ(std::count(chart.begin(), chart.end(), '\n'), 2);
  EXPECT_NE(chart.find("rate"), std::string::npos);
  EXPECT_NE(chart.find("queue length"), std::string::npos);
  EXPECT_NE(chart.find("[1 .. 3]"), std::string::npos);
  EXPECT_NE(chart.find("[0 .. 100]"), std::string::npos);
  // Sparklines of equal length start at the same column.
  const size_t line_break = chart.find('\n');
  const std::string line1 = chart.substr(0, line_break);
  EXPECT_NE(line1.find("▁"), std::string::npos);
}

TEST(StackedChartTest, EmptySeriesHandled) {
  const std::string chart = RenderStackedChart({{"nothing", {}}}, 40);
  EXPECT_NE(chart.find("nothing"), std::string::npos);
}

}  // namespace
}  // namespace graphtides
