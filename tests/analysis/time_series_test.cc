#include "analysis/time_series.h"

#include <gtest/gtest.h>

#include <cmath>

namespace graphtides {
namespace {

TEST(TimeSeriesTest, EmptySeries) {
  TimeSeries series("x");
  EXPECT_TRUE(series.empty());
  EXPECT_EQ(series.name(), "x");
  EXPECT_EQ(series.ValueStats().count(), 0u);
}

TEST(TimeSeriesTest, UnorderedSamplesSorted) {
  TimeSeries series;
  series.Add(Timestamp::FromMillis(30), 3.0);
  series.Add(Timestamp::FromMillis(10), 1.0);
  series.Add(Timestamp::FromMillis(20), 2.0);
  const auto& points = series.points();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].value, 1.0);
  EXPECT_DOUBLE_EQ(points[1].value, 2.0);
  EXPECT_DOUBLE_EQ(points[2].value, 3.0);
  EXPECT_EQ(series.start().millis(), 10);
  EXPECT_EQ(series.end().millis(), 30);
}

TEST(TimeSeriesTest, ValueStats) {
  TimeSeries series;
  for (int i = 1; i <= 4; ++i) {
    series.Add(Timestamp::FromMillis(i), static_cast<double>(i));
  }
  const RunningStats stats = series.ValueStats();
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
}

TEST(TimeSeriesTest, ResampleMeanAveragesBins) {
  TimeSeries series;
  // Two samples in bin 0, one in bin 1, none in bin 2.
  series.Add(Timestamp::FromMillis(100), 10.0);
  series.Add(Timestamp::FromMillis(900), 20.0);
  series.Add(Timestamp::FromMillis(1500), 5.0);
  const auto bins =
      series.ResampleMean(Timestamp(), Timestamp::FromSeconds(3.0),
                          Duration::FromSeconds(1.0), -1.0);
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_DOUBLE_EQ(bins[0], 15.0);
  EXPECT_DOUBLE_EQ(bins[1], 5.0);
  EXPECT_DOUBLE_EQ(bins[2], -1.0);  // fill
}

TEST(TimeSeriesTest, ResampleSumAddsBins) {
  TimeSeries series;
  series.Add(Timestamp::FromMillis(100), 1.0);
  series.Add(Timestamp::FromMillis(200), 1.0);
  series.Add(Timestamp::FromMillis(1200), 1.0);
  const auto bins = series.ResampleSum(
      Timestamp(), Timestamp::FromSeconds(2.0), Duration::FromSeconds(1.0));
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_DOUBLE_EQ(bins[0], 2.0);
  EXPECT_DOUBLE_EQ(bins[1], 1.0);
}

TEST(TimeSeriesTest, ResampleExcludesOutOfRange) {
  TimeSeries series;
  series.Add(Timestamp::FromMillis(-500), 100.0);
  series.Add(Timestamp::FromMillis(500), 1.0);
  series.Add(Timestamp::FromMillis(5000), 100.0);
  const auto bins = series.ResampleSum(
      Timestamp(), Timestamp::FromSeconds(1.0), Duration::FromSeconds(1.0));
  ASSERT_EQ(bins.size(), 1u);
  EXPECT_DOUBLE_EQ(bins[0], 1.0);
}

TEST(TimeSeriesTest, ResampleDegenerateRanges) {
  TimeSeries series;
  series.Add(Timestamp::FromMillis(1), 1.0);
  EXPECT_TRUE(series
                  .ResampleMean(Timestamp::FromSeconds(5.0),
                                Timestamp::FromSeconds(1.0),
                                Duration::FromSeconds(1.0))
                  .empty());
  EXPECT_TRUE(series
                  .ResampleMean(Timestamp(), Timestamp::FromSeconds(1.0),
                                Duration::Zero())
                  .empty());
}

TEST(PearsonCorrelationTest, PerfectCorrelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(PearsonCorrelationTest, DegenerateInputs) {
  EXPECT_EQ(PearsonCorrelation({}, {}), 0.0);
  EXPECT_EQ(PearsonCorrelation({1.0}, {2.0}), 0.0);
  // Constant series has zero variance.
  EXPECT_EQ(PearsonCorrelation({5, 5, 5}, {1, 2, 3}), 0.0);
}

TEST(PearsonCorrelationTest, UncorrelatedNearZero) {
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 1000; ++i) {
    a.push_back(std::sin(i * 0.7));
    b.push_back(std::cos(i * 1.3 + 0.5));
  }
  EXPECT_LT(std::abs(PearsonCorrelation(a, b)), 0.1);
}

TEST(CrossCorrelationTest, RecoverssKnownLag) {
  // b is a copy of a delayed by 5 bins.
  std::vector<double> a;
  for (int i = 0; i < 200; ++i) a.push_back(std::sin(i * 0.3));
  std::vector<double> b(a.size(), 0.0);
  for (size_t i = 5; i < b.size(); ++i) b[i] = a[i - 5];
  double correlation = 0.0;
  const int lag = BestCrossCorrelationLag(a, b, 10, &correlation);
  EXPECT_EQ(lag, 5);
  EXPECT_GT(correlation, 0.95);
}

TEST(CrossCorrelationTest, NegativeLagDetected) {
  std::vector<double> a;
  for (int i = 0; i < 200; ++i) a.push_back(std::sin(i * 0.3));
  std::vector<double> b(a.size(), 0.0);
  // b leads a by 3: b[i] = a[i + 3] -> best lag -3.
  for (size_t i = 0; i + 3 < a.size(); ++i) b[i] = a[i + 3];
  double correlation = 0.0;
  const int lag = BestCrossCorrelationLag(a, b, 10, &correlation);
  EXPECT_EQ(lag, -3);
}

TEST(CrossCorrelationTest, AtLagZeroIsPearson) {
  const std::vector<double> a = {1, 3, 2, 5, 4};
  const std::vector<double> b = {2, 6, 4, 10, 8};
  EXPECT_NEAR(CrossCorrelationAtLag(a, b, 0), PearsonCorrelation(a, b),
              1e-12);
}

}  // namespace
}  // namespace graphtides
