#include "analysis/trend.h"

#include <gtest/gtest.h>

namespace graphtides {
namespace {

TrendDetectorOptions DefaultOptions() {
  TrendDetectorOptions options;
  options.window = Duration::FromSeconds(10.0);
  options.growth_factor = 3.0;
  options.min_count = 5;
  return options;
}

TEST(TrendDetectorTest, EmptyDetector) {
  TrendDetector detector(DefaultOptions());
  EXPECT_TRUE(detector.TrendingAt(Timestamp::FromSeconds(100.0)).empty());
  EXPECT_EQ(detector.tracked_keys(), 0u);
}

TEST(TrendDetectorTest, SuddenBurstIsTrending) {
  TrendDetector detector(DefaultOptions());
  // Key 7: nothing before t=20, then 10 observations in [20, 25].
  for (int i = 0; i < 10; ++i) {
    detector.Observe(7, Timestamp::FromSeconds(20.0 + i * 0.5));
  }
  const auto trends = detector.TrendingAt(Timestamp::FromSeconds(26.0));
  ASSERT_EQ(trends.size(), 1u);
  EXPECT_EQ(trends[0].key, 7u);
  EXPECT_EQ(trends[0].current_count, 10u);
  EXPECT_EQ(trends[0].previous_count, 0u);
}

TEST(TrendDetectorTest, SteadyActivityNotTrending) {
  TrendDetector detector(DefaultOptions());
  // One observation per second for 40 s: current ~= previous.
  for (int i = 0; i < 40; ++i) {
    detector.Observe(1, Timestamp::FromSeconds(i));
  }
  EXPECT_TRUE(detector.TrendingAt(Timestamp::FromSeconds(40.0)).empty());
}

TEST(TrendDetectorTest, GrowthFactorBoundary) {
  TrendDetector detector(DefaultOptions());
  // Previous window [0,10): 2 observations; current [10,20): 6 = 3x.
  detector.Observe(1, Timestamp::FromSeconds(1.0));
  detector.Observe(1, Timestamp::FromSeconds(2.0));
  for (int i = 0; i < 6; ++i) {
    detector.Observe(1, Timestamp::FromSeconds(11.0 + i));
  }
  const auto trends = detector.TrendingAt(Timestamp::FromSeconds(20.0));
  ASSERT_EQ(trends.size(), 1u);
  EXPECT_DOUBLE_EQ(trends[0].growth, 3.0);
}

TEST(TrendDetectorTest, MinCountFiltersNoise) {
  TrendDetector detector(DefaultOptions());
  // 3 observations from nothing: big relative growth, too few to matter.
  for (int i = 0; i < 3; ++i) {
    detector.Observe(9, Timestamp::FromSeconds(15.0 + i));
  }
  EXPECT_TRUE(detector.TrendingAt(Timestamp::FromSeconds(19.0)).empty());
}

TEST(TrendDetectorTest, SortedByGrowthDescending) {
  TrendDetector detector(DefaultOptions());
  // Key 1: 0 -> 20; key 2: 5 -> 15 (growth 3).
  for (int i = 0; i < 20; ++i) {
    detector.Observe(1, Timestamp::FromSeconds(12.0 + i * 0.2));
  }
  for (int i = 0; i < 5; ++i) {
    detector.Observe(2, Timestamp::FromSeconds(1.0 + i));
  }
  for (int i = 0; i < 15; ++i) {
    detector.Observe(2, Timestamp::FromSeconds(11.0 + i * 0.5));
  }
  const auto trends = detector.TrendingAt(Timestamp::FromSeconds(20.0));
  ASSERT_EQ(trends.size(), 2u);
  EXPECT_EQ(trends[0].key, 1u);  // infinite-ish growth first
  EXPECT_EQ(trends[1].key, 2u);
}

TEST(TrendDetectorTest, OldObservationsAgeOut) {
  TrendDetector detector(DefaultOptions());
  for (int i = 0; i < 10; ++i) {
    detector.Observe(3, Timestamp::FromSeconds(i * 0.5));
  }
  // Observing later prunes; at t=100 nothing recent remains.
  detector.Observe(3, Timestamp::FromSeconds(100.0));
  const auto trends = detector.TrendingAt(Timestamp::FromSeconds(100.0));
  EXPECT_TRUE(trends.empty());
}

TEST(TrendDetectorTest, FutureObservationsExcluded) {
  TrendDetector detector(DefaultOptions());
  for (int i = 0; i < 10; ++i) {
    detector.Observe(4, Timestamp::FromSeconds(50.0 + i * 0.1));
  }
  // Query earlier than the observations: nothing counts yet.
  EXPECT_TRUE(detector.TrendingAt(Timestamp::FromSeconds(40.0)).empty());
}

}  // namespace
}  // namespace graphtides
