#include "faults/chaos_sink.h"

#include <gtest/gtest.h>

#include <vector>

#include "stream/event.h"

namespace graphtides {
namespace {

// Sink that counts deliveries (ChaosSink's inner).
class CountingSink final : public EventSink {
 public:
  Status Deliver(const Event&) override {
    ++delivered;
    return Status::OK();
  }
  Status Finish() override {
    finished = true;
    return Status::OK();
  }
  uint64_t delivered = 0;
  bool finished = false;
};

ChaosStats RunChaos(const ChaosOptions& options, size_t attempts,
                    uint64_t* delivered = nullptr) {
  CountingSink inner;
  ChaosSink chaos(&inner, options);
  chaos.set_sleep_fn([](Duration) {});
  const Event event = Event::AddVertex(1);
  for (size_t i = 0; i < attempts; ++i) (void)chaos.Deliver(event);
  if (delivered != nullptr) *delivered = inner.delivered;
  return chaos.stats();
}

TEST(ChaosSinkTest, NoFaultsConfiguredForwardsEverything) {
  uint64_t delivered = 0;
  const ChaosStats stats = RunChaos(ChaosOptions{}, 1000, &delivered);
  EXPECT_EQ(stats.attempts, 1000u);
  EXPECT_EQ(stats.forwarded, 1000u);
  EXPECT_EQ(delivered, 1000u);
  EXPECT_EQ(stats.injected_failures, 0u);
  EXPECT_EQ(stats.injected_disconnects, 0u);
  EXPECT_EQ(stats.stalls, 0u);
}

TEST(ChaosSinkTest, ScheduleIsDeterministicInSeed) {
  ChaosOptions options;
  options.seed = 42;
  options.fail_probability = 0.05;
  options.stall_probability = 0.02;
  options.latency_probability = 0.1;
  options.stall = Duration::FromMicros(1);
  options.latency = Duration::FromMicros(1);

  const ChaosStats a = RunChaos(options, 5000);
  const ChaosStats b = RunChaos(options, 5000);
  EXPECT_EQ(a.injected_failures, b.injected_failures);
  EXPECT_EQ(a.stalls, b.stalls);
  EXPECT_EQ(a.latency_spikes, b.latency_spikes);
  EXPECT_EQ(a.forwarded, b.forwarded);

  options.seed = 43;
  const ChaosStats c = RunChaos(options, 5000);
  EXPECT_NE(a.injected_failures, c.injected_failures);
}

TEST(ChaosSinkTest, FailureRateIsApproximatelyHonored) {
  ChaosOptions options;
  options.seed = 7;
  options.fail_probability = 0.1;
  const ChaosStats stats = RunChaos(options, 20000);
  // 10% of 20k = 2000; a seeded PRNG should land well within ±20%.
  EXPECT_GT(stats.injected_failures, 1600u);
  EXPECT_LT(stats.injected_failures, 2400u);
  EXPECT_EQ(stats.forwarded + stats.injected_failures, stats.attempts);
}

TEST(ChaosSinkTest, InjectedFailureIsUnavailableAndNotForwarded) {
  CountingSink inner;
  ChaosOptions options;
  options.fail_points = {1};
  ChaosSink chaos(&inner, options);
  EXPECT_TRUE(chaos.Deliver(Event::AddVertex(1)).ok());
  const Status st = chaos.Deliver(Event::AddVertex(2));
  EXPECT_TRUE(st.IsUnavailable()) << st.ToString();
  EXPECT_TRUE(chaos.Deliver(Event::AddVertex(3)).ok());
  EXPECT_EQ(inner.delivered, 2u);
  EXPECT_EQ(chaos.stats().injected_failures, 1u);
}

TEST(ChaosSinkTest, DisconnectInvokesHookAndReturnsIoError) {
  CountingSink inner;
  ChaosOptions options;
  options.seed = 3;
  options.disconnect_probability = 0.05;
  int severed = 0;
  ChaosSink chaos(&inner, options, [&] { ++severed; });
  Status last = Status::OK();
  for (int i = 0; i < 2000; ++i) {
    Status st = chaos.Deliver(Event::AddVertex(1));
    if (!st.ok()) last = st;
  }
  const ChaosStats& stats = chaos.stats();
  EXPECT_GT(stats.injected_disconnects, 0u);
  EXPECT_EQ(static_cast<uint64_t>(severed), stats.injected_disconnects);
  EXPECT_TRUE(last.IsIoError()) << last.ToString();
}

TEST(ChaosSinkTest, StallsSleepAndAccountStallTime) {
  CountingSink inner;
  ChaosOptions options;
  options.seed = 11;
  options.stall_probability = 0.1;
  options.stall = Duration::FromMillis(5);
  ChaosSink chaos(&inner, options);
  Duration slept;
  chaos.set_sleep_fn([&](Duration d) { slept = slept + d; });
  for (int i = 0; i < 1000; ++i) (void)chaos.Deliver(Event::AddVertex(1));
  const ChaosStats& stats = chaos.stats();
  EXPECT_GT(stats.stalls, 0u);
  EXPECT_EQ(stats.stall_time.nanos(), slept.nanos());
  EXPECT_EQ(stats.stall_time.nanos(),
            static_cast<int64_t>(stats.stalls) *
                Duration::FromMillis(5).nanos());
}

TEST(ChaosSinkTest, TelemetryMergesInnerAndOwnCounters) {
  ChaosOptions options;
  options.fail_points = {0, 2, 4};
  CountingSink inner;
  ChaosSink chaos(&inner, options);
  for (int i = 0; i < 6; ++i) (void)chaos.Deliver(Event::AddVertex(1));
  const SinkTelemetry t = chaos.Telemetry();
  EXPECT_EQ(t.injected_failures, 3u);
  EXPECT_EQ(t.injected_disconnects, 0u);
}

TEST(ChaosSinkTest, FinishForwardsToInner) {
  CountingSink inner;
  ChaosSink chaos(&inner, ChaosOptions{});
  EXPECT_TRUE(chaos.Finish().ok());
  EXPECT_TRUE(inner.finished);
}

}  // namespace
}  // namespace graphtides
