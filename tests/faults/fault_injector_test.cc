#include "faults/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "generator/models/event_mix_model.h"
#include "generator/stream_generator.h"
#include "stream/validator.h"

namespace graphtides {
namespace {

std::vector<Event> VertexStream(size_t n) {
  std::vector<Event> events;
  for (VertexId v = 0; v < n; ++v) events.push_back(Event::AddVertex(v));
  return events;
}

TEST(FaultInjectorTest, NoFaultsIsIdentity) {
  const auto events = VertexStream(100);
  FaultReport report;
  const auto out = InjectFaults(events, FaultOptions{}, &report);
  EXPECT_EQ(out, events);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.duplicated, 0u);
  EXPECT_EQ(report.displaced, 0u);
}

TEST(FaultInjectorTest, DropsApproximatelyConfiguredFraction) {
  const auto events = VertexStream(10000);
  FaultOptions options;
  options.drop_probability = 0.1;
  options.seed = 3;
  FaultReport report;
  const auto out = InjectFaults(events, options, &report);
  EXPECT_NEAR(static_cast<double>(report.dropped) / 10000.0, 0.1, 0.02);
  EXPECT_EQ(out.size(), 10000u - report.dropped);
}

TEST(FaultInjectorTest, DuplicatesBackToBack) {
  const auto events = VertexStream(5000);
  FaultOptions options;
  options.duplicate_probability = 0.2;
  options.seed = 5;
  FaultReport report;
  const auto out = InjectFaults(events, options, &report);
  EXPECT_NEAR(static_cast<double>(report.duplicated) / 5000.0, 0.2, 0.03);
  EXPECT_EQ(out.size(), 5000u + report.duplicated);
  // Find at least one adjacent duplicate pair.
  bool found_pair = false;
  for (size_t i = 0; i + 1 < out.size(); ++i) {
    if (out[i] == out[i + 1]) {
      found_pair = true;
      break;
    }
  }
  EXPECT_TRUE(found_pair);
}

TEST(FaultInjectorTest, ReorderPreservesMultiset) {
  const auto events = VertexStream(2000);
  FaultOptions options;
  options.reorder_probability = 0.3;
  options.reorder_window = 10;
  options.seed = 7;
  FaultReport report;
  const auto out = InjectFaults(events, options, &report);
  EXPECT_EQ(out.size(), events.size());
  EXPECT_GT(report.displaced, 300u);
  // Same multiset of vertex ids.
  std::vector<VertexId> in_ids;
  std::vector<VertexId> out_ids;
  for (const Event& e : events) in_ids.push_back(e.vertex);
  for (const Event& e : out) out_ids.push_back(e.vertex);
  std::sort(in_ids.begin(), in_ids.end());
  std::sort(out_ids.begin(), out_ids.end());
  EXPECT_EQ(in_ids, out_ids);
  // And the order actually changed somewhere.
  bool changed = false;
  for (size_t i = 0; i < out.size(); ++i) {
    if (!(out[i] == events[i])) {
      changed = true;
      break;
    }
  }
  EXPECT_TRUE(changed);
}

TEST(FaultInjectorTest, DisplacementBounded) {
  const auto events = VertexStream(1000);
  FaultOptions options;
  options.reorder_probability = 0.5;
  options.reorder_window = 4;
  options.seed = 9;
  const auto out = InjectFaults(events, options, nullptr);
  // An event originally at position i (vertex id == i) may move at most
  // window positions forward, and can slip earlier only by the number of
  // displaced predecessors; bound loosely by the window both ways.
  for (size_t i = 0; i < out.size(); ++i) {
    const double displacement =
        std::abs(static_cast<double>(out[i].vertex) - static_cast<double>(i));
    EXPECT_LE(displacement, 8.0) << "at position " << i;
  }
}

TEST(FaultInjectorTest, DeterministicInSeed) {
  const auto events = VertexStream(1000);
  FaultOptions options;
  options.drop_probability = 0.05;
  options.duplicate_probability = 0.05;
  options.reorder_probability = 0.1;
  options.seed = 42;
  const auto a = InjectFaults(events, options, nullptr);
  const auto b = InjectFaults(events, options, nullptr);
  EXPECT_EQ(a, b);
  options.seed = 43;
  const auto c = InjectFaults(events, options, nullptr);
  EXPECT_NE(a, c);
}

TEST(FaultInjectorTest, ProtectsMarkersAndControls) {
  std::vector<Event> events;
  for (int i = 0; i < 500; ++i) {
    events.push_back(Event::AddVertex(static_cast<VertexId>(i)));
    events.push_back(Event::Marker("M" + std::to_string(i)));
    events.push_back(Event::SetRate(2.0));
  }
  FaultOptions options;
  options.drop_probability = 0.5;
  options.duplicate_probability = 0.3;
  options.reorder_probability = 0.3;
  options.seed = 11;
  const auto out = InjectFaults(events, options, nullptr);
  size_t markers = 0;
  size_t controls = 0;
  for (const Event& e : out) {
    if (e.type == EventType::kMarker) ++markers;
    if (IsControl(e.type)) ++controls;
  }
  EXPECT_EQ(markers, 500u);
  EXPECT_EQ(controls, 500u);
}

TEST(FaultInjectorTest, UnprotectedModeFaultsEverything) {
  std::vector<Event> events;
  for (int i = 0; i < 2000; ++i) events.push_back(Event::Marker("M"));
  FaultOptions options;
  options.drop_probability = 0.5;
  options.protect_non_graph_events = false;
  options.seed = 13;
  FaultReport report;
  const auto out = InjectFaults(events, options, &report);
  EXPECT_GT(report.dropped, 800u);
  EXPECT_LT(out.size(), events.size());
}

TEST(FaultInjectorTest, FaultyStreamViolatesPreconditions) {
  // The §3.2 argument: loss/reorder produce inconsistent topologies that
  // fail precondition checks downstream.
  EventMixModelOptions model_options;
  model_options.ba = {200, 10, 3};
  EventMixModel model(model_options);
  StreamGeneratorOptions gen_options;
  gen_options.rounds = 2000;
  gen_options.seed = 5;
  auto stream = StreamGenerator(&model, gen_options).Generate();
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(ValidateStream(stream->events).valid());

  FaultOptions options;
  options.drop_probability = 0.05;
  options.seed = 17;
  const auto faulty = InjectFaults(stream->events, options, nullptr);
  const StreamValidationReport report = ValidateStream(faulty);
  EXPECT_FALSE(report.valid());
  EXPECT_GT(report.violations.size(), 10u);
}

TEST(FaultInjectorTest, CombinedFaultsReconcileExactly) {
  // Drop + duplicate + reorder on the same stream: the counters must
  // reconcile exactly with the output size, and the surviving multiset is
  // input minus drops plus duplicates.
  const auto events = VertexStream(5000);
  FaultOptions options;
  options.drop_probability = 0.05;
  options.duplicate_probability = 0.08;
  options.reorder_probability = 0.15;
  options.reorder_window = 12;
  options.seed = 31;
  FaultReport report;
  const auto out = InjectFaults(events, options, &report);

  EXPECT_EQ(report.input_events, 5000u);
  EXPECT_EQ(report.output_events, out.size());
  EXPECT_EQ(out.size(), 5000u - report.dropped + report.duplicated);
  EXPECT_GT(report.dropped, 0u);
  EXPECT_GT(report.duplicated, 0u);
  EXPECT_GT(report.displaced, 0u);

  // Multiset check: every surviving id appears once, plus once more per
  // duplication; dropped ids are absent.
  std::map<VertexId, size_t> counts;
  for (const Event& e : out) ++counts[e.vertex];
  size_t singles = 0;
  size_t doubles = 0;
  for (const auto& [id, n] : counts) {
    ASSERT_LE(n, 2u) << "vertex " << id;
    if (n == 1) ++singles;
    if (n == 2) ++doubles;
  }
  EXPECT_EQ(doubles, report.duplicated);
  EXPECT_EQ(singles + doubles, 5000u - report.dropped);
}

TEST(FaultInjectorTest, ReorderWindowLargerThanStream) {
  const auto events = VertexStream(50);
  FaultOptions options;
  options.reorder_probability = 1.0;  // displace everything
  options.reorder_window = 1000;      // far beyond the stream length
  options.seed = 37;
  FaultReport report;
  const auto out = InjectFaults(events, options, &report);

  // Nothing is lost or duplicated, everything was displaced.
  EXPECT_EQ(out.size(), 50u);
  EXPECT_EQ(report.displaced, 50u);
  std::vector<VertexId> ids;
  for (const Event& e : out) ids.push_back(e.vertex);
  std::sort(ids.begin(), ids.end());
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ(ids[i], i);
}

TEST(FaultInjectorTest, UnprotectedCombinedFaultsOnMixedStream) {
  // protect_non_graph_events=false over a stream interleaving graph ops,
  // markers, and controls: non-graph events are degraded like the rest and
  // the counters still reconcile exactly.
  std::vector<Event> events;
  for (int i = 0; i < 1000; ++i) {
    events.push_back(Event::AddVertex(static_cast<VertexId>(i)));
    events.push_back(Event::Marker("M" + std::to_string(i)));
    events.push_back(Event::SetRate(1.5));
  }
  FaultOptions options;
  options.drop_probability = 0.2;
  options.duplicate_probability = 0.1;
  options.reorder_probability = 0.1;
  options.reorder_window = 6;
  options.protect_non_graph_events = false;
  options.seed = 41;
  FaultReport report;
  const auto out = InjectFaults(events, options, &report);

  EXPECT_EQ(report.input_events, 3000u);
  EXPECT_EQ(report.output_events, out.size());
  EXPECT_EQ(out.size(), 3000u - report.dropped + report.duplicated);

  // Markers were not spared this time.
  size_t markers = 0;
  for (const Event& e : out) {
    if (e.type == EventType::kMarker) ++markers;
  }
  EXPECT_LT(markers, 1000u);
  EXPECT_GT(markers, 500u);  // ~20% drop rate, not a wipeout
}

TEST(ShuffleWindowTest, OnlyWindowAffected) {
  auto events = VertexStream(100);
  Rng rng(19);
  const auto out = ShuffleWindow(events, 20, 40, rng);
  for (size_t i = 0; i < 20; ++i) EXPECT_EQ(out[i].vertex, i);
  for (size_t i = 40; i < 100; ++i) EXPECT_EQ(out[i].vertex, i);
  // The window retains the same ids (shuffled).
  std::vector<VertexId> window_ids;
  for (size_t i = 20; i < 40; ++i) window_ids.push_back(out[i].vertex);
  std::sort(window_ids.begin(), window_ids.end());
  for (size_t i = 0; i < 20; ++i) EXPECT_EQ(window_ids[i], 20 + i);
}

TEST(ShuffleWindowTest, DegenerateRanges) {
  auto events = VertexStream(10);
  Rng rng(23);
  // begin >= end, or out-of-range indices clamp gracefully.
  EXPECT_EQ(ShuffleWindow(events, 5, 5, rng).size(), 10u);
  EXPECT_EQ(ShuffleWindow(events, 8, 3, rng).size(), 10u);
  const auto out = ShuffleWindow(events, 5, 500, rng);
  EXPECT_EQ(out.size(), 10u);
}

}  // namespace
}  // namespace graphtides
