// Corruption fuzzing for the control-plane frame decoder (mirrors
// checkpoint_fuzz_test): any truncation is "need more bytes" until the
// stream ends — then a clean ParseError via Finish(); any bit flip
// anywhere in a frame surfaces as a ParseError (bad header field, bad
// length, or CRC mismatch), never as a hang, a crash, an over-allocation,
// or a silently different frame.
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/random.h"
#include "distributed/protocol.h"

namespace graphtides {
namespace {

void AppendU32Le(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

Frame SampleFrame() {
  Frame frame(FrameType::kDrain);
  frame.Set("worker", "w0");
  frame.Set("range", "2-4");
  frame.SetU64("events", 123456789);
  frame.SetU64("markers", 42);
  frame.SetDouble("lag_p99_ms", 1.25);
  return frame;
}

std::string Encoded(const Frame& frame) {
  auto encoded = EncodeFrame(frame);
  EXPECT_TRUE(encoded.ok()) << encoded.status().ToString();
  return encoded.ok() ? *encoded : std::string();
}

/// Drives a decoder over `bytes` to completion. Returns the decoded
/// frames; *clean_eos reports whether the stream ended without any error
/// (decode error or EOF-mid-frame).
std::vector<Frame> DecodeAll(const std::string& bytes, bool* clean_eos) {
  FrameDecoder decoder;
  decoder.Feed(bytes);
  std::vector<Frame> frames;
  *clean_eos = true;
  while (true) {
    auto next = decoder.Next();
    if (!next.ok()) {
      *clean_eos = false;
      return frames;
    }
    if (!next->has_value()) break;
    frames.push_back(std::move(**next));
  }
  if (!decoder.Finish().ok()) *clean_eos = false;
  return frames;
}

TEST(ProtocolFuzzTest, TruncationAtEveryByteOffsetIsCleanlyRejected) {
  const std::string wire = Encoded(SampleFrame());
  ASSERT_GT(wire.size(), kFrameHeaderBytes + kFrameTrailerBytes);
  for (size_t len = 1; len < wire.size(); ++len) {
    bool clean_eos = true;
    const auto frames = DecodeAll(wire.substr(0, len), &clean_eos);
    EXPECT_TRUE(frames.empty()) << "prefix of " << len << " bytes decoded";
    EXPECT_FALSE(clean_eos) << "prefix of " << len
                            << " bytes ended without a protocol error";
  }
  // Sanity: the untruncated frame still decodes, with a clean stream end.
  bool clean_eos = false;
  const auto frames = DecodeAll(wire, &clean_eos);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(clean_eos);
  EXPECT_EQ(frames[0], SampleFrame());
}

TEST(ProtocolFuzzTest, EverySingleBitFlipIsRejected) {
  const std::string wire = Encoded(SampleFrame());
  for (size_t i = 0; i < wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = wire;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      bool clean_eos = true;
      const auto frames = DecodeAll(flipped, &clean_eos);
      EXPECT_TRUE(frames.empty())
          << "flip of bit " << bit << " at offset " << i << " decoded";
      EXPECT_FALSE(clean_eos)
          << "flip of bit " << bit << " at offset " << i << " went unnoticed";
    }
  }
}

TEST(ProtocolFuzzTest, BitFlipInSecondFrameStillDeliversTheFirst) {
  Frame first(FrameType::kHello);
  first.Set("worker", "w0");
  const std::string head = Encoded(first);
  const std::string tail = Encoded(SampleFrame());
  // Flip a payload byte of the second frame: framing of the first is
  // intact, so it must decode before the error surfaces.
  std::string wire = head + tail;
  wire[head.size() + kFrameHeaderBytes + 2] ^= 0x10;

  bool clean_eos = true;
  const auto frames = DecodeAll(wire, &clean_eos);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], first);
  EXPECT_FALSE(clean_eos);
}

TEST(ProtocolFuzzTest, HugeClaimedLengthIsRejectedWithoutWaiting) {
  // A corrupt length field far beyond the cap must fail immediately — the
  // decoder may not buffer toward an absurd target.
  std::string header = "GTDP";
  header.push_back(static_cast<char>(kProtocolVersion));
  header.push_back(1);  // kHello
  header.append(2, '\0');
  AppendU32Le(&header, 0xFFFFFFFF);

  FrameDecoder decoder;
  decoder.Feed(header);
  auto next = decoder.Next();
  ASSERT_FALSE(next.ok());
  EXPECT_TRUE(next.status().IsParseError());
  EXPECT_LT(decoder.buffered(), 2 * kMaxFramePayload);
}

TEST(ProtocolFuzzTest, HeaderFieldCorruptionsAreRejected) {
  const std::string wire = Encoded(SampleFrame());
  struct Case {
    const char* name;
    size_t offset;
    char value;
  };
  const Case cases[] = {
      {"bad magic", 0, 'X'},
      {"future version", 4, static_cast<char>(kProtocolVersion + 1)},
      {"zero frame type", 5, 0},
      {"unknown frame type", 5, 99},
      {"nonzero reserved", 6, 1},
      {"nonzero reserved high", 7, static_cast<char>(0x80)},
  };
  for (const Case& c : cases) {
    std::string corrupt = wire;
    corrupt[c.offset] = c.value;
    bool clean_eos = true;
    const auto frames = DecodeAll(corrupt, &clean_eos);
    EXPECT_TRUE(frames.empty()) << c.name << " decoded";
    EXPECT_FALSE(clean_eos) << c.name << " went unnoticed";
  }
}

TEST(ProtocolFuzzTest, RandomGarbageNeverDecodesToAFrame) {
  Rng rng(0xfa22);
  for (int iter = 0; iter < 500; ++iter) {
    const size_t len = rng.NextBounded(256);
    std::string garbage;
    garbage.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    bool clean_eos = true;
    const auto frames = DecodeAll(garbage, &clean_eos);
    EXPECT_TRUE(frames.empty()) << "garbage iter " << iter << " decoded";
    // Either the bytes already failed framing, or they form an incomplete
    // prefix that the stream end then rejects; only an empty input is a
    // clean end of stream.
    if (!garbage.empty()) {
      EXPECT_FALSE(clean_eos) << "garbage iter " << iter << " went unnoticed";
    }
  }
}

TEST(ProtocolFuzzTest, TornFrameFollowedByGarbageStaysPoisoned) {
  const std::string wire = Encoded(SampleFrame());
  FrameDecoder decoder;
  decoder.Feed(wire.substr(0, 3));  // not even a full magic
  decoder.Feed("garbage beyond recovery");
  auto first = decoder.Next();
  ASSERT_FALSE(first.ok());
  // Poisoned: even pristine frames appended afterwards must fail, since
  // frame alignment is unrecoverable on a corrupt stream.
  decoder.Feed(wire);
  auto second = decoder.Next();
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsParseError());
}

TEST(ProtocolFuzzTest, PayloadGrammarViolationsOnTheWireAreRejected) {
  // Hand-craft envelopes around payloads that Encode would never emit; the
  // decoder must reject them (with a correct CRC, so the payload parser —
  // not the checksum — is what catches these).
  const std::string payloads[] = {
      "noequals",    // no '=' separator
      "=value",      // empty key
      "a=1\n\nb=2",  // empty line inside the payload
      "a=1\na=2",    // duplicate key (silent last-wins would corrupt state)
  };
  for (const std::string& payload : payloads) {
    std::string frame = "GTDP";
    frame.push_back(static_cast<char>(kProtocolVersion));
    frame.push_back(3);  // kHeartbeat
    frame.append(2, '\0');
    AppendU32Le(&frame, static_cast<uint32_t>(payload.size()));
    frame += payload;
    AppendU32Le(&frame, Crc32(frame));

    bool clean_eos = true;
    const auto frames = DecodeAll(frame, &clean_eos);
    EXPECT_TRUE(frames.empty()) << "payload '" << payload << "' decoded";
    EXPECT_FALSE(clean_eos) << "payload '" << payload << "' went unnoticed";
  }
}

}  // namespace
}  // namespace graphtides
