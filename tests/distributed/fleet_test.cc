// In-process fleet tests: a Coordinator plus ReplayWorkers running as
// threads over real localhost sockets must reproduce the single-process
// ShardedReplayer's per-lane output byte-for-byte with exactly-once
// accounting — including after a worker vanishes mid-run and its range is
// reassigned to the survivor. (Real SIGKILL drills with separate processes
// live in gt_chaos --workers and CI's distributed-smoke job.)
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "distributed/control_channel.h"
#include "distributed/coordinator.h"
#include "distributed/protocol.h"
#include "distributed/worker.h"
#include "generator/models/social_network_model.h"
#include "generator/stream_generator.h"
#include "replayer/event_sink.h"
#include "replayer/sharded_replayer.h"
#include "stream/stream_file.h"

namespace graphtides {
namespace {

constexpr size_t kTotalShards = 4;

class FleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("gt_fleet_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);

    SocialNetworkModel model;
    StreamGeneratorOptions gen;
    gen.rounds = 1500;
    gen.seed = 21;
    gen.marker_interval = 200;
    auto generated = StreamGenerator(&model, gen).Generate();
    ASSERT_TRUE(generated.ok());
    ASSERT_TRUE(WriteStreamFile(Path("stream.gts"), generated->events).ok());

    // Single-process golden: same shard width, one process, no fleet.
    std::vector<std::FILE*> files;
    std::vector<std::unique_ptr<PipeSink>> sinks;
    std::vector<EventSink*> lanes;
    for (size_t s = 0; s < kTotalShards; ++s) {
      std::FILE* f = std::fopen(GoldenLane(s).c_str(), "wb");
      ASSERT_NE(f, nullptr);
      files.push_back(f);
      sinks.push_back(std::make_unique<PipeSink>(f));
      lanes.push_back(sinks.back().get());
    }
    ShardedReplayerOptions options;
    options.shards = kTotalShards;
    options.total_rate_eps = 1e6;
    ShardedReplayer golden(options);
    auto stats = golden.ReplayFile(Path("stream.gts"), lanes);
    for (std::FILE* f : files) std::fclose(f);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    golden_events_ = stats->aggregate.events_delivered;
    ASSERT_GT(golden_events_, 0u);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::string GoldenLane(size_t s) const {
    return Path("golden.shard" + std::to_string(s));
  }
  std::string FleetLane(size_t s) const {
    return Path("fleet.shard" + std::to_string(s));
  }

  static std::string ReadAll(const std::string& path) {
    std::ifstream file(path, std::ios::binary);
    EXPECT_TRUE(file.good()) << "cannot read " << path;
    return std::string((std::istreambuf_iterator<char>(file)),
                       std::istreambuf_iterator<char>());
  }

  CoordinatorOptions FleetOptions() const {
    CoordinatorOptions options;
    options.stream = Path("stream.gts");
    options.total_shards = kTotalShards;
    options.workers = 2;
    options.rate_eps = 1e6;
    options.checkpoint_prefix = Path("fleet.cp");
    options.checkpoint_every = 200;
    options.out_prefix = Path("fleet");
    options.heartbeat_timeout_ms = 1500;
    return options;
  }

  ReplayWorkerOptions WorkerOptions(uint16_t port,
                                    const std::string& id) const {
    ReplayWorkerOptions options;
    options.coordinator_port = port;
    options.worker_id = id;
    options.heartbeat_interval_ms = 100;
    return options;
  }

  void ExpectFleetMatchesGolden() {
    for (size_t s = 0; s < kTotalShards; ++s) {
      EXPECT_EQ(ReadAll(FleetLane(s)), ReadAll(GoldenLane(s)))
          << "shard " << s << " diverged from the single-process golden";
    }
  }

  std::filesystem::path dir_;
  uint64_t golden_events_ = 0;
};

TEST_F(FleetTest, TwoWorkerFleetMatchesSingleProcessGolden) {
  Coordinator coordinator(FleetOptions());
  auto port = coordinator.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  Result<FleetReport> report = Status::Internal("never ran");
  std::thread coord_thread([&] { report = coordinator.Run(); });
  ReplayWorker w0(WorkerOptions(*port, "w0"));
  ReplayWorker w1(WorkerOptions(*port, "w1"));
  std::thread t0([&] { EXPECT_TRUE(w0.Run().ok()); });
  std::thread t1([&] { EXPECT_TRUE(w1.Run().ok()); });
  t0.join();
  t1.join();
  coord_thread.join();

  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->exactly_once());
  EXPECT_EQ(report->events, golden_events_);
  EXPECT_EQ(report->local_events, golden_events_);
  EXPECT_EQ(report->workers_seen, 2u);
  EXPECT_EQ(report->worker_deaths, 0u);
  EXPECT_GT(report->epochs_released, 0u);
  ExpectFleetMatchesGolden();
}

TEST_F(FleetTest, VanishedWorkerRangeIsReassignedToSurvivor) {
  CoordinatorOptions options = FleetOptions();
  options.heartbeat_timeout_ms = 500;  // detect the ghost quickly
  Coordinator coordinator(options);
  auto port = coordinator.Start();
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  Result<FleetReport> report = Status::Internal("never ran");
  std::thread coord_thread([&] { report = coordinator.Run(); });

  // The survivor runs normally while a "worker" says HELLO, takes its
  // assignment, and dies on the spot: the coordinator must declare the
  // ghost dead and move its range to the survivor, which replays it from
  // scratch (the ghost never wrote a checkpoint).
  ReplayWorker survivor(WorkerOptions(*port, "w0"));
  std::thread t0([&] { EXPECT_TRUE(survivor.Run().ok()); });
  {
    auto ghost = ControlChannel::Dial("127.0.0.1", *port, 2000);
    ASSERT_TRUE(ghost.ok()) << ghost.status().ToString();
    Frame hello(FrameType::kHello);
    hello.Set("worker", "ghost");
    EXPECT_TRUE((*ghost)->Send(hello).ok());
    // Assignment fires once both HELLOs are in; drain frames until the
    // ghost's ASSIGN arrives (it never acts on it).
    bool assigned = false;
    while (!assigned) {
      auto frame = (*ghost)->Receive(5000);
      if (!frame.ok()) break;
      assigned = frame->type == FrameType::kAssign;
    }
    EXPECT_TRUE(assigned) << "ghost never received its assignment";
    (*ghost)->Shutdown();
  }  // connection drops here — the ghost never replays a byte

  t0.join();
  coord_thread.join();

  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->exactly_once());
  EXPECT_EQ(report->events, golden_events_);
  EXPECT_GE(report->worker_deaths, 1u);
  EXPECT_GE(report->reassignments, 1u);
  ExpectFleetMatchesGolden();

  const ReplayWorker::Totals totals = survivor.totals();
  EXPECT_EQ(totals.local_events, golden_events_);
  EXPECT_GE(totals.tasks_started, 2u);
}

}  // namespace
}  // namespace graphtides
