// Round-trip property tests for the control-plane wire protocol: every
// encodable frame must decode bit-exactly regardless of how the bytes are
// chunked, numeric/range/histogram helpers must survive the text trip
// losslessly, and grammar violations must be rejected at encode time (the
// decoder-side robustness contract lives in protocol_fuzz_test).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "distributed/protocol.h"
#include "harness/telemetry/latency_histogram.h"

namespace graphtides {
namespace {

Result<std::optional<Frame>> DecodeOne(const std::string& bytes) {
  FrameDecoder decoder;
  decoder.Feed(bytes);
  return decoder.Next();
}

TEST(ProtocolTest, EveryFrameTypeRoundTrips) {
  const FrameType types[] = {
      FrameType::kHello,         FrameType::kAssign, FrameType::kHeartbeat,
      FrameType::kEpoch,         FrameType::kDrain,  FrameType::kReassign,
      FrameType::kCheckpointAck, FrameType::kError,
  };
  for (FrameType type : types) {
    Frame frame(type);
    frame.Set("worker", "w0");
    frame.Set("range", "0-4");
    frame.SetU64("events", 12345);
    auto encoded = EncodeFrame(frame);
    ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
    auto decoded = DecodeOne(*encoded);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_TRUE(decoded->has_value());
    EXPECT_EQ(**decoded, frame) << FrameTypeName(type);
  }
}

TEST(ProtocolTest, EmptyPayloadRoundTrips) {
  const Frame frame(FrameType::kHeartbeat);
  auto encoded = EncodeFrame(frame);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->size(), kFrameHeaderBytes + kFrameTrailerBytes);
  auto decoded = DecodeOne(*encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->has_value());
  EXPECT_EQ(**decoded, frame);
}

TEST(ProtocolTest, RandomizedFramesRoundTrip) {
  // Values may contain anything but '\n' — including '=' (the parser
  // splits on the first one) and high bytes.
  Rng rng(0x5eed);
  const std::string key_alphabet =
      "abcdefghijklmnopqrstuvwxyz_0123456789-";
  for (int iter = 0; iter < 300; ++iter) {
    Frame frame(static_cast<FrameType>(1 + rng.NextBounded(8)));
    const size_t fields = rng.NextBounded(8);
    for (size_t f = 0; f < fields; ++f) {
      std::string key;
      const size_t key_len = 1 + rng.NextBounded(12);
      for (size_t i = 0; i < key_len; ++i) {
        key.push_back(key_alphabet[rng.NextBounded(key_alphabet.size())]);
      }
      std::string value;
      const size_t value_len = rng.NextBounded(40);
      for (size_t i = 0; i < value_len; ++i) {
        char c;
        do {
          c = static_cast<char>(rng.NextBounded(256));
        } while (c == '\n');
        value.push_back(c);
      }
      frame.Set(key, value);
    }
    auto encoded = EncodeFrame(frame);
    ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
    auto decoded = DecodeOne(*encoded);
    ASSERT_TRUE(decoded.ok())
        << "iter " << iter << ": " << decoded.status().ToString();
    ASSERT_TRUE(decoded->has_value()) << "iter " << iter;
    EXPECT_EQ(**decoded, frame) << "iter " << iter;
  }
}

TEST(ProtocolTest, BackToBackFramesDecodeInOrder) {
  std::vector<Frame> frames;
  std::string wire;
  for (int i = 0; i < 3; ++i) {
    Frame frame(static_cast<FrameType>(i + 1));
    frame.SetU64("seq", static_cast<uint64_t>(i));
    auto encoded = EncodeFrame(frame);
    ASSERT_TRUE(encoded.ok());
    wire += *encoded;
    frames.push_back(std::move(frame));
  }
  FrameDecoder decoder;
  decoder.Feed(wire);
  for (const Frame& expected : frames) {
    auto decoded = decoder.Next();
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    ASSERT_TRUE(decoded->has_value());
    EXPECT_EQ(**decoded, expected);
  }
  auto tail = decoder.Next();
  ASSERT_TRUE(tail.ok());
  EXPECT_FALSE(tail->has_value());
  EXPECT_TRUE(decoder.Finish().ok());
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(ProtocolTest, ByteAtATimeFeedingDecodes) {
  Frame frame(FrameType::kDrain);
  frame.Set("range", "2-4");
  frame.SetU64("events", 999);
  auto encoded = EncodeFrame(frame);
  ASSERT_TRUE(encoded.ok());

  FrameDecoder decoder;
  for (size_t i = 0; i + 1 < encoded->size(); ++i) {
    decoder.Feed(std::string_view(encoded->data() + i, 1));
    auto partial = decoder.Next();
    ASSERT_TRUE(partial.ok()) << "byte " << i;
    EXPECT_FALSE(partial->has_value()) << "frame complete after byte " << i;
  }
  decoder.Feed(std::string_view(encoded->data() + encoded->size() - 1, 1));
  auto decoded = decoder.Next();
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->has_value());
  EXPECT_EQ(**decoded, frame);
}

TEST(ProtocolTest, NumericHelpersRoundTrip) {
  Frame frame(FrameType::kHeartbeat);
  frame.SetU64("zero", 0);
  frame.SetU64("max", UINT64_MAX);
  frame.SetDouble("rate", 12345.6789);
  auto encoded = EncodeFrame(frame);
  ASSERT_TRUE(encoded.ok());
  auto decoded = DecodeOne(*encoded);
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->has_value());
  auto zero = (*decoded)->GetU64("zero");
  auto max = (*decoded)->GetU64("max");
  auto rate = (*decoded)->GetDouble("rate");
  ASSERT_TRUE(zero.ok());
  ASSERT_TRUE(max.ok());
  ASSERT_TRUE(rate.ok());
  EXPECT_EQ(*zero, 0u);
  EXPECT_EQ(*max, UINT64_MAX);
  EXPECT_NEAR(*rate, 12345.6789, 1e-6);

  auto missing = frame.GetU64("absent");
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());

  Frame bad(FrameType::kHeartbeat);
  bad.Set("events", "12x");
  auto malformed = bad.GetU64("events");
  ASSERT_FALSE(malformed.ok());
  EXPECT_TRUE(malformed.status().IsParseError());
}

TEST(ProtocolTest, EncodeRejectsGrammarViolations) {
  const std::pair<std::string, std::string> bad_fields[] = {
      {"", "value"},          // empty key
      {"a=b", "value"},       // '=' in key
      {"a\nb", "value"},      // '\n' in key
      {"key", "line\nbreak"}, // '\n' in value
  };
  for (const auto& [key, value] : bad_fields) {
    Frame frame(FrameType::kHello);
    frame.Set(key, value);
    auto encoded = EncodeFrame(frame);
    ASSERT_FALSE(encoded.ok()) << "key='" << key << "'";
    EXPECT_TRUE(encoded.status().IsInvalidArgument());
  }
}

TEST(ProtocolTest, EncodeRejectsOversizedPayload) {
  Frame frame(FrameType::kDrain);
  frame.Set("blob", std::string(kMaxFramePayload, 'x'));
  auto encoded = EncodeFrame(frame);
  ASSERT_FALSE(encoded.ok());
  EXPECT_TRUE(encoded.status().IsInvalidArgument());
}

TEST(ProtocolTest, FinishMidFrameIsParseError) {
  Frame frame(FrameType::kEpoch);
  frame.SetU64("epoch", 7);
  auto encoded = EncodeFrame(frame);
  ASSERT_TRUE(encoded.ok());

  FrameDecoder decoder;
  decoder.Feed(std::string_view(*encoded).substr(0, encoded->size() / 2));
  auto partial = decoder.Next();
  ASSERT_TRUE(partial.ok());
  EXPECT_FALSE(partial->has_value());
  const Status eos = decoder.Finish();
  ASSERT_FALSE(eos.ok());
  EXPECT_TRUE(eos.IsParseError());
}

TEST(ProtocolTest, PoisonedDecoderStaysPoisoned) {
  Frame frame(FrameType::kHello);
  frame.Set("worker", "w1");
  auto encoded = EncodeFrame(frame);
  ASSERT_TRUE(encoded.ok());

  FrameDecoder decoder;
  decoder.Feed("XXXX garbage that is certainly not a frame header");
  auto first = decoder.Next();
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(first.status().IsParseError());
  // Once framing is lost, even a pristine frame appended later must fail:
  // the decoder cannot know where it starts.
  decoder.Feed(*encoded);
  auto second = decoder.Next();
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsParseError());
}

TEST(ProtocolTest, ShardRangeRoundTrips) {
  const ShardRange ranges[] = {{0, 4}, {2, 3}, {10, 1000}, {0, UINT32_MAX}};
  for (const ShardRange& range : ranges) {
    auto parsed = ShardRange::Parse(range.ToString());
    ASSERT_TRUE(parsed.ok()) << range.ToString();
    EXPECT_EQ(*parsed, range);
  }
  EXPECT_EQ((ShardRange{2, 6}).width(), 4u);
}

TEST(ProtocolTest, ShardRangeParseRejectsMalformedText) {
  const std::string bad[] = {"",    "4",    "-4",      "4-",   "a-b",
                             "3-2", "1--2", "0-5000000000", " 0-4"};
  for (const std::string& text : bad) {
    auto parsed = ShardRange::Parse(text);
    EXPECT_FALSE(parsed.ok()) << "'" << text << "' parsed";
  }
}

TEST(ProtocolTest, HistogramRoundTripsLosslessly) {
  LatencyHistogram h;
  Rng rng(42);
  for (int i = 0; i < 5000; ++i) {
    h.Record(Duration::FromNanos(
        static_cast<int64_t>(1000 + rng.NextBounded(100000000))));
  }
  auto decoded = DecodeHistogram(EncodeHistogram(h));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->count(), h.count());
  EXPECT_EQ(decoded->min_nanos(), h.min_nanos());
  EXPECT_EQ(decoded->max_nanos(), h.max_nanos());
  // Bin-exact: re-encoding the decoded histogram reproduces the text.
  EXPECT_EQ(EncodeHistogram(*decoded), EncodeHistogram(h));
}

TEST(ProtocolTest, HistogramMergeAfterDecodeMatchesLocalMerge) {
  LatencyHistogram a;
  LatencyHistogram b;
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    a.Record(Duration::FromNanos(static_cast<int64_t>(1 + rng.NextBounded(1 << 20))));
    b.Record(Duration::FromNanos(static_cast<int64_t>(1 + rng.NextBounded(1 << 24))));
  }
  LatencyHistogram local = a;
  local.Merge(b);

  auto remote_a = DecodeHistogram(EncodeHistogram(a));
  auto remote_b = DecodeHistogram(EncodeHistogram(b));
  ASSERT_TRUE(remote_a.ok());
  ASSERT_TRUE(remote_b.ok());
  remote_a->Merge(*remote_b);
  EXPECT_EQ(EncodeHistogram(*remote_a), EncodeHistogram(local));
}

TEST(ProtocolTest, HistogramDecodeRejectsMalformedText) {
  const std::string bad[] = {"", "v2;0;0;0;0;", "v1;x;0;0;0;",
                             "v1;1;0;0", "garbage"};
  for (const std::string& text : bad) {
    auto decoded = DecodeHistogram(text);
    EXPECT_FALSE(decoded.ok()) << "'" << text << "' decoded";
  }
}

}  // namespace
}  // namespace graphtides
