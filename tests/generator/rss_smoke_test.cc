// Bounded-memory smoke test for the streaming generation path.
//
// Streams a multi-million-event run through the pipelined writer and
// asserts peak RSS growth stays under a fixed bound. The event mix is
// balanced (creates ~ removes) so the topology shadow hovers near its
// bootstrap size and the only thing that scales with --rounds is the
// stream itself — which the pipeline never materializes. Measured on the
// reference host: ~6 MB RSS delta at 1M rounds and ~6 MB at 10M rounds,
// while the in-memory path needs ~100 MB per million events just for the
// event vector.
#include <cstdio>

#include <gtest/gtest.h>

#include "generator/models/event_mix_model.h"
#include "generator/stream_generator.h"
#include "generator/stream_pipeline.h"

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GT_ASAN_ENABLED 1
#endif
#if __has_feature(thread_sanitizer)
#define GT_TSAN_ENABLED 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__)
#define GT_ASAN_ENABLED 1
#endif
#if defined(__SANITIZE_THREAD__)
#define GT_TSAN_ENABLED 1
#endif

#if defined(__linux__)
#include <sys/resource.h>
#endif

namespace graphtides {
namespace {

#if defined(__linux__)
long MaxRssKb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KB on Linux
}
#endif

TEST(RssSmokeTest, StreamingRunHoldsBoundedRss) {
#if !defined(__linux__)
  GTEST_SKIP() << "ru_maxrss semantics are Linux-specific";
#elif defined(GT_ASAN_ENABLED) || defined(GT_TSAN_ENABLED)
  GTEST_SKIP() << "sanitizer shadow memory distorts RSS accounting";
#else
  const long before_kb = MaxRssKb();

  // Balanced mix: vertex/edge creates are matched by removes, so the
  // topology stays near the bootstrap size for the whole run.
  EventMixModelOptions model_options;
  model_options.ba = {2000, 50, 10};
  model_options.mix = {/*create_vertex=*/0.05, /*remove_vertex=*/0.05,
                       /*update_vertex=*/0.55, /*create_edge=*/0.175,
                       /*remove_edge=*/0.175, /*update_edge=*/0.0};
  EventMixModel model(model_options);

  StreamGeneratorOptions options;
  options.seed = 11;
  options.rounds = 2'000'000;
  options.marker_interval = 10'000;
  StreamGenerator generator(&model, options);

  FILE* devnull = std::fopen("/dev/null", "w");
  ASSERT_NE(devnull, nullptr);
  size_t total_events = 0;
  {
    PipelinedWriterConsumer writer(devnull);
    auto summary = generator.GenerateTo(writer);
    ASSERT_TRUE(summary.ok()) << summary.status().ToString();
    total_events = summary->total_events;
  }
  std::fclose(devnull);
  ASSERT_GT(total_events, options.rounds);

  // 64 MB is an order of magnitude above the measured delta but far below
  // what materializing 2M+ events in memory would require (~200 MB for the
  // event vector alone), so a regression back to buffering the stream
  // trips this immediately.
  const long delta_kb = MaxRssKb() - before_kb;
  EXPECT_LT(delta_kb, 64L * 1024)
      << "streaming " << total_events << " events grew peak RSS by "
      << delta_kb << " KB; the pipeline should hold a fixed footprint";
#endif
}

}  // namespace
}  // namespace graphtides
