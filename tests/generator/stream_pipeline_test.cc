// Tests for the streaming generation path: consumer equivalence with the
// legacy in-memory path, byte-identical pipelined output, and error
// propagation through EventConsumer.
#include "generator/stream_pipeline.h"

#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "generator/event_consumer.h"
#include "generator/models/blockchain_model.h"
#include "generator/models/event_mix_model.h"
#include "generator/models/social_network_model.h"
#include "generator/stream_generator.h"
#include "stream/event.h"

namespace graphtides {
namespace {

StreamGeneratorOptions TestOptions() {
  StreamGeneratorOptions options;
  options.seed = 99;
  options.rounds = 5000;
  options.marker_interval = 250;
  options.bootstrap_pause = Duration::FromMillis(10);
  return options;
}

/// Reference rendering of the legacy in-memory path: one ToCsvLine string
/// per event, '\n'-joined — what WriteStreamFile/the seed serializer
/// produced.
std::string RenderLegacy(const std::vector<Event>& events) {
  std::string out;
  for (const Event& e : events) {
    out += e.ToCsvLine();
    out.push_back('\n');
  }
  return out;
}

TEST(StreamPipelineTest, CollectingConsumerMatchesLegacyGenerate) {
  SocialNetworkModel model_a;
  auto legacy = StreamGenerator(&model_a, TestOptions()).Generate();
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();

  SocialNetworkModel model_b;
  std::vector<Event> streamed;
  CollectingConsumer consumer(&streamed);
  auto summary = StreamGenerator(&model_b, TestOptions()).GenerateTo(consumer);
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();

  ASSERT_EQ(legacy->events.size(), streamed.size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(legacy->events[i], streamed[i]) << "event " << i;
  }
  EXPECT_EQ(summary->total_events, streamed.size());
  EXPECT_EQ(summary->bootstrap_events, legacy->bootstrap_events);
  EXPECT_EQ(summary->evolution_events, legacy->evolution_events);
  EXPECT_EQ(summary->skipped_rounds, legacy->skipped_rounds);
  EXPECT_EQ(summary->final_vertices, legacy->final_vertices);
  EXPECT_EQ(summary->final_edges, legacy->final_edges);
}

TEST(StreamPipelineTest, PipelinedWriterByteIdenticalToLegacyPath) {
  // Same seed, two engines: the in-memory path rendered with per-event
  // ToCsvLine vs the pipelined writer into a memory FILE. Must match to
  // the byte.
  SocialNetworkModel model_a;
  auto legacy = StreamGenerator(&model_a, TestOptions()).Generate();
  ASSERT_TRUE(legacy.ok());
  const std::string expected = RenderLegacy(legacy->events);

  char* data = nullptr;
  size_t size = 0;
  FILE* mem = open_memstream(&data, &size);
  ASSERT_NE(mem, nullptr);
  {
    SocialNetworkModel model_b;
    // Tiny batches to force many queue handoffs and batch recycling.
    PipelinedWriterOptions wopts;
    wopts.batch_events = 64;
    wopts.queue_batches = 2;
    PipelinedWriterConsumer writer(mem, wopts);
    auto summary =
        StreamGenerator(&model_b, TestOptions()).GenerateTo(writer);
    ASSERT_TRUE(summary.ok()) << summary.status().ToString();
    EXPECT_EQ(writer.events_written(), summary->total_events);
    EXPECT_EQ(writer.bytes_written(), expected.size());
  }
  std::fclose(mem);
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(std::string_view(data, size), expected);
  std::free(data);
}

TEST(StreamPipelineTest, PipelinedWriterByteIdenticalAcrossModels) {
  // The event-mix model exercises removals and quoted JSON-ish payloads;
  // blockchain exercises hub-biased topologies.
  StreamGeneratorOptions options;
  options.seed = 7;
  options.rounds = 2000;
  options.marker_interval = 100;

  {
    EventMixModel model_a{EventMixModelOptions{}};
    auto legacy = StreamGenerator(&model_a, options).Generate();
    ASSERT_TRUE(legacy.ok());
    char* data = nullptr;
    size_t size = 0;
    FILE* mem = open_memstream(&data, &size);
    EventMixModel model_b{EventMixModelOptions{}};
    PipelinedWriterConsumer writer(mem);
    auto summary = StreamGenerator(&model_b, options).GenerateTo(writer);
    ASSERT_TRUE(summary.ok());
    std::fclose(mem);
    EXPECT_EQ(std::string_view(data, size), RenderLegacy(legacy->events));
    std::free(data);
  }
  {
    BlockchainModel model_a;
    auto legacy = StreamGenerator(&model_a, options).Generate();
    ASSERT_TRUE(legacy.ok());
    char* data = nullptr;
    size_t size = 0;
    FILE* mem = open_memstream(&data, &size);
    BlockchainModel model_b;
    PipelinedWriterConsumer writer(mem);
    auto summary = StreamGenerator(&model_b, options).GenerateTo(writer);
    ASSERT_TRUE(summary.ok());
    std::fclose(mem);
    EXPECT_EQ(std::string_view(data, size), RenderLegacy(legacy->events));
    std::free(data);
  }
}

TEST(StreamPipelineTest, ConsumerErrorAbortsGeneration) {
  SocialNetworkModel model;
  size_t seen = 0;
  CallbackConsumer consumer([&seen](Event&&) {
    if (++seen > 100) return Status::IoError("downstream full");
    return Status::OK();
  });
  auto summary = StreamGenerator(&model, TestOptions()).GenerateTo(consumer);
  ASSERT_FALSE(summary.ok());
  EXPECT_TRUE(summary.status().IsIoError()) << summary.status().ToString();
  // Generation stopped shortly after the failure, not at stream end.
  EXPECT_LE(seen, 102u);
}

TEST(StreamPipelineTest, AppendEventLineMatchesToCsvLine) {
  const std::vector<Event> events = {
      Event::AddVertex(42, "{\"user\":\"u42\",\"joined\":7}"),
      Event::AddVertex(7, ""),
      Event::RemoveVertex(42),
      Event::AddEdge(1, 2, "with,comma"),
      Event::UpdateEdge(1, 2, "with\"quote"),
      Event::RemoveEdge(1, 2),
      Event::Marker("MARK_17"),
      Event::SetRate(2.5),
      Event::Pause(Duration::FromMillis(1500)),
  };
  for (const Event& e : events) {
    std::string appended;
    AppendEventLine(e, &appended);
    EXPECT_EQ(appended, e.ToCsvLine() + "\n");
  }
}

TEST(StreamPipelineTest, WriterReportsIoErrorFromClosedFile) {
  // A FILE* opened read-only rejects writes; the error must surface from
  // GenerateTo rather than being swallowed by the writer thread.
  FILE* readonly = std::fopen("/dev/null", "r");
  ASSERT_NE(readonly, nullptr);
  SocialNetworkModel model;
  StreamGeneratorOptions options;
  options.seed = 5;
  options.rounds = 20000;
  {
    PipelinedWriterConsumer writer(readonly);
    auto summary = StreamGenerator(&model, options).GenerateTo(writer);
    EXPECT_FALSE(summary.ok());
  }
  std::fclose(readonly);
}

}  // namespace
}  // namespace graphtides
