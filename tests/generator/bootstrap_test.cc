#include "generator/bootstrap.h"

#include <gtest/gtest.h>

#include <cmath>

#include "stream/validator.h"

namespace graphtides {
namespace {

struct BootstrapRun {
  std::vector<Event> events;
  TopologyIndex topology;
};

BootstrapRun RunBa(const BarabasiAlbertParams& params, uint64_t seed,
                   Status* status) {
  BootstrapRun run;
  Rng rng(seed);
  GeneratorContext ctx(&run.topology, &rng);
  GraphBuilder builder(&run.topology, &ctx, &run.events);
  *status = BootstrapBarabasiAlbert(builder, ctx, params);
  return run;
}

BootstrapRun RunEr(const ErdosRenyiParams& params, uint64_t seed,
                   Status* status) {
  BootstrapRun run;
  Rng rng(seed);
  GeneratorContext ctx(&run.topology, &rng);
  GraphBuilder builder(&run.topology, &ctx, &run.events);
  *status = BootstrapErdosRenyi(builder, ctx, params);
  return run;
}

TEST(BarabasiAlbertTest, ProducesRequestedVertexCount) {
  Status st;
  const BootstrapRun run = RunBa({200, 10, 3}, 1, &st);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(run.topology.num_vertices(), 200u);
}

TEST(BarabasiAlbertTest, AttachmentEdgesPerVertex) {
  Status st;
  const BarabasiAlbertParams params{300, 20, 5};
  const BootstrapRun run = RunBa(params, 2, &st);
  ASSERT_TRUE(st.ok());
  // Each of the (n - m0) attachment vertices adds ~m edges (guard loop can
  // fall short only in pathological cases).
  const size_t attachment_edges = (params.n - params.m0) * params.m;
  EXPECT_GE(run.topology.num_edges(), attachment_edges * 95 / 100);
}

TEST(BarabasiAlbertTest, StreamIsValid) {
  Status st;
  const BootstrapRun run = RunBa({150, 10, 4}, 3, &st);
  ASSERT_TRUE(st.ok());
  const StreamValidationReport report = ValidateStream(run.events);
  EXPECT_TRUE(report.valid()) << report.violations.size() << " violations";
  EXPECT_EQ(report.final_vertices, run.topology.num_vertices());
  EXPECT_EQ(report.final_edges, run.topology.num_edges());
}

TEST(BarabasiAlbertTest, SkewedDegreeDistribution) {
  Status st;
  const BootstrapRun run = RunBa({500, 10, 3}, 4, &st);
  ASSERT_TRUE(st.ok());
  // Preferential attachment produces hubs: max degree far above the mean.
  size_t max_degree = 0;
  size_t total_degree = 0;
  for (VertexId v : run.topology.vertex_ids()) {
    const size_t d = run.topology.DegreeOf(v);
    max_degree = std::max(max_degree, d);
    total_degree += d;
  }
  const double mean = static_cast<double>(total_degree) /
                      static_cast<double>(run.topology.num_vertices());
  EXPECT_GT(static_cast<double>(max_degree), 4.0 * mean);
}

TEST(BarabasiAlbertTest, DeterministicInSeed) {
  Status st1;
  Status st2;
  const BootstrapRun a = RunBa({100, 10, 3}, 42, &st1);
  const BootstrapRun b = RunBa({100, 10, 3}, 42, &st2);
  ASSERT_TRUE(st1.ok());
  ASSERT_TRUE(st2.ok());
  EXPECT_EQ(a.events, b.events);
}

TEST(BarabasiAlbertTest, RejectsBadParameters) {
  Status st;
  RunBa({10, 1, 3}, 1, &st);  // m0 < 2
  EXPECT_TRUE(st.IsInvalidArgument());
  RunBa({5, 10, 3}, 1, &st);  // n < m0
  EXPECT_TRUE(st.IsInvalidArgument());
  RunBa({10, 5, 0}, 1, &st);  // m == 0
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(ErdosRenyiTest, VertexCountAndValidity) {
  Status st;
  const BootstrapRun run = RunEr({100, 0.05}, 5, &st);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(run.topology.num_vertices(), 100u);
  EXPECT_TRUE(ValidateStream(run.events).valid());
}

TEST(ErdosRenyiTest, EdgeCountNearExpectation) {
  Status st;
  const size_t n = 300;
  const double p = 0.02;
  const BootstrapRun run = RunEr({n, p}, 6, &st);
  ASSERT_TRUE(st.ok());
  const double expected = p * static_cast<double>(n) *
                          static_cast<double>(n - 1);
  const double actual = static_cast<double>(run.topology.num_edges());
  EXPECT_NEAR(actual, expected, 4.0 * std::sqrt(expected));
}

TEST(ErdosRenyiTest, ZeroProbabilityMeansNoEdges) {
  Status st;
  const BootstrapRun run = RunEr({50, 0.0}, 7, &st);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(run.topology.num_edges(), 0u);
}

TEST(ErdosRenyiTest, FullProbabilityMeansCompleteGraph) {
  Status st;
  const BootstrapRun run = RunEr({20, 1.0}, 8, &st);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(run.topology.num_edges(), 20u * 19u);
}

TEST(ErdosRenyiTest, RejectsBadProbability) {
  Status st;
  RunEr({10, -0.1}, 1, &st);
  EXPECT_TRUE(st.IsInvalidArgument());
  RunEr({10, 1.5}, 1, &st);
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(ErdosRenyiTest, NoSelfLoops) {
  Status st;
  const BootstrapRun run = RunEr({50, 0.3}, 9, &st);
  ASSERT_TRUE(st.ok());
  for (const Event& e : run.events) {
    if (e.type == EventType::kAddEdge) {
      EXPECT_NE(e.edge.src, e.edge.dst);
    }
  }
}

}  // namespace
}  // namespace graphtides
