#include "generator/topology_index.h"

#include <gtest/gtest.h>

#include <map>

namespace graphtides {
namespace {

TEST(TopologyIndexTest, VertexLifecycle) {
  TopologyIndex topo;
  EXPECT_TRUE(topo.AddVertex(1).ok());
  EXPECT_TRUE(topo.HasVertex(1));
  EXPECT_EQ(topo.num_vertices(), 1u);
  EXPECT_TRUE(topo.AddVertex(1).IsPreconditionFailed());
  EXPECT_TRUE(topo.RemoveVertex(1).ok());
  EXPECT_FALSE(topo.HasVertex(1));
  EXPECT_TRUE(topo.RemoveVertex(1).IsPreconditionFailed());
}

TEST(TopologyIndexTest, EdgeLifecycle) {
  TopologyIndex topo;
  ASSERT_TRUE(topo.AddVertex(1).ok());
  ASSERT_TRUE(topo.AddVertex(2).ok());
  EXPECT_TRUE(topo.AddEdge(1, 1).IsPreconditionFailed());
  EXPECT_TRUE(topo.AddEdge(1, 3).IsPreconditionFailed());
  ASSERT_TRUE(topo.AddEdge(1, 2).ok());
  EXPECT_TRUE(topo.HasEdge(1, 2));
  EXPECT_FALSE(topo.HasEdge(2, 1));
  EXPECT_TRUE(topo.AddEdge(1, 2).IsPreconditionFailed());
  EXPECT_EQ(topo.num_edges(), 1u);
  ASSERT_TRUE(topo.RemoveEdge(1, 2).ok());
  EXPECT_EQ(topo.num_edges(), 0u);
  EXPECT_TRUE(topo.RemoveEdge(1, 2).IsPreconditionFailed());
}

TEST(TopologyIndexTest, RemoveVertexCascades) {
  TopologyIndex topo;
  for (VertexId v : {1, 2, 3}) ASSERT_TRUE(topo.AddVertex(v).ok());
  ASSERT_TRUE(topo.AddEdge(1, 2).ok());
  ASSERT_TRUE(topo.AddEdge(3, 1).ok());
  ASSERT_TRUE(topo.AddEdge(2, 3).ok());
  ASSERT_TRUE(topo.RemoveVertex(1).ok());
  EXPECT_EQ(topo.num_vertices(), 2u);
  EXPECT_EQ(topo.num_edges(), 1u);
  EXPECT_TRUE(topo.HasEdge(2, 3));
}

TEST(TopologyIndexTest, HighDegreeHubCrossesIndexThreshold) {
  // Push a hub's adjacency well past kAdjIndexThreshold so the indexed
  // (hash-backed) swap-remove path runs, then drain it back through the
  // scan path boundary and cascade-remove the hub itself.
  TopologyIndex topo;
  const VertexId hub = 0;
  ASSERT_TRUE(topo.AddVertex(hub).ok());
  const size_t fan = TopologyIndex::kAdjIndexThreshold * 3;
  for (VertexId v = 1; v <= fan; ++v) {
    ASSERT_TRUE(topo.AddVertex(v).ok());
    ASSERT_TRUE(topo.AddEdge(hub, v).ok());
    ASSERT_TRUE(topo.AddEdge(v, hub).ok());
  }
  EXPECT_EQ(topo.DegreeOf(hub), 2 * fan);
  EXPECT_EQ(topo.OutDegreeOf(hub), fan);

  // Remove from the middle of the (now indexed) adjacency list.
  for (VertexId v = 2; v <= fan; v += 2) {
    ASSERT_TRUE(topo.RemoveEdge(hub, v).ok());
    ASSERT_TRUE(topo.RemoveEdge(v, hub).ok());
  }
  EXPECT_EQ(topo.DegreeOf(hub), fan);
  for (VertexId v = 1; v <= fan; ++v) {
    EXPECT_EQ(topo.HasEdge(hub, v), v % 2 == 1) << "edge to " << v;
  }

  // Cascade removal of the hub drops every remaining incident edge.
  ASSERT_TRUE(topo.RemoveVertex(hub).ok());
  EXPECT_EQ(topo.num_edges(), 0u);
  EXPECT_EQ(topo.num_vertices(), fan);
  for (VertexId v = 1; v <= fan; ++v) {
    EXPECT_EQ(topo.DegreeOf(v), 0u);
  }
}

TEST(TopologyIndexTest, DegreeTracking) {
  TopologyIndex topo;
  for (VertexId v : {1, 2, 3}) ASSERT_TRUE(topo.AddVertex(v).ok());
  ASSERT_TRUE(topo.AddEdge(1, 2).ok());
  ASSERT_TRUE(topo.AddEdge(1, 3).ok());
  ASSERT_TRUE(topo.AddEdge(2, 1).ok());
  EXPECT_EQ(topo.DegreeOf(1), 3u);
  EXPECT_EQ(topo.OutDegreeOf(1), 2u);
  EXPECT_EQ(topo.DegreeOf(3), 1u);
  EXPECT_EQ(topo.DegreeOf(99), 0u);
}

TEST(TopologyIndexTest, SamplingFromEmpty) {
  TopologyIndex topo;
  Rng rng(1);
  EXPECT_FALSE(topo.UniformVertex(rng).has_value());
  EXPECT_FALSE(topo.UniformEdge(rng).has_value());
  EXPECT_FALSE(topo.PreferentialVertex(rng).has_value());
  EXPECT_FALSE(topo.DegreeBiasedVertex(rng, 1.0).has_value());
  EXPECT_FALSE(topo.UniformVertexOtherThan(rng, 0).has_value());
}

TEST(TopologyIndexTest, UniformVertexCoversAll) {
  TopologyIndex topo;
  for (VertexId v = 0; v < 10; ++v) ASSERT_TRUE(topo.AddVertex(v).ok());
  Rng rng(3);
  std::map<VertexId, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[*topo.UniformVertex(rng)];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [v, count] : counts) {
    EXPECT_NEAR(count / 10000.0, 0.1, 0.02);
  }
}

TEST(TopologyIndexTest, UniformEdgeOnlyReturnsExistingEdges) {
  TopologyIndex topo;
  for (VertexId v = 0; v < 5; ++v) ASSERT_TRUE(topo.AddVertex(v).ok());
  ASSERT_TRUE(topo.AddEdge(0, 1).ok());
  ASSERT_TRUE(topo.AddEdge(2, 3).ok());
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const auto e = topo.UniformEdge(rng);
    ASSERT_TRUE(e.has_value());
    EXPECT_TRUE(topo.HasEdge(e->src, e->dst));
  }
}

TEST(TopologyIndexTest, SamplingValidAfterChurn) {
  TopologyIndex topo;
  Rng rng(11);
  for (VertexId v = 0; v < 50; ++v) ASSERT_TRUE(topo.AddVertex(v).ok());
  for (VertexId v = 0; v + 1 < 50; ++v) ASSERT_TRUE(topo.AddEdge(v, v + 1).ok());
  // Remove half the vertices; swap-remove must keep the dense arrays sane.
  for (VertexId v = 0; v < 50; v += 2) ASSERT_TRUE(topo.RemoveVertex(v).ok());
  for (int i = 0; i < 1000; ++i) {
    const auto v = topo.UniformVertex(rng);
    ASSERT_TRUE(v.has_value());
    EXPECT_TRUE(topo.HasVertex(*v));
    EXPECT_EQ(*v % 2, 1u);
    const auto e = topo.UniformEdge(rng);
    if (e.has_value()) {
      EXPECT_TRUE(topo.HasEdge(e->src, e->dst));
    }
  }
}

TEST(TopologyIndexTest, PreferentialVertexFavorsHighDegree) {
  // Star: hub 0 connected to 20 leaves. Preferential sampling picks a
  // uniform edge endpoint, so the hub appears ~50% of the time.
  TopologyIndex topo;
  ASSERT_TRUE(topo.AddVertex(0).ok());
  for (VertexId v = 1; v <= 20; ++v) {
    ASSERT_TRUE(topo.AddVertex(v).ok());
    ASSERT_TRUE(topo.AddEdge(0, v).ok());
  }
  Rng rng(13);
  int hub_hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (*topo.PreferentialVertex(rng) == 0) ++hub_hits;
  }
  EXPECT_NEAR(hub_hits / static_cast<double>(n), 0.5, 0.02);
}

TEST(TopologyIndexTest, DegreeBiasDirections) {
  // Hub with high degree vs many low-degree leaves.
  TopologyIndex topo;
  ASSERT_TRUE(topo.AddVertex(0).ok());
  for (VertexId v = 1; v <= 30; ++v) {
    ASSERT_TRUE(topo.AddVertex(v).ok());
    ASSERT_TRUE(topo.AddEdge(0, v).ok());
  }
  Rng rng(17);
  const int n = 30000;
  int hub_positive = 0;
  int hub_negative = 0;
  for (int i = 0; i < n; ++i) {
    if (*topo.DegreeBiasedVertex(rng, 2.0) == 0) ++hub_positive;
    if (*topo.DegreeBiasedVertex(rng, -2.0) == 0) ++hub_negative;
  }
  const double uniform_rate = 1.0 / 31.0;
  EXPECT_GT(hub_positive / static_cast<double>(n), 3 * uniform_rate);
  EXPECT_LT(hub_negative / static_cast<double>(n), uniform_rate / 3);
}

TEST(TopologyIndexTest, ZeroBiasIsUniform) {
  TopologyIndex topo;
  ASSERT_TRUE(topo.AddVertex(0).ok());
  for (VertexId v = 1; v <= 9; ++v) {
    ASSERT_TRUE(topo.AddVertex(v).ok());
    ASSERT_TRUE(topo.AddEdge(0, v).ok());
  }
  Rng rng(19);
  int hub_hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (*topo.DegreeBiasedVertex(rng, 0.0) == 0) ++hub_hits;
  }
  EXPECT_NEAR(hub_hits / static_cast<double>(n), 0.1, 0.02);
}

TEST(TopologyIndexTest, UniformVertexOtherThanExcludes) {
  TopologyIndex topo;
  ASSERT_TRUE(topo.AddVertex(1).ok());
  ASSERT_TRUE(topo.AddVertex(2).ok());
  Rng rng(23);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(*topo.UniformVertexOtherThan(rng, 1), 2u);
  }
  // Single vertex equal to the excluded one -> nullopt.
  TopologyIndex single;
  ASSERT_TRUE(single.AddVertex(7).ok());
  EXPECT_FALSE(single.UniformVertexOtherThan(rng, 7).has_value());
  EXPECT_EQ(*single.UniformVertexOtherThan(rng, 8), 7u);
}

}  // namespace
}  // namespace graphtides
