#include <gtest/gtest.h>

#include <memory>

#include "generator/models/blockchain_model.h"
#include "generator/models/ddos_model.h"
#include "generator/models/event_mix_model.h"
#include "generator/models/social_network_model.h"
#include "generator/stream_generator.h"
#include "stream/statistics.h"
#include "stream/validator.h"

namespace graphtides {
namespace {

GeneratedStream MustGenerate(GeneratorModel* model, size_t rounds,
                             uint64_t seed) {
  StreamGeneratorOptions options;
  options.rounds = rounds;
  options.seed = seed;
  StreamGenerator generator(model, options);
  auto result = generator.Generate();
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

// --- EventMixModel (Table 3 workload) --------------------------------------

TEST(EventMixModelTest, MixRatiosApproximateConfig) {
  EventMixModelOptions options;
  options.ba = {2000, 50, 10};
  EventMixModel model(options);
  const GeneratedStream stream = MustGenerate(&model, 20000, 7);
  // Count only evolution events (skip the bootstrap prefix).
  size_t counts[6] = {0};
  size_t seen = 0;
  size_t bootstrap_remaining = stream.bootstrap_events;
  for (const Event& e : stream.events) {
    if (!IsGraphOp(e.type)) continue;
    if (bootstrap_remaining > 0) {
      --bootstrap_remaining;
      continue;
    }
    ++counts[static_cast<size_t>(e.type)];
    ++seen;
  }
  ASSERT_GT(seen, 15000u);
  const double total = static_cast<double>(seen);
  EXPECT_NEAR(counts[0] / total, 0.10, 0.02);  // CREATE_VERTEX
  EXPECT_NEAR(counts[1] / total, 0.05, 0.02);  // REMOVE_VERTEX
  EXPECT_NEAR(counts[2] / total, 0.35, 0.02);  // UPDATE_VERTEX
  EXPECT_NEAR(counts[3] / total, 0.35, 0.02);  // CREATE_EDGE
  EXPECT_NEAR(counts[4] / total, 0.15, 0.02);  // REMOVE_EDGE
  EXPECT_EQ(counts[5], 0u);                    // UPDATE_EDGE (0%)
}

TEST(EventMixModelTest, StreamValidates) {
  EventMixModelOptions options;
  options.ba = {500, 20, 5};
  EventMixModel model(options);
  const GeneratedStream stream = MustGenerate(&model, 5000, 11);
  EXPECT_TRUE(ValidateStream(stream.events).valid());
}

TEST(EventMixModelTest, ErdosRenyiBootstrapWorks) {
  EventMixModelOptions options;
  options.bootstrap = EventMixModelOptions::Bootstrap::kErdosRenyi;
  options.er = {200, 0.05};
  EventMixModel model(options);
  const GeneratedStream stream = MustGenerate(&model, 1000, 13);
  EXPECT_TRUE(ValidateStream(stream.events).valid());
  EXPECT_EQ(stream.bootstrap_events >= 200, true);
}

TEST(EventMixModelTest, StatePayloadsAreJson) {
  EventMixModelOptions options;
  options.ba = {100, 10, 3};
  EventMixModel model(options);
  const GeneratedStream stream = MustGenerate(&model, 500, 17);
  for (const Event& e : stream.events) {
    if (e.type == EventType::kUpdateVertex) {
      EXPECT_EQ(e.payload.front(), '{');
      EXPECT_EQ(e.payload.back(), '}');
    }
  }
}

// --- SocialNetworkModel -----------------------------------------------------

TEST(SocialNetworkModelTest, NetworkGrows) {
  SocialNetworkModel model;
  const GeneratedStream stream = MustGenerate(&model, 10000, 3);
  // Growth-dominated mix: final vertices well above the 100 seed users.
  EXPECT_GT(stream.final_vertices, 500u);
  EXPECT_GT(stream.final_edges, stream.final_vertices);
  EXPECT_TRUE(ValidateStream(stream.events).valid());
}

TEST(SocialNetworkModelTest, InfluencersEmerge) {
  SocialNetworkModel model;
  const GeneratedStream stream = MustGenerate(&model, 20000, 5);
  // Track in-degrees; preferential attachment must concentrate followers.
  std::unordered_map<VertexId, size_t> in_degree;
  StreamValidator shadow;
  for (const Event& e : stream.events) {
    if (shadow.Check(e).ok() && e.type == EventType::kAddEdge) {
      ++in_degree[e.edge.dst];
    }
  }
  size_t max_in = 0;
  size_t total = 0;
  for (const auto& [v, d] : in_degree) {
    max_in = std::max(max_in, d);
    total += d;
  }
  const double mean = static_cast<double>(total) /
                      static_cast<double>(in_degree.size());
  EXPECT_GT(static_cast<double>(max_in), 10.0 * mean);
}

TEST(SocialNetworkModelTest, MostlyGrowthEvents) {
  SocialNetworkModel model;
  const GeneratedStream stream = MustGenerate(&model, 5000, 9);
  const StreamStatistics stats = ComputeStreamStatistics(stream.events);
  EXPECT_GT(stats.add_ratio, 0.8);
}

// --- DdosModel ---------------------------------------------------------------

TEST(DdosModelTest, AttackFocusesOnVictim) {
  DdosModelOptions options;
  options.attacks = {{2000, 4000}};
  DdosModel model(options);
  const GeneratedStream stream = MustGenerate(&model, 6000, 21);
  ASSERT_TRUE(ValidateStream(stream.events).valid());
  const VertexId victim = model.victim();

  // Compare update traffic toward the victim inside vs outside the window.
  size_t in_window_victim = 0;
  size_t in_window_total = 0;
  size_t out_window_victim = 0;
  size_t out_window_total = 0;
  size_t round = 0;
  size_t bootstrap_remaining = stream.bootstrap_events;
  for (const Event& e : stream.events) {
    if (!IsGraphOp(e.type)) continue;
    if (bootstrap_remaining > 0) {
      --bootstrap_remaining;
      continue;
    }
    ++round;
    if (e.type != EventType::kUpdateEdge) continue;
    const bool in_window = round >= 2000 && round < 4000;
    if (in_window) {
      ++in_window_total;
      if (e.edge.dst == victim) ++in_window_victim;
    } else {
      ++out_window_total;
      if (e.edge.dst == victim) ++out_window_victim;
    }
  }
  ASSERT_GT(in_window_total, 100u);
  ASSERT_GT(out_window_total, 100u);
  const double in_rate = static_cast<double>(in_window_victim) /
                         static_cast<double>(in_window_total);
  const double out_rate = static_cast<double>(out_window_victim) /
                          static_cast<double>(out_window_total);
  EXPECT_GT(in_rate, 0.5);
  EXPECT_GT(in_rate, 3.0 * out_rate);
}

TEST(DdosModelTest, ServersNeverRemoved) {
  DdosModelOptions options;
  options.attacks = {{500, 1500}};
  DdosModel model(options);
  const GeneratedStream stream = MustGenerate(&model, 3000, 23);
  for (const Event& e : stream.events) {
    if (e.type == EventType::kRemoveVertex) {
      for (VertexId s : model.servers()) {
        EXPECT_NE(e.vertex, s);
      }
    }
  }
}

TEST(DdosModelTest, BotnetClientsLabeled) {
  DdosModelOptions options;
  options.attacks = {{100, 1100}};
  DdosModel model(options);
  const GeneratedStream stream = MustGenerate(&model, 2000, 25);
  size_t botnet_vertices = 0;
  for (const Event& e : stream.events) {
    if (e.type == EventType::kAddVertex &&
        e.payload.find("botnet") != std::string::npos) {
      ++botnet_vertices;
    }
  }
  EXPECT_GT(botnet_vertices, 10u);
}

// --- BlockchainModel ---------------------------------------------------------

TEST(BlockchainModelTest, StreamValidates) {
  BlockchainModel model;
  const GeneratedStream stream = MustGenerate(&model, 5000, 31);
  EXPECT_TRUE(ValidateStream(stream.events).valid());
}

TEST(BlockchainModelTest, MoneyIsConserved) {
  BlockchainModelOptions options;
  options.initial_wallets = 50;
  options.initial_balance = 10000;
  BlockchainModel model(options);
  const GeneratedStream stream = MustGenerate(&model, 5000, 33);
  // Total balance across all wallets seen must equal minted supply.
  StreamValidator shadow;
  std::unordered_set<VertexId> wallets;
  for (const Event& e : stream.events) {
    if (shadow.Check(e).ok() && IsVertexOp(e.type)) {
      wallets.insert(e.vertex);
    }
  }
  int64_t total = 0;
  for (VertexId w : wallets) total += model.BalanceOf(w);
  EXPECT_EQ(total, 50 * 10000);
}

TEST(BlockchainModelTest, NoNegativeBalances) {
  BlockchainModel model;
  const GeneratedStream stream = MustGenerate(&model, 5000, 35);
  StreamValidator shadow;
  std::unordered_set<VertexId> wallets;
  for (const Event& e : stream.events) {
    if (shadow.Check(e).ok() && IsVertexOp(e.type)) wallets.insert(e.vertex);
  }
  for (VertexId w : wallets) {
    EXPECT_GE(model.BalanceOf(w), 0) << "wallet " << w;
  }
}

TEST(BlockchainModelTest, RepeatTransactionsUseUpdateEdge) {
  // A small, closed wallet population saturates the pair space, so repeat
  // contacts (UPDATE_EDGE) come to dominate first contacts (CREATE_EDGE).
  BlockchainModelOptions options;
  options.initial_wallets = 15;
  options.p_new_wallet = 0.0;
  options.p_transaction = 0.9;
  options.p_balance_snapshot = 0.1;
  BlockchainModel model(options);
  const GeneratedStream stream = MustGenerate(&model, 8000, 37);
  const StreamStatistics stats = ComputeStreamStatistics(stream.events);
  EXPECT_GT(stats.by_type[static_cast<size_t>(EventType::kUpdateEdge)],
            stats.by_type[static_cast<size_t>(EventType::kAddEdge)]);
  // Both kinds of transaction must occur.
  EXPECT_GT(stats.by_type[static_cast<size_t>(EventType::kAddEdge)], 0u);
}


// --- Property sweep: every model x several seeds -----------------------------

struct SweepCase {
  std::string model;
  uint64_t seed;
};

class ModelSweepTest : public ::testing::TestWithParam<SweepCase> {
 protected:
  std::unique_ptr<GeneratorModel> MakeModel() const {
    const std::string& name = GetParam().model;
    if (name == "social") return std::make_unique<SocialNetworkModel>();
    if (name == "ddos") {
      DdosModelOptions options;
      options.attacks = {{1000, 2000}};
      return std::make_unique<DdosModel>(options);
    }
    if (name == "blockchain") return std::make_unique<BlockchainModel>();
    EventMixModelOptions options;
    options.ba = {300, 15, 4};
    return std::make_unique<EventMixModel>(options);
  }
};

TEST_P(ModelSweepTest, StreamValidAndDeterministic) {
  auto model_a = MakeModel();
  auto model_b = MakeModel();
  StreamGeneratorOptions gen;
  gen.rounds = 3000;
  gen.seed = GetParam().seed;
  auto a = StreamGenerator(model_a.get(), gen).Generate();
  auto b = StreamGenerator(model_b.get(), gen).Generate();
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  // Exactly-once replayability depends on validity (Â§3.2).
  const StreamValidationReport report = ValidateStream(a->events);
  EXPECT_TRUE(report.valid())
      << GetParam().model << " seed " << GetParam().seed << ": "
      << (report.violations.empty() ? "" : report.violations[0].reason);
  // Same model + same seed -> identical stream.
  EXPECT_EQ(a->events, b->events);
  // The stream actually does something.
  EXPECT_GT(a->evolution_events, 2000u);
  EXPECT_GT(report.final_vertices, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelSweepTest,
    ::testing::Values(
        SweepCase{"social", 1}, SweepCase{"social", 2},
        SweepCase{"social", 1234567}, SweepCase{"ddos", 1},
        SweepCase{"ddos", 99}, SweepCase{"blockchain", 1},
        SweepCase{"blockchain", 4242}, SweepCase{"mix", 1},
        SweepCase{"mix", 77}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.model + "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace graphtides
