#include "generator/stream_generator.h"

#include <gtest/gtest.h>

#include "generator/models/event_mix_model.h"
#include "stream/statistics.h"
#include "stream/validator.h"

namespace graphtides {
namespace {

EventMixModelOptions SmallModelOptions() {
  EventMixModelOptions options;
  options.ba = {100, 10, 3};
  return options;
}

TEST(StreamGeneratorTest, ProducesRequestedRounds) {
  EventMixModel model(SmallModelOptions());
  StreamGeneratorOptions options;
  options.rounds = 500;
  options.seed = 1;
  StreamGenerator generator(&model, options);
  auto result = generator.Generate();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->evolution_events + result->skipped_rounds, 500u);
  EXPECT_GT(result->bootstrap_events, 0u);
  EXPECT_EQ(result->skipped_rounds, 0u);
}

TEST(StreamGeneratorTest, StreamIsValid) {
  EventMixModel model(SmallModelOptions());
  StreamGeneratorOptions options;
  options.rounds = 1000;
  options.seed = 2;
  StreamGenerator generator(&model, options);
  auto result = generator.Generate();
  ASSERT_TRUE(result.ok());
  const StreamValidationReport report = ValidateStream(result->events);
  EXPECT_TRUE(report.valid())
      << "first violation: "
      << (report.violations.empty() ? "" : report.violations[0].reason);
  EXPECT_EQ(report.final_vertices, result->final_vertices);
  EXPECT_EQ(report.final_edges, result->final_edges);
}

TEST(StreamGeneratorTest, DeterministicInSeed) {
  EventMixModel model_a(SmallModelOptions());
  EventMixModel model_b(SmallModelOptions());
  StreamGeneratorOptions options;
  options.rounds = 300;
  options.seed = 99;
  auto a = StreamGenerator(&model_a, options).Generate();
  auto b = StreamGenerator(&model_b, options).Generate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->events, b->events);
}

TEST(StreamGeneratorTest, DifferentSeedsDiffer) {
  EventMixModel model_a(SmallModelOptions());
  EventMixModel model_b(SmallModelOptions());
  StreamGeneratorOptions options;
  options.rounds = 300;
  options.seed = 1;
  auto a = StreamGenerator(&model_a, options).Generate();
  options.seed = 2;
  auto b = StreamGenerator(&model_b, options).Generate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->events, b->events);
}

TEST(StreamGeneratorTest, PhaseMarkersEmitted) {
  EventMixModel model(SmallModelOptions());
  StreamGeneratorOptions options;
  options.rounds = 10;
  options.bootstrap_pause = Duration::FromSeconds(2.0);
  StreamGenerator generator(&model, options);
  auto result = generator.Generate();
  ASSERT_TRUE(result.ok());
  // Expect BOOTSTRAP_DONE marker followed by a pause, and STREAM_END last.
  size_t bootstrap_marker = 0;
  bool found_bootstrap = false;
  for (size_t i = 0; i < result->events.size(); ++i) {
    const Event& e = result->events[i];
    if (e.type == EventType::kMarker && e.payload == "BOOTSTRAP_DONE") {
      bootstrap_marker = i;
      found_bootstrap = true;
    }
  }
  ASSERT_TRUE(found_bootstrap);
  ASSERT_LT(bootstrap_marker + 1, result->events.size());
  EXPECT_EQ(result->events[bootstrap_marker + 1].type, EventType::kPause);
  EXPECT_EQ(result->events.back().type, EventType::kMarker);
  EXPECT_EQ(result->events.back().payload, "STREAM_END");
}

TEST(StreamGeneratorTest, MarkersAtConfiguredInterval) {
  EventMixModel model(SmallModelOptions());
  StreamGeneratorOptions options;
  options.rounds = 100;
  options.marker_interval = 25;
  options.emit_phase_markers = false;
  StreamGenerator generator(&model, options);
  auto result = generator.Generate();
  ASSERT_TRUE(result.ok());
  std::vector<std::string> labels;
  size_t graph_ops_seen = 0;
  std::vector<size_t> marker_positions;
  for (const Event& e : result->events) {
    if (IsGraphOp(e.type)) ++graph_ops_seen;
    if (e.type == EventType::kMarker) {
      labels.push_back(e.payload);
      marker_positions.push_back(graph_ops_seen);
    }
  }
  // Bootstrap ops count too; markers only fire on evolution events.
  ASSERT_EQ(labels.size(), 4u);
  EXPECT_EQ(labels[0], "MARK_1");
  EXPECT_EQ(labels[3], "MARK_4");
}

TEST(StreamGeneratorTest, NoPhaseMarkersWhenDisabled) {
  EventMixModel model(SmallModelOptions());
  StreamGeneratorOptions options;
  options.rounds = 10;
  options.emit_phase_markers = false;
  StreamGenerator generator(&model, options);
  auto result = generator.Generate();
  ASSERT_TRUE(result.ok());
  for (const Event& e : result->events) {
    EXPECT_NE(e.type, EventType::kMarker);
  }
}

TEST(StreamGeneratorTest, InvalidMixRejected) {
  EventMixModelOptions bad = SmallModelOptions();
  bad.mix.create_vertex = 0.9;  // sum != 1
  EventMixModel model(bad);
  StreamGeneratorOptions options;
  options.rounds = 10;
  StreamGenerator generator(&model, options);
  auto result = generator.Generate();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(ApplyControlScheduleTest, InsertsAtGraphEventPositions) {
  std::vector<Event> events = {
      Event::AddVertex(1), Event::AddVertex(2), Event::AddVertex(3),
      Event::AddVertex(4)};
  std::vector<ScheduleEntry> schedule = {
      {2, Event::Pause(Duration::FromSeconds(20.0))},
      {2, Event::SetRate(2.0)},
      {4, Event::SetRate(1.0)},
  };
  const std::vector<Event> out =
      ApplyControlSchedule(std::move(events), std::move(schedule));
  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(out[0].type, EventType::kAddVertex);
  EXPECT_EQ(out[1].type, EventType::kAddVertex);
  EXPECT_EQ(out[2].type, EventType::kPause);
  EXPECT_EQ(out[3].type, EventType::kSetRate);
  EXPECT_DOUBLE_EQ(out[3].rate_factor, 2.0);
  EXPECT_EQ(out[4].type, EventType::kAddVertex);
  EXPECT_EQ(out[5].type, EventType::kAddVertex);
  EXPECT_EQ(out[6].type, EventType::kSetRate);
}

TEST(ApplyControlScheduleTest, PositionZeroGoesFirst) {
  std::vector<Event> events = {Event::AddVertex(1)};
  const auto out = ApplyControlSchedule(std::move(events),
                                        {{0, Event::SetRate(3.0)}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].type, EventType::kSetRate);
}

TEST(ApplyControlScheduleTest, MarkersDoNotAdvancePosition) {
  std::vector<Event> events = {Event::AddVertex(1), Event::Marker("m"),
                               Event::AddVertex(2)};
  const auto out = ApplyControlSchedule(std::move(events),
                                        {{2, Event::SetRate(2.0)}});
  // SET_RATE lands after the second *graph* event (last position).
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[3].type, EventType::kSetRate);
}

TEST(ApplyControlScheduleTest, TrailingEntriesAppended) {
  std::vector<Event> events = {Event::AddVertex(1)};
  const auto out = ApplyControlSchedule(std::move(events),
                                        {{100, Event::Marker("late")}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].payload, "late");
}

}  // namespace
}  // namespace graphtides
