#include "sut/chronolite/chronolite.h"

#include <gtest/gtest.h>

#include "algorithms/pagerank.h"
#include "common/random.h"
#include "graph/csr.h"
#include "graph/graph.h"

namespace graphtides {
namespace {

std::vector<Event> RandomStream(size_t n_vertices, size_t n_edges,
                                uint64_t seed) {
  Rng rng(seed);
  std::vector<Event> events;
  Graph shadow;
  for (VertexId v = 0; v < n_vertices; ++v) {
    events.push_back(Event::AddVertex(v));
    EXPECT_TRUE(shadow.Apply(events.back()).ok());
  }
  size_t added = 0;
  while (added < n_edges) {
    const VertexId a = rng.NextBounded(n_vertices);
    const VertexId b = rng.NextBounded(n_vertices);
    if (a == b || shadow.HasEdge(a, b)) continue;
    events.push_back(Event::AddEdge(a, b));
    EXPECT_TRUE(shadow.Apply(events.back()).ok());
    ++added;
  }
  return events;
}

void IngestAll(Simulator& sim, ChronoLite& engine,
               const std::vector<Event>& events) {
  for (const Event& e : events) {
    engine.Ingest(e);
    sim.RunUntilIdle();  // fully process each event (idle system)
  }
}

TEST(ChronoLiteTest, IngestsAndCounts) {
  Simulator sim;
  ChronoLite engine(&sim, ChronoLiteOptions{});
  const auto events = RandomStream(20, 40, 1);
  IngestAll(sim, engine, events);
  EXPECT_EQ(engine.events_ingested(), events.size());
  EXPECT_EQ(engine.updates_applied(), events.size());
  EXPECT_TRUE(engine.Idle());
}

TEST(ChronoLiteTest, RanksConvergeToBatchPageRank) {
  Simulator sim;
  ChronoLiteOptions options;
  options.rank.push_threshold = 1e-6;
  ChronoLite engine(&sim, options);
  const auto events = RandomStream(40, 150, 2);
  // Ingest the whole stream, then let the computation settle once.
  for (const Event& e : events) engine.Ingest(e);
  sim.RunUntilIdle();
  ASSERT_TRUE(engine.Idle());

  Graph reference;
  ASSERT_TRUE(reference.ApplyAll(events).ok());
  const CsrGraph csr = CsrGraph::FromGraph(reference);
  PageRankOptions pr_options;
  pr_options.tolerance = 1e-12;
  const PageRankResult exact = PageRank(csr, pr_options);
  for (CsrGraph::Index v = 0; v < csr.num_vertices(); ++v) {
    EXPECT_NEAR(engine.RankOf(csr.IdOf(v)), exact.ranks[v], 0.015)
        << "vertex " << csr.IdOf(v);
  }
}

TEST(ChronoLiteTest, TopRanksOrderedAndNormalized) {
  Simulator sim;
  ChronoLite engine(&sim, ChronoLiteOptions{});
  // Star: everyone points to vertex 0.
  std::vector<Event> events;
  events.push_back(Event::AddVertex(0));
  for (VertexId v = 1; v <= 20; ++v) {
    events.push_back(Event::AddVertex(v));
    events.push_back(Event::AddEdge(v, 0));
  }
  IngestAll(sim, engine, events);
  const auto top = engine.TopRanks(5);
  ASSERT_EQ(top.size(), 5u);
  EXPECT_EQ(top[0].first, 0u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i].second, top[i - 1].second);
  }
}

TEST(ChronoLiteTest, BurstLeavesBacklogThatDrains) {
  Simulator sim;
  ChronoLiteOptions options;
  options.update_cost = Duration::FromMillis(1);  // slow workers
  ChronoLite engine(&sim, options);
  const auto events = RandomStream(50, 200, 3);
  // Inject the entire stream at one instant (a burst far beyond capacity).
  for (const Event& e : events) engine.Ingest(e);
  sim.RunUntil(sim.Now() + Duration::FromMillis(10));
  size_t total_queued = 0;
  for (size_t i = 0; i < engine.num_workers(); ++i) {
    total_queued += engine.WorkerQueueLength(i);
  }
  EXPECT_GT(total_queued, 50u);
  EXPECT_FALSE(engine.Idle());
  // Eventually the backlog drains and computation completes.
  sim.RunUntilIdle();
  EXPECT_TRUE(engine.Idle());
  EXPECT_EQ(engine.updates_applied(), events.size());
  for (size_t i = 0; i < engine.num_workers(); ++i) {
    EXPECT_EQ(engine.WorkerQueueLength(i), 0u);
  }
}

TEST(ChronoLiteTest, ComputationContinuesAfterStreamEnds) {
  // The Fig. 3d signature: work continues after the last ingest because
  // residual messages are still in flight.
  Simulator sim;
  ChronoLiteOptions options;
  options.pushes_per_message = 1;
  options.pushes_per_idle_task = 2;
  ChronoLite engine(&sim, options);
  const auto events = RandomStream(60, 300, 4);
  for (const Event& e : events) engine.Ingest(e);
  const Timestamp ingest_done = sim.Now();
  sim.RunUntilIdle();
  EXPECT_GT((sim.Now() - ingest_done).millis(), 10);
  EXPECT_TRUE(engine.Idle());
}

TEST(ChronoLiteTest, ResidualMessagesCrossWorkers) {
  Simulator sim;
  ChronoLiteOptions options;
  options.num_workers = 4;
  ChronoLite engine(&sim, options);
  const auto events = RandomStream(40, 160, 5);
  IngestAll(sim, engine, events);
  // Random edges cross partitions, so remote residual traffic must occur.
  EXPECT_GT(engine.residual_messages(), 100u);
}

TEST(ChronoLiteTest, OpsProcessedAccumulate) {
  Simulator sim;
  ChronoLite engine(&sim, ChronoLiteOptions{});
  const auto events = RandomStream(30, 60, 6);
  IngestAll(sim, engine, events);
  uint64_t total_ops = 0;
  for (size_t i = 0; i < engine.num_workers(); ++i) {
    total_ops += engine.WorkerOpsProcessed(i);
  }
  // At least one op per update message.
  EXPECT_GE(total_ops, events.size());
}

TEST(ChronoLiteTest, Level2HooksFire) {
  Simulator sim;
  ChronoLite engine(&sim, ChronoLiteOptions{});
  size_t queue_samples = 0;
  size_t message_samples = 0;
  engine.hooks().Attach("queue_length.0", [&](double) { ++queue_samples; });
  engine.hooks().Attach("message_processed.0",
                        [&](double) { ++message_samples; });
  // Vertex 0 and 4 land on worker 0 (id % 4).
  engine.Ingest(Event::AddVertex(0));
  engine.Ingest(Event::AddVertex(4));
  sim.RunUntilIdle();
  EXPECT_EQ(queue_samples, 2u);
  EXPECT_EQ(message_samples, 2u);
}

TEST(ChronoLiteTest, CollectMetricsHasPerWorkerEntries) {
  Simulator sim;
  ChronoLiteOptions options;
  options.num_workers = 3;
  ChronoLite engine(&sim, options);
  engine.Ingest(Event::AddVertex(1));
  sim.RunUntilIdle();
  const auto metrics = engine.CollectMetrics();
  size_t queue_metrics = 0;
  for (const auto& [name, value] : metrics) {
    if (name.find("queue_length.") == 0) ++queue_metrics;
  }
  EXPECT_EQ(queue_metrics, 3u);
}

TEST(ChronoLiteTest, VertexRemovalDropsRank) {
  Simulator sim;
  ChronoLite engine(&sim, ChronoLiteOptions{});
  std::vector<Event> events = {Event::AddVertex(1), Event::AddVertex(2)};
  IngestAll(sim, engine, events);
  EXPECT_GT(engine.RankOf(2), 0.0);
  engine.Ingest(Event::RemoveVertex(2));
  sim.RunUntilIdle();
  EXPECT_EQ(engine.RankOf(2), 0.0);
}

}  // namespace
}  // namespace graphtides
