#include <gtest/gtest.h>

#include "generator/models/event_mix_model.h"
#include "generator/models/social_network_model.h"
#include "generator/stream_generator.h"
#include "sut/chronolite/experiment.h"
#include "sut/weaverlite/experiment.h"

namespace graphtides {
namespace {

std::vector<Event> Table3Stream(size_t rounds, uint64_t seed) {
  EventMixModelOptions model_options;
  model_options.ba = {500, 20, 5};  // scaled-down Table 3 bootstrap
  EventMixModel model(model_options);
  StreamGeneratorOptions gen_options;
  gen_options.rounds = rounds;
  gen_options.seed = seed;
  auto stream = StreamGenerator(&model, gen_options).Generate();
  EXPECT_TRUE(stream.ok());
  return std::move(stream).value().events;
}

TEST(WeaverExperimentTest, LowRateKeepsPace) {
  WeaverExperimentConfig config;
  config.target_rate_eps = 100.0;
  config.events_per_tx = 1;
  config.max_duration = Duration::FromSeconds(120.0);
  auto result = RunWeaverExperiment(Table3Stream(5000, 1), config);
  ASSERT_TRUE(result.ok());
  // Everything offered is applied (minus nothing: the stream is valid).
  EXPECT_EQ(result->events_applied, result->events_offered);
  // At 100 ev/s the applied rate matches the target.
  const auto& series = result->processed_per_interval;
  ASSERT_GT(series.size(), 10u);
  // Steady-state interval throughput ~100 events/s.
  EXPECT_NEAR(series[5], 100.0, 15.0);
}

TEST(WeaverExperimentTest, HighRateHitsCeiling) {
  WeaverExperimentConfig config;
  config.target_rate_eps = 10000.0;
  config.events_per_tx = 1;
  config.max_duration = Duration::FromSeconds(10.0);
  auto result = RunWeaverExperiment(Table3Stream(60000, 2), config);
  ASSERT_TRUE(result.ok());
  // ~1087 ev/s ceiling regardless of the 10k target.
  EXPECT_LT(result->AppliedRateEps(), 2000.0);
  EXPECT_GT(result->AppliedRateEps(), 700.0);
}

TEST(WeaverExperimentTest, BatchingShiftsCeiling) {
  WeaverExperimentConfig config;
  config.target_rate_eps = 10000.0;
  config.max_duration = Duration::FromSeconds(10.0);
  config.events_per_tx = 1;
  auto single = RunWeaverExperiment(Table3Stream(60000, 3), config);
  config.events_per_tx = 10;
  auto batched = RunWeaverExperiment(Table3Stream(60000, 3), config);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(batched.ok());
  EXPECT_GT(batched->AppliedRateEps(), 4.0 * single->AppliedRateEps());
}

TEST(WeaverExperimentTest, LogContainsExpectedSources) {
  WeaverExperimentConfig config;
  config.target_rate_eps = 500.0;
  config.events_per_tx = 10;
  config.max_duration = Duration::FromSeconds(30.0);
  auto result = RunWeaverExperiment(Table3Stream(5000, 4), config);
  ASSERT_TRUE(result.ok());
  const auto sources = result->log.Sources();
  auto has = [&](const std::string& s) {
    return std::find(sources.begin(), sources.end(), s) != sources.end();
  };
  EXPECT_TRUE(has("client"));
  EXPECT_TRUE(has("weaver-timestamper"));
  EXPECT_TRUE(has("weaver-shard-0"));
  // Marker records from the generator's phase markers.
  EXPECT_FALSE(result->log.Filter("replayer", "marker").empty());
}

TEST(WeaverExperimentTest, RejectsZeroBatch) {
  WeaverExperimentConfig config;
  config.events_per_tx = 0;
  auto result = RunWeaverExperiment({}, config);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

std::vector<Event> SocialStream(size_t rounds, uint64_t seed) {
  SocialNetworkModel model;
  StreamGeneratorOptions gen_options;
  gen_options.rounds = rounds;
  gen_options.seed = seed;
  auto stream = StreamGenerator(&model, gen_options).Generate();
  EXPECT_TRUE(stream.ok());
  return std::move(stream).value().events;
}

TEST(ChronographExperimentTest, SmallRunCompletes) {
  ChronographExperimentConfig config;
  config.base_rate_eps = 2000.0;
  config.max_duration = Duration::FromSeconds(60.0);
  config.track_top_k = 5;
  auto result = RunChronographExperiment(SocialStream(10000, 5), config);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->events_ingested, 9000u);
  EXPECT_EQ(result->events_ingested, result->updates_applied);
  EXPECT_EQ(result->tracked_users.size(), 5u);
  EXPECT_FALSE(result->replay_rate.empty());
  EXPECT_EQ(result->worker_ops_rate.size(), config.engine.num_workers);
  EXPECT_FALSE(result->rank_error.empty());
}

TEST(ChronographExperimentTest, WatermarkLatenciesMeasured) {
  ChronographExperimentConfig config;
  config.base_rate_eps = 2000.0;
  config.max_duration = Duration::FromSeconds(60.0);
  std::vector<Event> stream = SocialStream(8000, 11);
  stream = ApplyControlSchedule(std::move(stream),
                                {{2000, Event::Marker("WM_A")},
                                 {6000, Event::Marker("WM_B")}});
  auto result = RunChronographExperiment(stream, config);
  ASSERT_TRUE(result.ok());
  // WM_A, WM_B plus the generator's BOOTSTRAP_DONE / STREAM_END markers.
  ASSERT_GE(result->marker_latency.size(), 2u);
  const MarkerLatencySample* wm_a = nullptr;
  const MarkerLatencySample* wm_b = nullptr;
  for (const MarkerLatencySample& m : result->marker_latency) {
    EXPECT_GT(m.latency.nanos(), 0);
    EXPECT_LT(m.latency.seconds(), 60.0);
    if (m.label == "WM_A") wm_a = &m;
    if (m.label == "WM_B") wm_b = &m;
  }
  ASSERT_NE(wm_a, nullptr);
  ASSERT_NE(wm_b, nullptr);
  EXPECT_LT(wm_a->sent, wm_b->sent);
}

TEST(ChronographExperimentTest, PauseVisibleInReplayRate) {
  ChronographExperimentConfig config;
  config.base_rate_eps = 2000.0;
  config.max_duration = Duration::FromSeconds(60.0);
  // 4000 events at 2000 ev/s = 2 s, then a 5 s pause, then the rest.
  std::vector<Event> stream = SocialStream(8000, 6);
  stream = ApplyControlSchedule(
      std::move(stream), {{4000, Event::Pause(Duration::FromSeconds(5.0))}});
  auto result = RunChronographExperiment(stream, config);
  ASSERT_TRUE(result.ok());
  // Some 1-second sample inside the pause shows (near-)zero replay rate.
  bool saw_pause = false;
  for (size_t i = 1; i + 1 < result->replay_rate.size(); ++i) {
    if (result->replay_rate[i] < 100.0) saw_pause = true;
  }
  EXPECT_TRUE(saw_pause);
}

TEST(ChronographExperimentTest, RankErrorDeclinesAfterDrain) {
  ChronographExperimentConfig config;
  config.base_rate_eps = 5000.0;
  config.max_duration = Duration::FromSeconds(120.0);
  config.error_interval = Duration::FromSeconds(2.0);
  auto result = RunChronographExperiment(SocialStream(15000, 7), config);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->rank_error.size(), 2u);
  // The last measurement (after drain) beats the worst mid-stream error.
  double worst = 0.0;
  for (const RankErrorSample& s : result->rank_error) {
    worst = std::max(worst, s.median_relative_error);
  }
  EXPECT_LE(result->rank_error.back().median_relative_error, worst);
  // And the final error is modest once the computation catches up. It does
  // not reach zero: churn (unfollows/departures) leaves unreclaimed
  // propagated mass — the same residual inaccuracy the paper reports for
  // Chronograph's online rank (Fig. 3d shows errors up to 100%).
  EXPECT_LT(result->rank_error.back().median_relative_error, 0.3);
}

TEST(ChronographExperimentTest, QueueBacklogUnderDoubledRate) {
  ChronographExperimentConfig config;
  config.base_rate_eps = 2000.0;
  config.max_duration = Duration::FromSeconds(120.0);
  // Double the rate for the second half.
  std::vector<Event> stream = SocialStream(16000, 8);
  stream = ApplyControlSchedule(std::move(stream),
                                {{8000, Event::SetRate(2.0)}});
  auto result = RunChronographExperiment(stream, config);
  ASSERT_TRUE(result.ok());
  // Peak queue length over the run exceeds the steady-state start.
  double early_max = 0.0;
  double overall_max = 0.0;
  for (const auto& series : result->worker_queue_length) {
    for (size_t i = 0; i < series.size(); ++i) {
      if (i < 3) early_max = std::max(early_max, series[i]);
      overall_max = std::max(overall_max, series[i]);
    }
  }
  EXPECT_GT(overall_max, early_max);
}

}  // namespace
}  // namespace graphtides
