#include "sut/weaverlite/weaverlite.h"

#include <gtest/gtest.h>

namespace graphtides {
namespace {

std::vector<Event> SmallGraphStream() {
  std::vector<Event> events;
  for (VertexId v = 0; v < 10; ++v) events.push_back(Event::AddVertex(v));
  for (VertexId v = 0; v + 1 < 10; ++v) {
    events.push_back(Event::AddEdge(v, v + 1));
  }
  return events;
}

TEST(WeaverLiteTest, AppliesSubmittedTransactions) {
  Simulator sim;
  WeaverLite store(&sim, WeaverLiteOptions{});
  ASSERT_TRUE(store.TrySubmit(SmallGraphStream()));
  sim.RunUntilIdle();
  EXPECT_EQ(store.transactions_committed(), 1u);
  EXPECT_EQ(store.events_applied(), 19u);
  EXPECT_EQ(store.TotalVertices(), 10u);
  EXPECT_EQ(store.TotalEdges(), 9u);
  EXPECT_EQ(store.ops_rejected(), 0u);
}

TEST(WeaverLiteTest, ValidationRejectsBadOps) {
  Simulator sim;
  WeaverLite store(&sim, WeaverLiteOptions{});
  ASSERT_TRUE(store.TrySubmit({Event::AddVertex(1), Event::AddVertex(1),
                               Event::AddEdge(1, 99)}));
  sim.RunUntilIdle();
  EXPECT_EQ(store.events_applied(), 1u);
  EXPECT_EQ(store.ops_rejected(), 2u);
  EXPECT_EQ(store.TotalVertices(), 1u);
}

TEST(WeaverLiteTest, DataLandsOnShards) {
  Simulator sim;
  WeaverLiteOptions options;
  options.num_shards = 2;
  WeaverLite store(&sim, options);
  ASSERT_TRUE(store.TrySubmit(SmallGraphStream()));
  sim.RunUntilIdle();
  // Vertices are hash-partitioned: evens on shard 0, odds on shard 1.
  EXPECT_TRUE(store.shard_graph(0).HasVertex(0));
  EXPECT_TRUE(store.shard_graph(0).HasVertex(2));
  EXPECT_TRUE(store.shard_graph(1).HasVertex(1));
  // Edge v -> v+1 lives on the source's shard.
  EXPECT_TRUE(store.shard_graph(0).HasEdge(0, 1));
  EXPECT_TRUE(store.shard_graph(1).HasEdge(1, 2));
}

TEST(WeaverLiteTest, AdmissionQueueBackpressure) {
  Simulator sim;
  WeaverLiteOptions options;
  options.admission_queue_capacity = 2;
  WeaverLite store(&sim, options);
  // Burst of submissions without running the simulator: the first is
  // pulled into the timestamper, two wait, the rest are refused.
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    std::vector<Event> tx = {Event::AddVertex(static_cast<VertexId>(i))};
    if (store.TrySubmit(std::move(tx))) ++accepted;
  }
  EXPECT_EQ(accepted, 3);
  EXPECT_TRUE(store.AdmissionFull());
  sim.RunUntilIdle();
  EXPECT_EQ(store.events_applied(), 3u);
  // Queue drained: submissions accepted again.
  EXPECT_TRUE(store.TrySubmit({Event::AddVertex(100)}));
  sim.RunUntilIdle();
  EXPECT_EQ(store.events_applied(), 4u);
}

TEST(WeaverLiteTest, OnTransactionDoneFires) {
  Simulator sim;
  WeaverLite store(&sim, WeaverLiteOptions{});
  int done = 0;
  store.SetOnTransactionDone([&] { ++done; });
  ASSERT_TRUE(store.TrySubmit({Event::AddVertex(1)}));
  ASSERT_TRUE(store.TrySubmit({Event::AddVertex(2)}));
  sim.RunUntilIdle();
  EXPECT_EQ(done, 2);
}

TEST(WeaverLiteTest, ThroughputCappedByTimestamper) {
  // Timestamper cost 1 ms/tx -> at most ~1000 tx/s regardless of load.
  Simulator sim;
  WeaverLiteOptions options;
  options.timestamper_cost_per_tx = Duration::FromMillis(1);
  options.timestamper_cost_per_op = Duration::Zero();
  options.admission_queue_capacity = 8;
  WeaverLite store(&sim, options);

  // Offer one single-event transaction every 100 us for 1 s (10000 tx).
  size_t offered = 0;
  size_t refused = 0;
  for (int i = 0; i < 10000; ++i) {
    sim.ScheduleAt(Timestamp::FromMicros(i * 100), [&, i] {
      ++offered;
      if (!store.TrySubmit({Event::AddVertex(static_cast<VertexId>(i))})) {
        ++refused;
      }
    });
  }
  sim.RunUntil(Timestamp::FromSeconds(1.0));
  EXPECT_EQ(offered, 10000u);
  // Roughly 1000 committed in the first virtual second; most refused.
  EXPECT_LE(store.transactions_committed(), 1100u);
  EXPECT_GE(store.transactions_committed(), 900u);
  EXPECT_GT(refused, 8000u);
}

TEST(WeaverLiteTest, BatchingRaisesEventThroughput) {
  auto run = [](size_t batch) {
    Simulator sim;
    WeaverLiteOptions options;
    options.timestamper_cost_per_tx = Duration::FromMicros(900);
    options.timestamper_cost_per_op = Duration::FromMicros(20);
    WeaverLite store(&sim, options);
    // Saturate: submit whenever there is room, for 1 virtual second.
    VertexId next = 0;
    std::function<void()> pump = [&] {
      while (!store.AdmissionFull()) {
        std::vector<Event> tx;
        for (size_t k = 0; k < batch; ++k) {
          tx.push_back(Event::AddVertex(next++));
        }
        if (!store.TrySubmit(std::move(tx))) break;
      }
    };
    store.SetOnTransactionDone(pump);
    pump();
    sim.RunUntil(Timestamp::FromSeconds(1.0));
    return store.events_applied();
  };
  const uint64_t single = run(1);
  const uint64_t batched = run(10);
  // 1 evt/tx: ~1087 ev/s. 10 evts/tx: ~9090 ev/s.
  EXPECT_GT(batched, 5 * single);
  EXPECT_NEAR(static_cast<double>(single), 1087.0, 120.0);
  EXPECT_NEAR(static_cast<double>(batched), 9090.0, 900.0);
}

TEST(WeaverLiteTest, TimestamperSaturatesBeforeShards) {
  Simulator sim;
  WeaverLiteOptions options;
  WeaverLite store(&sim, options);
  VertexId next = 0;
  std::function<void()> pump = [&] {
    while (!store.AdmissionFull()) {
      std::vector<Event> tx;
      for (size_t k = 0; k < 10; ++k) tx.push_back(Event::AddVertex(next++));
      if (!store.TrySubmit(std::move(tx))) break;
    }
  };
  store.SetOnTransactionDone(pump);
  pump();
  sim.RunUntil(Timestamp::FromSeconds(5.0));
  const auto ts_util = store.timestamper().UtilizationSeries(sim.Now());
  const auto shard_util = store.shard(0).UtilizationSeries(sim.Now());
  ASSERT_GE(ts_util.size(), 4u);
  // Timestamper pinned at ~100%, shards well below (Fig. 3c shape).
  EXPECT_GT(ts_util[2], 0.95);
  ASSERT_GE(shard_util.size(), 4u);
  EXPECT_LT(shard_util[2], 0.8 * ts_util[2]);
}

TEST(WeaverLiteTest, CollectMetricsExposesCounters) {
  Simulator sim;
  WeaverLite store(&sim, WeaverLiteOptions{});
  ASSERT_TRUE(store.TrySubmit(SmallGraphStream()));
  sim.RunUntilIdle();
  const auto metrics = store.CollectMetrics();
  bool found_events = false;
  for (const auto& [name, value] : metrics) {
    if (name == "events_applied") {
      found_events = true;
      EXPECT_DOUBLE_EQ(value, 19.0);
    }
  }
  EXPECT_TRUE(found_events);
}

TEST(WeaverLiteTest, RemoveVertexFansOutToAllShards) {
  Simulator sim;
  WeaverLiteOptions options;
  options.num_shards = 2;
  WeaverLite store(&sim, options);
  // Edges from both shards into vertex 2.
  ASSERT_TRUE(store.TrySubmit({Event::AddVertex(1), Event::AddVertex(2),
                               Event::AddVertex(3), Event::AddVertex(4),
                               Event::AddEdge(1, 2), Event::AddEdge(4, 2),
                               Event::AddEdge(3, 2)}));
  sim.RunUntilIdle();
  ASSERT_TRUE(store.TrySubmit({Event::RemoveVertex(2)}));
  sim.RunUntilIdle();
  EXPECT_EQ(store.TotalVertices(), 3u);
  EXPECT_EQ(store.TotalEdges(), 0u);
  EXPECT_FALSE(store.shard_graph(0).HasVertex(2));
  EXPECT_FALSE(store.shard_graph(1).HasEdge(1, 2));
  EXPECT_FALSE(store.shard_graph(1).HasEdge(3, 2));
  EXPECT_FALSE(store.shard_graph(0).HasEdge(4, 2));
}

}  // namespace
}  // namespace graphtides
