// Blockchain use case (§2.4): consume a stream of ledger transactions,
// maintain the combined transaction/wallet graph, and provide live
// statistics — balances, average transaction values, and the distribution
// of holdings over time.
//
// Build & run:  ./build/examples/blockchain_monitor
#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "algorithms/communities.h"
#include "algorithms/statistics.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "generator/models/blockchain_model.h"
#include "generator/stream_generator.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "sim/virtual_replayer.h"

using namespace graphtides;

namespace {

/// Pulls `"key":<int>` out of the JSON-ish state payloads the blockchain
/// model writes.
int64_t ExtractInt(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return 0;
  size_t end = pos + needle.size();
  while (end < json.size() &&
         (std::isdigit(static_cast<unsigned char>(json[end])) ||
          json[end] == '-')) {
    ++end;
  }
  auto parsed = ParseInt64(
      std::string_view(json).substr(pos + needle.size(),
                                    end - pos - needle.size()));
  return parsed.ok() ? *parsed : 0;
}

}  // namespace

int main() {
  BlockchainModelOptions model_options;
  model_options.initial_wallets = 200;
  model_options.initial_balance = 1000000;
  BlockchainModel model(model_options);
  StreamGeneratorOptions gen_options;
  gen_options.rounds = 50000;
  gen_options.seed = 99;
  auto generated = StreamGenerator(&model, gen_options).Generate();
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  std::printf("ledger stream: %zu events\n", generated->events.size());

  Simulator sim;
  VirtualReplayerOptions replay_options;
  replay_options.base_rate_eps = 5000.0;
  VirtualReplayer replayer(&sim, replay_options);

  Graph graph;
  // Live statistics maintained from the stream alone.
  RunningStats tx_values;
  uint64_t transactions = 0;
  std::unordered_map<VertexId, int64_t> balances;  // from balance snapshots

  // Periodic dashboard lines.
  Duration report_every = Duration::FromSeconds(2.0);
  Timestamp next_report = Timestamp() + report_every;

  replayer.Start(generated->events, [&](const Event& e, size_t) {
    if (!graph.Apply(e).ok()) return;
    switch (e.type) {
      case EventType::kAddEdge:
      case EventType::kUpdateEdge: {
        const int64_t amount = ExtractInt(e.payload, "amount");
        if (amount > 0) {
          ++transactions;
          tx_values.Add(static_cast<double>(amount));
        }
        break;
      }
      case EventType::kAddVertex:
      case EventType::kUpdateVertex:
        balances[e.vertex] = ExtractInt(e.payload, "balance");
        break;
      default:
        break;
    }
    if (sim.Now() >= next_report) {
      next_report = next_report + report_every;
      std::printf(
          "t=%5.1fs  wallets=%5zu channels=%6zu txs=%7llu avg_value=%9.1f\n",
          sim.Now().seconds(), graph.num_vertices(), graph.num_edges(),
          static_cast<unsigned long long>(transactions), tx_values.mean());
    }
  });
  sim.RunUntilIdle();

  // Final report: holdings distribution and exchange-like hubs.
  std::printf("\n--- final ledger state ---\n");
  std::printf("transactions: %llu, mean value %.1f (min %.0f / max %.0f)\n",
              static_cast<unsigned long long>(transactions), tx_values.mean(),
              tx_values.min(), tx_values.max());

  std::vector<int64_t> holdings;
  for (const auto& [wallet, balance] : balances) {
    holdings.push_back(balance);
  }
  std::sort(holdings.rbegin(), holdings.rend());
  int64_t total = 0;
  for (int64_t h : holdings) total += h;
  if (!holdings.empty() && total > 0) {
    int64_t top_decile = 0;
    const size_t decile = std::max<size_t>(1, holdings.size() / 10);
    for (size_t i = 0; i < decile; ++i) top_decile += holdings[i];
    std::printf(
        "holdings (from %zu snapshotted wallets): top 10%% of wallets hold "
        "%.1f%% of snapshotted supply\n",
        holdings.size(),
        100.0 * static_cast<double>(top_decile) / static_cast<double>(total));
  }

  const CsrGraph csr = CsrGraph::FromGraph(graph);
  const GraphStatistics stats = ComputeGraphStatistics(csr);
  std::printf("transaction graph: %s\n", stats.ToString().c_str());
  const auto cores = CoreNumbers(csr);
  uint32_t max_core = 0;
  for (uint32_t c : cores) max_core = std::max(max_core, c);
  std::printf("densest trading core: k = %u\n", max_core);
  return 0;
}
