// Quickstart: the minimal GraphTides loop.
//
//  1. generate a graph stream (social-network model),
//  2. write it to a stream file and replay it at a fixed rate,
//  3. maintain a graph and an online influence rank while ingesting,
//  4. compare the online approximation against the exact batch result.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <filesystem>

#include "algorithms/online_pagerank.h"
#include "algorithms/pagerank.h"
#include "generator/models/social_network_model.h"
#include "generator/stream_generator.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "replayer/replayer.h"
#include "stream/statistics.h"
#include "stream/stream_file.h"

using namespace graphtides;

int main() {
  // --- 1. Generate -------------------------------------------------------
  SocialNetworkModel model;
  StreamGeneratorOptions gen_options;
  gen_options.rounds = 20000;
  gen_options.seed = 7;
  gen_options.marker_interval = 5000;
  StreamGenerator generator(&model, gen_options);
  auto generated = generator.Generate();
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %zu events (%zu bootstrap, %zu evolution)\n",
              generated->events.size(), generated->bootstrap_events,
              generated->evolution_events);
  std::printf("%s\n",
              ComputeStreamStatistics(generated->events).ToString().c_str());

  // --- 2. Write + replay -------------------------------------------------
  const std::string path =
      (std::filesystem::temp_directory_path() / "quickstart.gts").string();
  if (Status st = WriteStreamFile(path, generated->events); !st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }

  Graph graph;
  OnlinePageRank rank;
  CallbackSink sink([&](const Event& e) {
    GT_RETURN_NOT_OK(graph.Apply(e));
    rank.OnEventApplied(e);
    rank.ProcessPending(32);  // online computation interleaved with ingest
    return Status::OK();
  });

  ReplayerOptions replay_options;
  replay_options.base_rate_eps = 100000.0;
  StreamReplayer replayer(replay_options);
  auto stats = replayer.ReplayFile(path, &sink);
  std::filesystem::remove(path);
  if (!stats.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("replayed %zu events in %.2f s (%.0f events/s achieved)\n",
              stats->events_delivered, stats->Elapsed().seconds(),
              stats->AchievedRateEps());
  for (const MarkerRecord& m : stats->marker_log) {
    std::printf("  marker %-16s after %zu events\n", m.label.c_str(),
                m.events_before);
  }

  // --- 3. Drain the online computation ------------------------------------
  while (rank.HasPendingWork()) rank.ProcessPending(100000);

  // --- 4. Compare against the exact batch result --------------------------
  const CsrGraph csr = CsrGraph::FromGraph(graph);
  const PageRankResult exact = PageRank(csr);
  std::printf("\nfinal graph: %zu vertices, %zu edges\n",
              graph.num_vertices(), graph.num_edges());
  std::printf("top influencers (online vs exact):\n");
  for (CsrGraph::Index idx : TopKByRank(exact.ranks, 5)) {
    const VertexId user = csr.IdOf(idx);
    std::printf("  user %-8llu online=%.5f exact=%.5f\n",
                static_cast<unsigned long long>(user), rank.RankOf(user),
                exact.ranks[idx]);
  }
  std::vector<double> approx(csr.num_vertices(), 0.0);
  for (CsrGraph::Index v = 0; v < csr.num_vertices(); ++v) {
    approx[v] = rank.RankOf(csr.IdOf(v));
  }
  std::printf("median relative rank error: %.4f\n",
              MedianRelativeError(approx, exact.ranks));
  return 0;
}
