// DDoS detection use case (§2.4): a stream-based graph system supervises a
// set of servers, modelling flows between clients and servers. Individual
// flows look benign; the aggregated graph view exposes the attack — a surge
// of fresh sources and traffic converging on one server — and produces a
// blacklist of attacking clients.
//
// Build & run:  ./build/examples/ddos_detection
#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

#include "analysis/time_series.h"
#include "analysis/trend.h"
#include "generator/models/ddos_model.h"
#include "generator/stream_generator.h"
#include "graph/graph.h"
#include "sim/virtual_replayer.h"

using namespace graphtides;

int main() {
  // Attack windows in evolution rounds; at 2000 ev/s the first attack runs
  // t = 10 s .. 17.5 s, the second t = 30 s .. 35 s.
  DdosModelOptions model_options;
  model_options.attacks = {{20000, 35000}, {60000, 70000}};
  DdosModel model(model_options);
  StreamGeneratorOptions gen_options;
  gen_options.rounds = 80000;
  gen_options.seed = 1337;
  auto generated = StreamGenerator(&model, gen_options).Generate();
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  std::printf("monitoring %zu servers; stream of %zu events\n",
              model.servers().size(), generated->events.size());

  Simulator sim;
  VirtualReplayerOptions replay_options;
  replay_options.base_rate_eps = 2000.0;
  VirtualReplayer replayer(&sim, replay_options);

  Graph graph;
  // Per-server inbound traffic trend (new flows + flow updates).
  TrendDetectorOptions trend_options;
  trend_options.window = Duration::FromSeconds(2.0);
  trend_options.growth_factor = 3.0;
  trend_options.min_count = 100;
  TrendDetector inbound(trend_options);

  TimeSeries alarm_series("alarm");
  std::unordered_set<VertexId> blacklist;
  bool under_attack = false;
  VertexId suspected_victim = 0;
  Timestamp attack_detected_at;
  struct Alarm {
    Timestamp time;
    VertexId server;
    uint64_t window_count;
  };
  std::vector<Alarm> alarms;
  // Absolute thresholds with hysteresis: onset needs both growth and a
  // large absolute inbound count; the alarm holds until inbound pressure
  // falls back to normal levels.
  constexpr uint64_t kOnsetCount = 1200;
  constexpr uint64_t kClearCount = 1000;

  size_t events_seen = 0;
  replayer.Start(generated->events, [&](const Event& e, size_t) {
    if (!graph.Apply(e).ok()) return;
    ++events_seen;
    // Inbound pressure signal: every flow creation or update counts toward
    // its destination server.
    if (e.type == EventType::kAddEdge || e.type == EventType::kUpdateEdge) {
      inbound.Observe(e.edge.dst, sim.Now());
    }
    if (events_seen % 500 != 0) return;

    if (!under_attack) {
      const auto trending = inbound.TrendingAt(sim.Now());
      if (!trending.empty() && trending[0].current_count >= kOnsetCount) {
        under_attack = true;
        suspected_victim = trending[0].key;
        attack_detected_at = sim.Now();
        alarms.push_back(
            {sim.Now(), trending[0].key, trending[0].current_count});
        std::printf(
            "t=%6.1fs  ALERT: server %llu inbound x%.1f (%llu evts in "
            "window)\n",
            sim.Now().seconds(),
            static_cast<unsigned long long>(trending[0].key),
            trending[0].growth,
            static_cast<unsigned long long>(trending[0].current_count));
      }
    } else if (inbound.CountInWindow(suspected_victim, sim.Now()) <
               kClearCount) {
      under_attack = false;
      std::printf("t=%6.1fs  attack on server %llu subsided\n",
                  sim.Now().seconds(),
                  static_cast<unsigned long long>(suspected_victim));
    }
    alarm_series.Add(sim.Now(), under_attack ? 1.0 : 0.0);

    // While under attack: blacklist clients whose flows into the victim
    // carry attack-scale traffic — graph-level evidence individual flows
    // cannot give.
    if (under_attack) {
      graph.ForEachInEdge(suspected_victim, [&](VertexId client) {
        const auto flow = graph.GetEdgeState(client, suspected_victim);
        if (!flow.ok()) return;
        // Flow states look like {"bytes":<n>,"pkts":<n>}; attack flows
        // carry an order of magnitude more bytes than benign ones.
        const size_t pos = flow.value().find("\"bytes\":");
        if (pos == std::string::npos) return;
        const long long bytes =
            std::atoll(flow.value().c_str() + pos + 8);
        if (bytes > 50000) blacklist.insert(client);
      });
    }
  });
  sim.RunUntilIdle();

  std::printf("\nfinal graph: %zu hosts, %zu flows\n", graph.num_vertices(),
              graph.num_edges());
  std::printf("true victim: server %llu; suspected victim: %llu (%s)\n",
              static_cast<unsigned long long>(model.victim()),
              static_cast<unsigned long long>(suspected_victim),
              suspected_victim == model.victim() ? "correct" : "WRONG");

  // Score the blacklist against ground truth (botnet-labelled states).
  size_t true_bots = 0;
  size_t blacklisted_bots = 0;
  graph.ForEachVertex([&](VertexId v, const std::string& state) {
    if (state.find("botnet") != std::string::npos) {
      ++true_bots;
      if (blacklist.contains(v)) ++blacklisted_bots;
    }
  });
  size_t false_positives = 0;
  for (VertexId v : blacklist) {
    const auto state = graph.GetVertexState(v);
    if (state.ok() && state.value().find("botnet") == std::string::npos) {
      ++false_positives;
    }
  }
  std::printf("blacklist: %zu hosts; catches %zu/%zu surviving bots, %zu "
              "false positives\n",
              blacklist.size(), blacklisted_bots, true_bots,
              false_positives);
  return 0;
}
