// Evaluating a stream-based graph platform with the GraphTides harness —
// the framework's own use case (Fig. 2, §4.5). Runs a scaled-down version
// of both paper experiments against the bundled simulated systems:
//
//   * a Level-0 write-throughput evaluation of the weaverlite store
//     (ingress scalability under two transaction batchings), compared with
//     confidence intervals over repeated runs, and
//   * a Level-2 evaluation of the chronolite engine under varying stream
//     load, producing the merged, chronologically sorted result log.
//
// The merged result log of the chronolite run is written to
// chronograph_result_log.csv in the current directory.
//
// Build & run:  ./build/examples/evaluate_platform
#include <cstdio>

#include "generator/models/event_mix_model.h"
#include "generator/models/social_network_model.h"
#include "generator/stream_generator.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "sut/chronolite/experiment.h"
#include "sut/weaverlite/experiment.h"

using namespace graphtides;

namespace {

std::vector<Event> MakeMixStream(size_t rounds, uint64_t seed) {
  EventMixModelOptions options;  // Table 3 mix
  options.ba = {1000, 25, 10};
  EventMixModel model(options);
  StreamGeneratorOptions gen;
  gen.rounds = rounds;
  gen.seed = seed;
  auto stream = StreamGenerator(&model, gen).Generate();
  if (!stream.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 stream.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(stream).value().events;
}

}  // namespace

int main() {
  // --- Part 1: Level-0 comparison with repetitions and CI95 ----------------
  std::printf("%s", SectionHeader("weaverlite write throughput (Level 0)").c_str());
  ExperimentOptions exp_options;
  exp_options.repetitions = 10;  // scaled down from the paper's n >= 30
  ExperimentRunner runner({{"events_per_tx", {1, 10}}}, exp_options);
  auto results = runner.Run(
      [](const ExperimentConfig& config, uint64_t seed) -> Result<RunOutcome> {
        WeaverExperimentConfig weaver;
        weaver.target_rate_eps = 10000.0;
        weaver.events_per_tx = static_cast<size_t>(config.at("events_per_tx"));
        weaver.max_duration = Duration::FromSeconds(10.0);
        GT_ASSIGN_OR_RETURN(const WeaverExperimentResult run,
                            RunWeaverExperiment(MakeMixStream(30000, seed),
                                                weaver));
        return RunOutcome{{"applied_rate_eps", run.AppliedRateEps()}};
      });
  if (!results.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }
  TextTable table({"events/tx", "mean rate [ev/s]", "CI95 low", "CI95 high"});
  for (const ConfigResult& r : *results) {
    const MetricAggregate& agg = r.metrics.at("applied_rate_eps");
    table.AddRow({TextTable::FormatDouble(r.config.at("events_per_tx"), 0),
                  TextTable::FormatDouble(agg.ci.mean, 1),
                  TextTable::FormatDouble(agg.ci.lower, 1),
                  TextTable::FormatDouble(agg.ci.upper, 1)});
  }
  std::printf("%s", table.ToString().c_str());
  const Comparison cmp = CompareByConfidenceIntervals(
      (*results)[0].metrics.at("applied_rate_eps").samples,
      (*results)[1].metrics.at("applied_rate_eps").samples);
  std::printf("batching effect significant at CI95: %s (mean diff %.1f ev/s)\n",
              cmp.significant ? "yes" : "no", cmp.mean_difference);

  // --- Part 2: Level-2 run with result-log output ---------------------------
  std::printf("%s", SectionHeader("chronolite under varying load (Level 2)").c_str());
  SocialNetworkModel social;
  StreamGeneratorOptions gen;
  gen.rounds = 20000;
  gen.seed = 77;
  auto social_stream = StreamGenerator(&social, gen).Generate();
  if (!social_stream.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 social_stream.status().ToString().c_str());
    return 1;
  }
  // Pause + doubled-rate schedule, Table 4 style.
  std::vector<Event> stream = ApplyControlSchedule(
      std::move(social_stream).value().events,
      {{10000, Event::Pause(Duration::FromSeconds(5.0))},
       {10000, Event::SetRate(2.0)},
       {15000, Event::SetRate(1.0)}});

  ChronographExperimentConfig chrono;
  chrono.base_rate_eps = 2000.0;
  chrono.max_duration = Duration::FromSeconds(120.0);
  // Coarser push threshold: the online result is a bit less precise but
  // the computation backlog drains within the observation window.
  chrono.engine.rank.push_threshold = 0.02;
  auto run = RunChronographExperiment(stream, chrono);
  if (!run.ok()) {
    std::fprintf(stderr, "chronolite run failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  std::printf("ingested %llu events over %.1f virtual seconds "
              "(stream done at %.1f s, drained at %.1f s)\n",
              static_cast<unsigned long long>(run->events_ingested),
              run->virtual_duration.seconds(),
              run->stream_finished_at.seconds(), run->drained_at.seconds());
  std::printf("residual messages exchanged: %llu\n",
              static_cast<unsigned long long>(run->residual_messages));
  if (!run->rank_error.empty()) {
    std::printf("median relative rank error: first %.3f -> last %.3f\n",
                run->rank_error.front().median_relative_error,
                run->rank_error.back().median_relative_error);
  }
  const Status st = run->log.WriteCsv("chronograph_result_log.csv");
  if (st.ok()) {
    std::printf("merged result log (%zu records) -> "
                "chronograph_result_log.csv\n",
                run->log.size());
  }
  return 0;
}
