// Social-network use case (§2.4): maintain per-user influence ranks on an
// evolving follower graph and detect trending users — accounts that attract
// disproportionately many new followers within a sliding window.
//
// The stream contains an organic phase and a "viral moment" phase in which
// one mid-tier user suddenly attracts followers; the trend detector flags
// the account long before it tops the influence ranking.
//
// Build & run:  ./build/examples/social_network
#include <algorithm>
#include <cstdio>

#include "algorithms/online_pagerank.h"
#include "analysis/trend.h"
#include "generator/models/social_network_model.h"
#include "generator/stream_generator.h"
#include "graph/graph.h"
#include "sim/virtual_replayer.h"

using namespace graphtides;

namespace {

/// A model wrapper that makes one existing user go viral in a round window:
/// during the window most follow edges target the chosen user.
class ViralMomentModel : public SocialNetworkModel {
 public:
  ViralMomentModel(uint64_t viral_start, uint64_t viral_end)
      : viral_start_(viral_start), viral_end_(viral_end) {}

  std::optional<EdgeId> SelectEdge(EventType type,
                                   GeneratorContext& ctx) override {
    if (type == EventType::kAddEdge && InViralWindow(ctx.round())) {
      if (viral_user_ == 0) {
        // Pick a low-profile existing user when the moment starts.
        auto pick = ctx.topology().DegreeBiasedVertex(ctx.rng(), -0.5);
        if (pick.has_value()) viral_user_ = *pick;
      }
      if (viral_user_ != 0 && ctx.rng().NextBool(0.8)) {
        for (int attempt = 0; attempt < 16; ++attempt) {
          auto follower = ctx.topology().UniformVertex(ctx.rng());
          if (follower.has_value() && *follower != viral_user_ &&
              !ctx.topology().HasEdge(*follower, viral_user_)) {
            return EdgeId{*follower, viral_user_};
          }
        }
      }
    }
    return SocialNetworkModel::SelectEdge(type, ctx);
  }

  VertexId viral_user() const { return viral_user_; }

 private:
  bool InViralWindow(uint64_t round) const {
    return round >= viral_start_ && round < viral_end_;
  }
  uint64_t viral_start_;
  uint64_t viral_end_;
  VertexId viral_user_ = 0;
};

}  // namespace

int main() {
  constexpr uint64_t kViralStart = 20000;
  constexpr uint64_t kViralEnd = 26000;
  ViralMomentModel model(kViralStart, kViralEnd);
  StreamGeneratorOptions gen_options;
  gen_options.rounds = 40000;
  gen_options.seed = 2024;
  auto generated = StreamGenerator(&model, gen_options).Generate();
  if (!generated.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }
  std::printf("stream: %zu events; viral user id: %llu\n",
              generated->events.size(),
              static_cast<unsigned long long>(model.viral_user()));

  // Stream through a virtual-time replayer at 2000 events/s so the trend
  // windows mean something, while the whole run takes milliseconds of wall
  // time.
  Simulator sim;
  VirtualReplayerOptions replay_options;
  replay_options.base_rate_eps = 2000.0;
  VirtualReplayer replayer(&sim, replay_options);

  Graph graph;
  OnlinePageRank rank;
  TrendDetectorOptions trend_options;
  trend_options.window = Duration::FromSeconds(3.0);
  trend_options.growth_factor = 4.0;
  trend_options.min_count = 25;
  TrendDetector trends(trend_options);

  Timestamp first_trend_time;
  VertexId first_trend_user = 0;
  // Skip the bootstrap burst: trends are meaningless until organic load
  // has filled two detector windows.
  const Timestamp warmup_until =
      Timestamp() + trend_options.window + trend_options.window;

  size_t edge_count = 0;
  replayer.Start(generated->events, [&](const Event& e, size_t) {
    if (!graph.Apply(e).ok()) return;
    rank.OnEventApplied(e);
    rank.ProcessPending(16);
    if (e.type == EventType::kAddEdge) {
      trends.Observe(e.edge.dst, sim.Now());
      // Poll the detector every 512 edges.
      if (++edge_count % 512 == 0 && first_trend_user == 0 &&
          sim.Now() >= warmup_until) {
        const auto trending = trends.TrendingAt(sim.Now());
        if (!trending.empty() && trending[0].growth > 6.0) {
          first_trend_user = trending[0].key;
          first_trend_time = sim.Now();
        }
      }
    }
  });
  sim.RunUntilIdle();
  while (rank.HasPendingWork()) rank.ProcessPending(100000);

  std::printf("final graph: %zu users, %zu follow edges\n",
              graph.num_vertices(), graph.num_edges());

  if (first_trend_user != 0) {
    std::printf(
        "trend alarm: user %llu flagged at t=%.1fs (viral window starts at "
        "t=%.1fs)\n",
        static_cast<unsigned long long>(first_trend_user),
        first_trend_time.seconds(),
        static_cast<double>(kViralStart) / 2000.0);
    std::printf("  matches injected viral user: %s\n",
                first_trend_user == model.viral_user() ? "yes" : "no");
  } else {
    std::printf("no trend detected (unexpected)\n");
  }

  std::printf("top-5 by online influence rank:\n");
  int i = 0;
  std::vector<std::pair<VertexId, double>> top;
  for (const auto& [user, score] : rank.NormalizedRanks()) {
    top.emplace_back(user, score);
  }
  std::sort(top.begin(), top.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [user, score] : top) {
    std::printf("  %d. user %-8llu rank %.5f%s\n", ++i,
                static_cast<unsigned long long>(user), score,
                user == model.viral_user() ? "   <- went viral" : "");
    if (i == 5) break;
  }
  return 0;
}
